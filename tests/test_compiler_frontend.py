"""Tests for the kernel-language frontend: lexer, parser, IR generation."""

import pytest

from repro.compiler.irgen import lower_kernel
from repro.compiler.lexer import TokKind, tokenize
from repro.compiler.parser import parse_kernel, parse_kernels
from repro.compiler.passes import optimize
from repro.errors import LexerError, ParseError, TypeCheckError


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("kernel f(int x) { x = x + 1; }")
        kinds = [t.kind for t in toks]
        assert kinds[0] is TokKind.KEYWORD
        assert kinds[-1] is TokKind.EOF

    def test_numbers(self):
        toks = tokenize("1 23 0x1F 1.5 .5 2e3 1.5e-2")
        assert [t.kind.value for t in toks[:-1]] == [
            "int", "int", "int", "float", "float", "float", "float"]

    def test_operators_maximal_munch(self):
        toks = tokenize("<<= == <= < =")
        assert [t.text for t in toks[:-1]] == ["<<", "=", "==", "<=", "<", "="]

    def test_comments_skipped(self):
        toks = tokenize("a // line comment\nb /* block\ncomment */ c")
        assert [t.text for t in toks[:-1]] == ["a", "b", "c"]

    def test_line_tracking(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")


MM = """
kernel mm(out float C[], float A[], float B[], int n) {
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            float acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + A[i * n + k] * B[k * n + j];
            }
            C[i * n + j] = acc;
        }
    }
}
"""


class TestParser:
    def test_matrix_multiply_parses(self):
        k = parse_kernel(MM)
        assert k.name == "mm"
        assert len(k.params) == 4
        assert k.params[0].is_out
        assert k.params[0].type.is_array
        assert not k.params[3].type.is_array

    def test_precedence(self):
        k = parse_kernel(
            "kernel f(out int y[], int a, int b, int c) "
            "{ y[0] = a + b * c; }")
        value = k.body[0].value
        assert value.op == "+"
        assert value.right.op == "*"

    def test_comparison_precedence(self):
        k = parse_kernel(
            "kernel f(out int y[], int a, int b) "
            "{ if (a + 1 < b * 2) { y[0] = 1; } }")
        cond = k.body[0].cond
        assert cond.op == "<"

    def test_if_else_chain(self):
        k = parse_kernel("""
            kernel f(out int y[], int a) {
                if (a < 0) { y[0] = 0; }
                else if (a < 10) { y[0] = 1; }
                else { y[0] = 2; }
            }
        """)
        outer = k.body[0]
        assert len(outer.else_body) == 1
        assert outer.else_body[0].else_body

    def test_while_break_continue(self):
        k = parse_kernel("""
            kernel f(out int y[], int n) {
                int i = 0;
                while (i < n) {
                    i = i + 1;
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    y[i] = i;
                }
            }
        """)
        assert k.body[1].body

    def test_multiple_kernels(self):
        src = (
            "kernel a(out int y[]) { y[0] = 1; }"
            "kernel b(out int y[]) { y[0] = 2; }"
        )
        assert [k.name for k in parse_kernels(src)] == ["a", "b"]

    def test_intrinsics(self):
        k = parse_kernel(
            "kernel f(out float y[], float a, float b) "
            "{ y[0] = sqrt(a) + min(a, b) + abs(a) + float(1); }")
        assert k.body

    def test_unknown_function_rejected(self):
        with pytest.raises(ParseError, match="unknown function"):
            parse_kernel("kernel f(out int y[]) { y[0] = foo(1); }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_kernel("kernel f(out int y[]) { y[0] = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated|expected"):
            parse_kernel("kernel f(out int y[]) { y[0] = 1;")

    def test_error_has_location(self):
        with pytest.raises(ParseError, match=r"2:"):
            parse_kernel("kernel f(out int y[])\n{ y[0] = ; }")


class TestIrGen:
    def lower(self, src):
        func = lower_kernel(parse_kernel(src))
        func.verify()
        return func

    def test_mm_lowers_and_verifies(self):
        func = self.lower(MM)
        assert len(func.blocks) > 5
        dump = func.dump()
        assert "fmul" in dump and "fadd" in dump
        assert "load" in dump and "store" in dump

    def test_loop_has_phi(self):
        func = self.lower("""
            kernel f(out int y[], int n) {
                int s = 0;
                for (int i = 0; i < n; i = i + 1) { s = s + i; }
                y[0] = s;
            }
        """)
        assert "phi" in func.dump()

    def test_if_merge_has_phi(self):
        func = self.lower("""
            kernel f(out int y[], int a) {
                int x = 0;
                if (a > 0) { x = 1; } else { x = 2; }
                y[0] = x;
            }
        """)
        assert "phi" in func.dump()

    def test_no_phi_for_straightline(self):
        func = self.lower(
            "kernel f(out int y[], int a) { int b = a + 1; y[0] = b; }")
        assert "phi" not in func.dump()

    def test_int_float_promotion(self):
        func = self.lower(
            "kernel f(out float y[], int a, float b) { y[0] = a + b; }")
        assert "i2f" in func.dump()

    def test_float_to_int_requires_cast(self):
        with pytest.raises(TypeCheckError, match="int\\(\\)"):
            self.lower(
                "kernel f(out int y[], float a) { y[0] = a; }")

    def test_explicit_cast_allowed(self):
        func = self.lower(
            "kernel f(out int y[], float a) { y[0] = int(a); }")
        assert "f2i" in func.dump()

    def test_undefined_variable(self):
        with pytest.raises(TypeCheckError, match="undefined"):
            self.lower("kernel f(out int y[]) { y[0] = z; }")

    def test_redeclaration_rejected(self):
        with pytest.raises(TypeCheckError, match="redeclaration"):
            self.lower(
                "kernel f(out int y[]) { int a = 1; int a = 2; y[0] = a; }")

    def test_scoped_redeclaration_allowed(self):
        func = self.lower("""
            kernel f(out int y[], int n) {
                for (int i = 0; i < n; i = i + 1) { y[i] = i; }
                for (int i = 0; i < n; i = i + 1) { y[i] = y[i] + 1; }
            }
        """)
        assert func

    def test_array_used_as_scalar_rejected(self):
        with pytest.raises(TypeCheckError, match="used as a scalar"):
            self.lower("kernel f(out int y[], int a) { y[0] = y + a; }")

    def test_scalar_indexed_rejected(self):
        with pytest.raises(TypeCheckError, match="not an array"):
            self.lower("kernel f(out int y[], int a) { y[0] = a[1]; }")

    def test_break_outside_loop(self):
        with pytest.raises(TypeCheckError, match="break outside"):
            self.lower("kernel f(out int y[]) { break; }")

    def test_float_condition_rejected(self):
        with pytest.raises(TypeCheckError, match="condition"):
            self.lower(
                "kernel f(out int y[], float a) { if (a) { y[0] = 1; } }")


class TestPasses:
    def test_constant_folding(self):
        func = lower_kernel(parse_kernel(
            "kernel f(out int y[]) { y[0] = 2 * 3 + 4; }"))
        optimize(func)
        dump = func.dump()
        assert "mul" not in dump
        assert "10" in dump

    def test_dce_removes_unused(self):
        func = lower_kernel(parse_kernel(
            "kernel f(out int y[], int a) { int dead = a * 37; y[0] = a; }"))
        optimize(func)
        assert "37" not in func.dump()

    def test_branch_folding_removes_dead_arm(self):
        func = lower_kernel(parse_kernel("""
            kernel f(out int y[], int a) {
                if (1 < 0) { y[0] = 111; } else { y[0] = 222; }
            }
        """))
        optimize(func)
        assert "111" not in func.dump()
        assert "222" in func.dump()

    def test_optimize_preserves_verification(self):
        func = lower_kernel(parse_kernel(MM))
        optimize(func)
        func.verify()
