"""Design-choice ablation tests (the list DESIGN.md calls out).

E9/E10 benchmark the geometry, config-cache and vectorization knobs;
these tests cover the remaining ones — port FIFO depth, initiation
interval, port fill rate, and the placement refiner — asserting the
*directions* the microarchitecture predicts.
"""

import pytest

from repro.compiler import CompilerOptions
from repro.compiler.schedule import schedule
from repro.cpu import CoreConfig
from repro.dyser import (
    Dfg,
    DyserTimingParams,
    Fabric,
    FabricGeometry,
    FuOp,
    PortRef,
    uniform_capabilities,
)
from repro.harness import RunConfig, run_workload


def cycles_with(name, scale="tiny", timing=None, core=None, options=None):
    result = run_workload(RunConfig(
        workload=name, mode="dyser", scale=scale, timing=timing,
        core_config=core, options=options))
    assert result.correct
    return result.stats.cycles


class TestFifoDepth:
    def test_deeper_input_fifos_never_hurt(self):
        shallow = cycles_with(
            "saxpy", timing=DyserTimingParams(input_fifo_depth=1,
                                              output_fifo_depth=1))
        deep = cycles_with(
            "saxpy", timing=DyserTimingParams(input_fifo_depth=8,
                                              output_fifo_depth=8))
        assert deep <= shallow

    def test_depth_one_throttles_wide_transfers(self):
        """An 8-wide kernel with depth-1 FIFOs must stall on sends."""
        shallow = run_workload(RunConfig(
            workload="vecadd", mode="dyser", scale="tiny",
            timing=DyserTimingParams(input_fifo_depth=1,
                                     output_fifo_depth=8)))
        deep = run_workload(RunConfig(
            workload="vecadd", mode="dyser", scale="tiny",
            timing=DyserTimingParams(input_fifo_depth=8,
                                     output_fifo_depth=8)))
        assert shallow.correct and deep.correct
        assert deep.cycles <= shallow.cycles


class TestInitiationInterval:
    def test_slower_fabric_pipelining_costs_cycles(self):
        # Compiled loops launch one invocation per trip (~a dozen
        # cycles), so a small II hides behind the issue rate; an II
        # beyond the trip length must back-pressure the whole loop.
        # The II must exceed the ~35-cycle (memory-bound) trip time
        # before the fire backlog reaches the input FIFOs and the core;
        # it also needs enough trips for the backlog to build.
        fast = cycles_with("vecadd", scale="small",
                           timing=DyserTimingParams(initiation_interval=1))
        slow = cycles_with("vecadd", scale="small",
                           timing=DyserTimingParams(initiation_interval=64))
        assert slow > fast

    def test_small_ii_hides_behind_issue_rate(self):
        fast = cycles_with("vecadd",
                           timing=DyserTimingParams(initiation_interval=1))
        modest = cycles_with("vecadd",
                             timing=DyserTimingParams(initiation_interval=4))
        assert modest == fast


class TestPortFillRate:
    def test_wider_port_bus_helps_streaming(self):
        narrow = cycles_with(
            "vecadd", core=CoreConfig(vector_port_words_per_cycle=1))
        wide = cycles_with(
            "vecadd", core=CoreConfig(vector_port_words_per_cycle=4))
        assert wide <= narrow


class TestPlacementRefiner:
    def chain(self, n=12):
        dfg = Dfg("chain")
        acc = PortRef(0)
        for k in range(1, n + 1):
            acc = dfg.add_node(FuOp.ADD, [acc, PortRef(k % 4)])
        dfg.set_output(0, acc)
        return dfg

    def total_wirelength(self, config):
        return sum(
            len(path) - 1 for path in config.routes.values())

    def test_refined_placement_not_worse(self):
        geometry = FabricGeometry(6, 6)
        fabric = Fabric(geometry, uniform_capabilities(geometry))
        dfg1, dfg2 = self.chain(), self.chain()
        refined = schedule(0, dfg1, fabric, refine=True)
        greedy = schedule(0, dfg2, fabric, refine=False)
        assert (self.total_wirelength(refined)
                <= self.total_wirelength(greedy) * 1.2)
        # Refinement must never break legality.
        refined.validate()
        greedy.validate()

    def test_refined_delay_reasonable(self):
        geometry = FabricGeometry(6, 6)
        fabric = Fabric(geometry, uniform_capabilities(geometry))
        config = schedule(0, self.chain(), fabric)
        # A 12-op chain: delay at least 12 (op latencies) and within a
        # small multiple once switch hops are added.
        assert 12 <= config.critical_delay() <= 12 * 4


class TestUnrollFactorKnob:
    def test_factor_ladder_respected(self):
        from repro.harness import compare

        for unroll, expect in ((1, 1), (2, 2), (4, 4)):
            options = CompilerOptions(
                fabric=Fabric(FabricGeometry(8, 8)), unroll=unroll)
            c = compare("vecadd", scale="tiny", options=options)
            (region,) = c.dyser.compile_result.regions
            assert region.unrolled == expect
