"""Static performance-bound analyzer (repro.analysis.perf).

Three layers of coverage:

- **golden attributions** — the three bottleneck stories the model must
  tell correctly: dotprod's loop-carried recurrence (RPR401), scalar
  saxpy's interface-port pressure (RPR400), and a hand-built
  two-config program thrashing a capacity-1 configuration cache
  (RPR402);
- **contracts** — exactness parity against the reference simulator on
  real kernels, plus a hypothesis property that the perfbound fuzz
  oracle finds nothing on generated programs (soundness + exactness on
  adversarial inputs);
- **plumbing** — CLI exit codes for ``repro lint [--perf]``, the
  diagnostics ordering guarantee, the engine cost pre-flight ordering,
  and the service scheduler's calibrated wait estimates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.perf import (
    analyze_program,
    analyze_workload,
    clear_cost_memo,
    emit_region_diagnostics,
    estimate_job_cost,
    perf_report,
)
from repro.cpu import Memory
from repro.dyser import (
    ConstRef,
    Dfg,
    DyserConfig,
    Fabric,
    FabricGeometry,
    FuOp,
    PortRef,
)
from repro.dyser.config_cache import ConfigCacheParams
from repro.engine.jobs import JobSpec
from repro.isa import assemble


def codes(report: DiagnosticReport) -> list[str]:
    return [d.code for d in report.diagnostics]


# ---------------------------------------------------------------------
# golden attributions
# ---------------------------------------------------------------------


class TestGoldenAttributions:
    def test_dotprod_is_recurrence_bound(self):
        # The compiled dot product accumulates through the core: every
        # invocation waits on the previous result round-tripping the
        # fabric.  That is the E6 gap story, and the analyzer must name
        # it without simulating.
        report = perf_report("dotprod", mode="dyser")
        assert "RPR401" in codes(report)
        assert "RPR404" in codes(report)

    def test_unvectorized_saxpy_is_port_bound(self):
        from repro.compiler import CompilerOptions

        report = perf_report(
            "saxpy", mode="dyser",
            options=CompilerOptions(fabric=Fabric(FabricGeometry(8, 8)),
                                    vectorize=False))
        assert "RPR400" in codes(report)

    def test_vectorized_saxpy_is_not_port_bound(self):
        # Wide vector transfers collapse both the per-element sends and
        # the address-generation chains; the residual host loop is the
        # limit, which has no dedicated RPR40x code.
        report = perf_report("saxpy", mode="dyser")
        assert "RPR400" not in codes(report)
        assert "RPR401" not in codes(report)
        assert "RPR402" not in codes(report)
        assert "RPR404" in codes(report)

    def test_scalar_mode_has_no_region_diagnostics(self):
        report = perf_report("dotprod", mode="scalar")
        assert codes(report) == ["RPR404"]


# ---------------------------------------------------------------------
# config-thrash golden (hand-built E9b shape)
# ---------------------------------------------------------------------

#: Two configs used alternately inside one loop: with a capacity-1
#: configuration cache every ``dinit`` is a full reload, so reload
#: stalls dominate each invocation — the E9b thrash axis in miniature.
THRASH_SRC = """
    li   r1, 0
    li   r2, 8
loop:
    dinit 0
    dfsend p0, f8
    dfrecv f1, p0
    dinit 1
    dfsend p0, f8
    dfrecv f2, p0
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
"""


def _unary_config(config_id: int, constant: float) -> DyserConfig:
    # Wide but shallow: a balanced constant tree folded into the one
    # live input.  One send and one recv per invocation keeps the
    # interface cheap, while the many mapped FUs make every reload
    # stream a large configuration — so thrash stalls dominate.
    dfg = Dfg(f"tree{config_id}")
    nodes = [dfg.add_node(FuOp.FADD,
                          [ConstRef(constant), ConstRef(constant + i)])
             for i in range(6)]
    while len(nodes) > 1:
        nodes = ([dfg.add_node(FuOp.FADD, [nodes[i], nodes[i + 1]])
                  for i in range(0, len(nodes) - 1, 2)]
                 + ([nodes[-1]] if len(nodes) % 2 else []))
    root = dfg.add_node(FuOp.FADD, [nodes[0], PortRef(0)])
    dfg.set_output(0, root)
    return DyserConfig(config_id, dfg, Fabric(FabricGeometry(4, 4)))


class TestConfigThrash:
    def analyze(self, capacity: int):
        program = assemble(THRASH_SRC)
        program.dyser_configs[0] = _unary_config(0, 1.0)
        program.dyser_configs[1] = _unary_config(1, 2.0)
        return analyze_program(
            program,
            memory=Memory(1 << 16),
            fp_args=(3.0,),
            fabric=Fabric(FabricGeometry(4, 4)),
            cache_params=ConfigCacheParams(capacity=1),
            subject="thrash")

    def test_alternating_configs_are_config_bound(self):
        prediction = self.analyze(capacity=1)
        assert prediction.exact
        assert prediction.invocations == 16
        assert prediction.regions
        for region in prediction.regions:
            assert region.bottleneck == "config"
            assert region.config_ii > 0

    def test_thrash_emits_rpr402(self):
        prediction = self.analyze(capacity=1)
        report = DiagnosticReport(subject="thrash:perf")
        emit_region_diagnostics(report, "thrash", prediction)
        assert "RPR402" in codes(report)

    def test_prediction_matches_simulator(self):
        from repro.cpu import Core
        from repro.dyser import DyserDevice
        from repro.dyser.config_cache import ConfigCache

        prediction = self.analyze(capacity=1)

        program = assemble(THRASH_SRC)
        program.dyser_configs[0] = _unary_config(0, 1.0)
        program.dyser_configs[1] = _unary_config(1, 2.0)
        dyser = DyserDevice(
            fabric=Fabric(FabricGeometry(4, 4)),
            cache_params=ConfigCacheParams(capacity=1))
        core = Core(program, Memory(1 << 16), dyser=dyser)
        core.set_args(fp_args=(3.0,))
        stats = core.run()
        assert prediction.predicted_cycles == stats.cycles
        assert prediction.lower_bound <= stats.cycles


# ---------------------------------------------------------------------
# contracts: exactness parity and the fuzz-oracle property
# ---------------------------------------------------------------------


class TestExactnessParity:
    @pytest.mark.parametrize("name,mode", [
        ("dotprod", "dyser"),
        ("dotprod", "scalar"),
        ("saxpy", "dyser"),
        ("fir", "dyser"),
        ("spmv", "scalar"),
    ])
    def test_prediction_matches_run(self, name, mode):
        from repro import RunConfig, run_workload

        prediction = analyze_workload(name, mode=mode, scale="small")
        result = run_workload(
            RunConfig(workload=name, mode=mode, scale="small"))
        assert prediction.exact
        assert prediction.predicted_cycles == result.stats.cycles
        assert prediction.lower_bound <= result.stats.cycles

    def test_unknown_workload_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            analyze_workload("nosuchkernel")


class TestPerfboundOracleProperty:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40),
           index=st.integers(min_value=0, max_value=40),
           irregularity=st.sampled_from([0.2, 0.5, 0.8]))
    def test_bound_sound_on_generated_programs(self, seed, index,
                                               irregularity):
        from repro.harness.fuzz.generator import CaseGenerator
        from repro.harness.fuzz.oracles import perfbound_oracle

        case = CaseGenerator(seed, irregularity).generate(index)
        if case.kind == "kernel":
            return  # oracle covers scalar + dyser cases
        finding = perfbound_oracle(case)
        assert finding is None, finding.detail


# ---------------------------------------------------------------------
# plumbing: CLI, diagnostics ordering, engine, service
# ---------------------------------------------------------------------


class TestLintCli:
    def test_lint_error_exits_nonzero(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["lint", "nosuchkernel"]) == 1

    def test_lint_clean_exits_zero(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["lint", "dotprod"]) == 0

    def test_lint_perf_prints_prediction(self, tmp_path, monkeypatch,
                                         capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["lint", "dotprod", "--perf"]) == 0
        out = capsys.readouterr().out
        assert "RPR401" in out
        assert "RPR404" in out

    def test_lint_perf_json(self, tmp_path, monkeypatch, capsys):
        import json

        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["lint", "dotprod", "--perf", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        perf = [r for r in doc["reports"]
                if r["subject"].endswith(":perf")]
        assert perf
        codes_seen = {d["code"] for r in perf for d in r["diagnostics"]}
        assert "RPR404" in codes_seen


class TestDiagnosticOrdering:
    def test_to_dict_sorts_by_code_then_location(self):
        report = DiagnosticReport(subject="x")
        report.emit("RPR404", "m", location="b", source="perf")
        report.emit("RPR400", "m", location="z", source="perf")
        report.emit("RPR400", "m", location="a", source="perf")
        got = [(d["code"], d["location"])
               for d in report.to_dict()["diagnostics"]]
        assert got == [("RPR400", "a"), ("RPR400", "z"),
                       ("RPR404", "b")]


class TestEngineCostPreflight:
    def test_estimate_matches_prediction_and_memoizes(self):
        clear_cost_memo()
        spec = JobSpec(workload="dotprod", mode="dyser", scale="small")
        cost = estimate_job_cost(spec)
        prediction = analyze_workload("dotprod", mode="dyser",
                                      scale="small")
        assert cost == prediction.predicted_cycles
        assert estimate_job_cost(spec) == cost  # memo hit

    def test_plan_orders_solo_jobs_longest_first(self):
        from repro.engine.pool import _plan_job_batches

        specs = [JobSpec(workload=w) for w in ("a", "b", "c")]
        pending = [0, 1, 2]
        groups, rest = _plan_job_batches(
            specs, pending, costs={0: 10, 1: 300, 2: 50})
        assert groups == []
        assert rest == [1, 2, 0]

    def test_plan_keeps_index_order_without_full_costs(self):
        from repro.engine.pool import _plan_job_batches

        specs = [JobSpec(workload=w) for w in ("a", "b", "c")]
        groups, rest = _plan_job_batches(
            specs, [0, 1, 2], costs={0: 10, 1: None, 2: 50})
        assert groups == []
        assert rest == [0, 1, 2]

    def test_run_jobs_records_cost(self, tmp_path):
        from repro.engine.pool import run_jobs

        specs = [JobSpec(workload="dotprod"),
                 JobSpec(workload="saxpy")]
        report = run_jobs(specs, jobs=2)
        assert all(r.cost is not None and r.cost > 0
                   for r in report.records)


class TestSchedulerEstimates:
    def make(self):
        from repro.service.scheduler import Scheduler

        return Scheduler(queue_limit=8, jobs=1)

    def test_no_calibration_means_no_estimate(self):
        sched = self.make()
        assert sched.cycles_per_s() is None
        assert sched.estimated_wait_s() is None
        assert sched.retry_after_s() == 0.5

    def test_calibrated_wait_estimate(self):
        import asyncio

        from repro.service.scheduler import Scheduler

        async def scenario():
            sched = Scheduler(queue_limit=8, jobs=1)
            sched._cycles_done = 1_000_000
            sched._wall_done = 1.0
            sched.submit(JobSpec(workload="a"), cost=500_000)
            sched.submit(JobSpec(workload="b"), cost=250_000)
            assert sched.cycles_per_s() == pytest.approx(1e6)
            assert sched.estimated_wait_s() == pytest.approx(0.75)
            assert sched.retry_after_s() == pytest.approx(0.75)
            return True

        assert asyncio.run(scenario())

    def test_uncosted_queued_job_disables_estimate(self):
        import asyncio

        from repro.service.scheduler import Scheduler

        async def scenario():
            sched = Scheduler(queue_limit=8, jobs=1)
            sched._cycles_done = 1_000_000
            sched._wall_done = 1.0
            sched.submit(JobSpec(workload="a"), cost=500_000)
            sched.submit(JobSpec(workload="b"), cost=None)
            assert sched.estimated_wait_s() is None
            return True

        assert asyncio.run(scenario())
