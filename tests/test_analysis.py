"""Static analysis layer: mutation-style negative tests.

Strategy: take *known-good* artifacts (SSA straight from the compiler,
placed-and-routed configurations straight from the scheduler), corrupt
them one invariant at a time, and assert the verifier/linter names the
damage with the right stable code.  A final aggregate test asserts the
mutation corpus exercises a wide spread of distinct diagnostic codes —
the acceptance bar for this layer.
"""

import copy
import json
from functools import lru_cache

import pytest

from repro import (
    Diagnostic,
    DiagnosticReport,
    JobSpec,
    Severity,
    describe_code,
    lint_config,
    lint_spec,
    lint_workload,
    verify_function,
)
from repro.analysis.lint import lint_dfg
from repro.analysis.verifier import check_function
from repro.compiler.driver import CompilerOptions, compile_dyser, frontend
from repro.compiler.dyser_ir import DyserInit, DyserSend
from repro.compiler.ir import Compute, Copy, Jump, Ret, Block, Scalar
from repro.compiler.region import offload_regions
from repro.dyser import ConstRef, Dfg, FuOp, NodeRef
from repro.dyser.fabric import Fabric, FabricGeometry
from repro.errors import (
    ConfigurationError,
    PassVerificationError,
    ReproError,
)
from repro.workloads import SUITE


# -- known-good artifacts (compiled once, deep-copied per mutation) ----


@lru_cache(maxsize=4)
def _pristine_func(name="mm"):
    func = frontend(SUITE[name].source)
    func, _ = offload_regions(func, CompilerOptions())
    return func


@lru_cache(maxsize=4)
def _pristine_config(name="mm"):
    result = compile_dyser(SUITE[name].source)
    assert result.program.dyser_configs, "fixture workload must offload"
    return result.program.dyser_configs[
        min(result.program.dyser_configs)]


def _func():
    return copy.deepcopy(_pristine_func())


def _config():
    return copy.deepcopy(_pristine_config())


def _some_block_with_terminator(func, kind=None):
    for name in sorted(func.blocks):
        term = func.blocks[name].terminator
        if term is not None and (kind is None or isinstance(term, kind)):
            return func.blocks[name]
    raise AssertionError("no such block in fixture")


def _find_instr(func, klass):
    for name in sorted(func.blocks):
        for instr in func.blocks[name].instrs:
            if isinstance(instr, klass):
                return func.blocks[name], instr
    raise AssertionError(f"no {klass.__name__} in fixture")


# -- IR mutations ------------------------------------------------------


def _mut_drop_terminator(func):
    _some_block_with_terminator(func).terminator = None


def _mut_unknown_edge(func):
    _some_block_with_terminator(func, Jump).terminator = Jump("nosuch")


def _mut_double_def(func):
    for name in sorted(func.blocks):
        for instr in func.blocks[name].instrs:
            if isinstance(instr, Compute) and instr.result is not None:
                dup = Copy(result=instr.result, src=instr.result)
                func.blocks[name].instrs.append(dup)
                return
    raise AssertionError("no Compute in fixture")


def _mut_undefined_use(func):
    ghost = func.new_value(Scalar.INT, "ghost")
    _, instr = _find_instr(func, Compute)
    instr.args[0] = ghost


def _mut_dominance(func):
    # Move a definition after a same-block use of its result.
    for name in sorted(func.blocks):
        instrs = func.blocks[name].instrs
        for i, producer in enumerate(instrs):
            if producer.result is None:
                continue
            for j in range(i + 1, len(instrs)):
                if producer.result in instrs[j].uses():
                    instrs.insert(j + 1, instrs.pop(i))
                    return
    raise AssertionError("no same-block def-use pair in fixture")


def _mut_phi_mismatch(func):
    for name in sorted(func.blocks):
        block = func.blocks[name]
        if block.phis:
            phi = block.phis[0]
            value = next(iter(phi.incomings.values()))
            phi.incomings["nosuch_pred"] = value
            return
    raise AssertionError("no phi in fixture")


def _mut_unreachable_block(func):
    orphan = Block("orphan")
    orphan.terminator = Ret()
    func.blocks["orphan"] = orphan


def _mut_init_unknown_config(func):
    _, init = _find_instr(func, DyserInit)
    init.config_id = 999


def _mut_send_bad_port(func):
    _, send = _find_instr(func, DyserSend)
    send.port = 99


def _mut_drop_send(func):
    block, send = _find_instr(func, DyserSend)
    block.instrs.remove(send)


def _mut_send_before_init(func):
    from repro.compiler.ir import const_int

    stray = DyserSend(result=None, port=0, value=const_int(1))
    func.blocks[func.entry].instrs.insert(0, stray)


IR_MUTATIONS = [
    ("RPR101", _mut_drop_terminator),
    ("RPR102", _mut_unknown_edge),
    ("RPR103", _mut_double_def),
    ("RPR104", _mut_undefined_use),
    ("RPR105", _mut_dominance),
    ("RPR106", _mut_phi_mismatch),
    ("RPR107", _mut_unreachable_block),
    ("RPR108", _mut_init_unknown_config),
    ("RPR109", _mut_send_bad_port),
    ("RPR110", _mut_drop_send),
    ("RPR111", _mut_send_before_init),
]


class TestVerifierMutations:
    def test_pristine_function_verifies_clean(self):
        report = verify_function(_func())
        assert report.ok, report.render()
        assert not report.warnings, report.render()

    @pytest.mark.parametrize("code,mutate", IR_MUTATIONS,
                             ids=[c for c, _ in IR_MUTATIONS])
    def test_mutation_is_caught(self, code, mutate):
        func = _func()
        mutate(func)
        report = verify_function(func)
        assert code in report.codes(), (
            f"expected {code} ({describe_code(code).title}); "
            f"got: {report.render()}")

    def test_check_function_names_the_pass(self):
        func = _func()
        _mut_undefined_use(func)
        with pytest.raises(PassVerificationError) as exc:
            check_function(func, "evil-pass")
        assert "evil-pass" in str(exc.value)
        assert "RPR104" in str(exc.value)
        assert exc.value.pass_name == "evil-pass"
        assert exc.value.diagnostics


# -- configuration mutations -------------------------------------------


def _node_with_noderef_input(dfg):
    for nid in sorted(dfg.nodes):
        for slot, src in enumerate(dfg.nodes[nid].inputs):
            if isinstance(src, NodeRef):
                return nid, slot, src
    raise AssertionError("no node-to-node edge in fixture")


def _cmut_arity(config):
    nid = min(config.dfg.nodes)
    config.dfg.nodes[nid].inputs.append(ConstRef(0))


def _cmut_dangling_ref(config):
    _nid, _slot, ref = _node_with_noderef_input(config.dfg)
    del config.dfg.nodes[ref.node]
    config.placement.pop(ref.node, None)


def _cmut_no_outputs(config):
    config.dfg.outputs.clear()


def _cmut_cycle(config):
    nid, _slot, ref = _node_with_noderef_input(config.dfg)
    producer = config.dfg.nodes[ref.node]
    producer.inputs[0] = NodeRef(nid)


def _cmut_dead_node(config):
    config.dfg.add_node(FuOp.ADD, [ConstRef(1), ConstRef(2)])


def _cmut_port_range(config):
    nid = min(config.dfg.nodes)
    config.dfg.outputs[99] = NodeRef(nid)


def _cmut_unplace(config):
    nid = min(config.placement)
    del config.placement[nid]


def _cmut_double_place(config):
    nids = sorted(config.placement)
    assert len(nids) >= 2
    config.placement[nids[1]] = config.placement[nids[0]]


def _cmut_capability(config):
    nid = min(config.placement)
    fu = config.placement[nid]
    config.fabric.capabilities[fu] = set()


def _cmut_bad_hop(config):
    for key in sorted(config.routes):
        path = config.routes[key]
        if len(path) >= 3:
            del path[1]
            return
    raise AssertionError("no multi-hop route in fixture")


def _cmut_link_conflict(config):
    keys = sorted(config.routes)
    donor = next(k for k in keys if len(config.routes[k]) >= 2)
    victim = next(k for k in keys if k[0] != donor[0])
    config.routes[victim] = list(config.routes[donor])


def _cmut_drop_route(config):
    del config.routes[sorted(config.routes)[0]]


def _cmut_capacity(config):
    config.fabric = Fabric(FabricGeometry(1, 1))


def _cmut_const_output(config):
    port = min(config.dfg.outputs)
    config.dfg.outputs[port] = ConstRef(5)


CONFIG_MUTATIONS = [
    ("RPR201", _cmut_arity),
    ("RPR202", _cmut_dangling_ref),
    ("RPR203", _cmut_no_outputs),
    ("RPR204", _cmut_cycle),
    ("RPR205", _cmut_dead_node),
    ("RPR206", _cmut_port_range),
    ("RPR207", _cmut_unplace),
    ("RPR208", _cmut_double_place),
    ("RPR209", _cmut_capability),
    ("RPR210", _cmut_bad_hop),
    ("RPR211", _cmut_link_conflict),
    ("RPR212", _cmut_drop_route),
    ("RPR213", _cmut_capacity),
    ("RPR214", _cmut_const_output),
]


class TestConfigLintMutations:
    def test_pristine_config_lints_clean(self):
        report = lint_config(_config())
        assert report.ok, report.render()

    @pytest.mark.parametrize("code,mutate", CONFIG_MUTATIONS,
                             ids=[c for c, _ in CONFIG_MUTATIONS])
    def test_mutation_is_caught(self, code, mutate):
        config = _config()
        mutate(config)
        report = lint_config(config)
        assert code in report.codes(), (
            f"expected {code} ({describe_code(code).title}); "
            f"got: {report.render()}")

    def test_lint_dfg_standalone(self):
        dfg = Dfg("loose")
        n = dfg.add_node(FuOp.ADD, [ConstRef(1), ConstRef(2)])
        dfg.set_output(0, n)
        assert lint_dfg(dfg).ok

    def test_mutation_corpus_spans_enough_codes(self):
        """The acceptance bar: >= 8 distinct diagnostic codes fire."""
        fired = set()
        for code, mutate in CONFIG_MUTATIONS:
            config = _config()
            mutate(config)
            fired |= lint_config(config).codes()
        for code, mutate in IR_MUTATIONS:
            func = _func()
            mutate(func)
            fired |= verify_function(func).codes()
        distinct = {c for c in fired if c.startswith("RPR")}
        assert len(distinct) >= 8, sorted(distinct)
        # Every advertised mutation target actually fired somewhere.
        expected = ({c for c, _ in IR_MUTATIONS}
                    | {c for c, _ in CONFIG_MUTATIONS})
        assert expected <= fired


# -- throwing validators carry codes -----------------------------------


class TestErrorPayloads:
    def test_configuration_error_carries_code_and_context(self):
        config = _config()
        _cmut_unplace(config)
        with pytest.raises(ConfigurationError) as exc:
            config.validate()
        assert exc.value.code == "RPR207"
        assert "node" in exc.value.context

    def test_diagnostic_lifts_error(self):
        try:
            _config_with_unplaced().validate()
        except ReproError as exc:
            diag = Diagnostic.from_error(exc, location="here",
                                         source="test")
            assert diag.code == "RPR207"
            assert diag.severity is Severity.ERROR
            assert diag.context["node"] == min(_pristine_config().placement)
            assert diag.to_dict()["title"] == describe_code("RPR207").title
        else:  # pragma: no cover
            pytest.fail("validate() accepted a broken config")

    def test_unknown_code_is_synthetic_error(self):
        info = describe_code("RPR999")
        assert info.severity is Severity.ERROR
        assert info.title == "unregistered diagnostic"


def _config_with_unplaced():
    config = _config()
    _cmut_unplace(config)
    return config


# -- spec lint + engine pre-flight -------------------------------------


class TestSpecLint:
    def test_good_spec_is_clean(self):
        assert lint_spec(JobSpec(workload="mm")).ok

    def test_bad_spec_fires_many_codes(self):
        spec = JobSpec(workload="nope", scale="huge", unroll=0,
                       input_fifo_depth=0, memory_bytes=128,
                       energy_overrides=(("bogus", 1.0),))
        report = lint_spec(spec)
        assert not report.ok
        assert {"RPR251", "RPR252", "RPR253", "RPR254", "RPR255",
                "RPR256"} <= report.codes()

    def test_max_below_min_region_ops(self):
        spec = JobSpec(workload="mm", min_region_ops=4, max_region_ops=2)
        report = lint_spec(spec)
        assert "RPR256" in report.codes()


class TestEnginePreflight:
    def test_illegal_spec_rejected_without_worker(self):
        from repro.engine.pool import run_jobs
        from repro.engine.report import REJECTED

        calls = []

        def worker(spec, cache):  # pragma: no cover - must not run
            calls.append(spec)
            return {}

        good = JobSpec(workload="mm", scale="tiny")
        bad = JobSpec(workload="mm", scale="tiny", input_fifo_depth=0)
        report = run_jobs([bad], worker=worker)
        record = report.records[0]
        assert record.status == REJECTED
        assert not calls, "worker must not be invoked for rejected specs"
        assert any(d.code == "RPR253" for d in record.diagnostics)
        assert "RPR253" in (record.error or "")
        assert report.failures and report.rejected
        assert "REJECTED" in report.summary()
        with pytest.raises(ReproError):
            report.raise_on_failure()
        # Sanity: the knob, not the workload, was the problem.
        assert lint_spec(good).ok

    def test_mixed_batch_runs_good_jobs(self):
        from repro.engine.pool import run_jobs
        from repro.engine.report import EXECUTED, REJECTED

        def worker(spec, cache):
            from repro.engine.cache import result_to_dict
            from repro.engine.pool import execute_job
            return result_to_dict(execute_job(spec, cache))

        good = JobSpec(workload="vecadd", scale="tiny")
        bad = JobSpec(workload="vecadd", scale="tiny",
                      config_cache_capacity=0)
        report = run_jobs([good, bad], worker=worker)
        assert report.records[0].status == EXECUTED
        assert report.records[1].status == REJECTED
        assert report.results[0] is not None
        assert report.results[1] is None


# -- workload lint + report rendering ----------------------------------


class TestLintWorkload:
    def test_suite_workload_is_ok(self):
        report = lint_workload("mm")
        assert report.ok, report.render()
        assert "RPR300" in report.codes()  # offload advisory

    def test_unknown_workload_is_a_diagnostic(self):
        report = lint_workload("not-a-workload")
        assert not report.ok
        assert "RPR251" in report.codes()

    def test_scalar_mode_skips_config_lint(self):
        report = lint_workload("mm", mode="scalar")
        assert report.ok
        assert not report.by_code("RPR300")

    def test_curtailing_shape_advisory(self):
        # kmeans offloads a loop whose continue-condition consumes
        # loop-carried data: the paper's E7 shape, as tool output.
        report = lint_workload("kmeans")
        assert "RPR302" in report.codes()
        advisory = report.by_code("RPR302")[0]
        assert advisory.severity is Severity.WARNING
        assert advisory.context["shape"] == "loop_carried_control"

    def test_report_json_roundtrip(self):
        report = lint_workload("kmeans")
        data = json.loads(report.to_json())
        assert data["ok"] == report.ok
        back = DiagnosticReport.from_dict(data)
        assert back.codes() == report.codes()
        assert len(back) == len(report)


class TestVerifyPassesKnob:
    def test_verified_compile_is_byte_identical(self):
        source = SUITE["fir"].source
        plain = compile_dyser(source, CompilerOptions())
        checked = compile_dyser(
            source, CompilerOptions(verify_passes=True))
        assert plain.ir_dump == checked.ir_dump
        assert len(plain.program.instructions) == \
            len(checked.program.instructions)
        assert sorted(plain.program.dyser_configs) == \
            sorted(checked.program.dyser_configs)


class TestLintCli:
    def test_lint_json_validates(self, capsys):
        from repro.cli import main

        rc = main(["lint", "mm", "fir", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        assert len(payload["reports"]) == 2
        for rep in payload["reports"]:
            for diag in rep["diagnostics"]:
                assert diag["code"].startswith("RPR")
                assert diag["severity"] in ("error", "warning", "note")

    def test_lint_text_mode(self, capsys):
        from repro.cli import main

        rc = main(["lint", "kmeans"])
        out = capsys.readouterr().out
        assert rc == 0  # warnings do not fail the lint
        assert "RPR302" in out
