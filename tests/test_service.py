"""Tests for the simulation service (repro.service).

Covers: startup/readiness, the run pipeline's terminal statuses
(executed / cache hit / coalesced / rejected / throttled / expired),
byte-identical cache-hit parity with the direct run API, backpressure
(429 + Retry-After) under a blocked worker, priority ordering,
drain-on-shutdown completing in-flight jobs, client retry/backoff
against a flapping server, and the Prometheus exposition format.

All tests run the daemon in-process on an ephemeral port via
:class:`repro.service.ServiceThread`.  Tests that need deterministic
timing inject a blocking ``worker`` (the same hook
:func:`repro.engine.pool.run_jobs` exposes) so no test depends on real
simulation latency.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import RunConfig, run_workload
from repro.engine import ArtifactCache, JobSpec, result_to_dict
from repro.service import (
    ProtocolError,
    ServiceClient,
    ServiceError,
    ServiceThread,
    spec_from_payload,
    spec_to_payload,
)
from repro.service import protocol as P


# ---------------------------------------------------------------------
# Shared fixtures and helpers
# ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def canned_payload():
    """One real run summary, reused by injected workers (fast tests)."""
    return result_to_dict(run_workload(
        RunConfig(workload="vecadd", mode="dyser", scale="tiny")))


class GatedWorker:
    """Injectable engine worker whose first call blocks on an event.

    Later calls run immediately.  Records the order in which specs
    executed, so tests can assert queue/priority behaviour.
    """

    def __init__(self, payload: dict, *, gate_first: bool = True):
        self.payload = payload
        self.gate_first = gate_first
        self.release = threading.Event()
        self.started = threading.Event()
        self.order: list[str] = []
        self._lock = threading.Lock()
        self._calls = 0

    def __call__(self, spec, cache=None):
        with self._lock:
            self._calls += 1
            first = self._calls == 1
            self.order.append(f"{spec.workload}:{spec.seed}")
        if first and self.gate_first:
            self.started.set()
            assert self.release.wait(timeout=30), "gate never released"
        return dict(self.payload)


def _poll(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


SPEC = {"workload": "vecadd", "mode": "dyser", "scale": "tiny"}


# ---------------------------------------------------------------------
# Protocol layer (no server needed)
# ---------------------------------------------------------------------


class TestProtocol:
    def test_spec_payload_round_trip(self):
        spec = JobSpec(workload="mm", mode="dyser", scale="tiny",
                       geometry=(6, 6), unroll=2,
                       energy_overrides=(("dyser_fu_pj", 0.5),))
        rebuilt = spec_from_payload(spec_to_payload(spec))
        assert rebuilt == spec
        assert rebuilt.job_hash == spec.job_hash

    def test_unknown_field_named_in_error(self):
        with pytest.raises(ProtocolError) as err:
            spec_from_payload({"workload": "mm", "unrol": 4})
        assert "unrol" in str(err.value)

    def test_workload_required(self):
        with pytest.raises(ProtocolError):
            spec_from_payload({"mode": "dyser"})

    def test_geometry_must_be_pair(self):
        with pytest.raises(ProtocolError):
            spec_from_payload({"workload": "mm", "geometry": [4]})

    def test_priority_and_timeout_validation(self):
        with pytest.raises(ProtocolError):
            P.parse_request_body({"spec": SPEC, "priority": "high"})
        with pytest.raises(ProtocolError):
            P.parse_request_body({"spec": SPEC, "timeout_s": -1})

    def test_every_status_has_http_code(self):
        statuses = {P.STATUS_EXECUTED, P.STATUS_HIT, P.STATUS_COALESCED,
                    P.STATUS_REJECTED, P.STATUS_THROTTLED,
                    P.STATUS_FAILED, P.STATUS_EXPIRED, P.STATUS_DRAINING}
        assert set(P.HTTP_STATUS) == statuses


# ---------------------------------------------------------------------
# One real service, real engine, warm cache: the happy path
# ---------------------------------------------------------------------


class TestServedRuns:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        cache = ArtifactCache(tmp_path_factory.mktemp("svc-cache"))
        with ServiceThread(cache=cache, batch_window_s=0.001) as srv:
            yield srv

    @pytest.fixture()
    def client(self, service):
        with ServiceClient(port=service.port, timeout=120) as client:
            yield client

    def test_health_ready(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["ready"] is True
        assert health["queue_limit"] >= 1

    def test_executed_then_hit_byte_identical(self, client):
        first = client.run(SPEC)
        assert first["status"] in (P.STATUS_EXECUTED, P.STATUS_HIT)
        assert first["ok"] is True
        again = client.run(SPEC)
        assert again["status"] == P.STATUS_HIT

        # Acceptance: a served payload is byte-identical to the direct
        # run API's serialization for the same design point.
        config = spec_from_payload(SPEC).to_run_config()
        direct = run_workload(config).to_dict()
        assert json.dumps(again["result"], sort_keys=True) \
            == json.dumps(direct, sort_keys=True)
        assert json.dumps(first["result"], sort_keys=True) \
            == json.dumps(direct, sort_keys=True)

    def test_lint_rejection_payload_shape(self, client):
        reply = client.run({"workload": "nosuchkernel"},
                           raise_on_error=False)
        assert reply["ok"] is False
        assert reply["status"] == P.STATUS_REJECTED
        codes = {d["code"] for d in reply["diagnostics"]}
        assert "RPR251" in codes
        severities = {d["severity"] for d in reply["diagnostics"]}
        assert "error" in severities
        assert "nosuchkernel" in reply["error"]

    def test_lint_rejection_is_422(self, client):
        status, payload = client.request(
            "POST", "/v1/run", {"spec": {"workload": "nosuchkernel"}})
        assert status == 422
        assert payload["status"] == P.STATUS_REJECTED

    def test_unknown_spec_field_is_400(self, client):
        status, payload = client.request(
            "POST", "/v1/run", {"spec": {"workload": "mm", "unrol": 2}})
        assert status == 400
        assert "unrol" in payload["error"]

    def test_unknown_endpoint_and_method(self, client):
        status, _ = client.request("GET", "/v1/nope")
        assert status == 404
        status, _ = client.request("POST", "/healthz", {})
        assert status == 405

    def test_compile_endpoint(self, client):
        reply = client.compile(SPEC)
        assert reply["ok"] is True
        assert reply["instructions"] > 0
        assert reply["dyser_configs"] >= 1
        again = client.compile(SPEC)
        assert again["status"] == P.STATUS_HIT   # compile cache reuse

    def test_lint_endpoint(self, client):
        reply = client.lint(SPEC)
        assert reply["ok"] is True
        assert reply["report"]["diagnostics"] == []
        bad = client.lint({"workload": "vecadd", "unroll": 0})
        assert bad["ok"] is False
        codes = {d["code"] for d in bad["report"]["diagnostics"]}
        assert "RPR256" in codes

    def test_sweep_endpoint(self, client):
        reply = client.sweep(["vecadd", "saxpy"], modes=("dyser",),
                             base={"scale": "tiny"})
        assert reply["ok"] is True
        assert len(reply["jobs"]) == 2
        served = (P.STATUS_EXECUTED, P.STATUS_HIT, P.STATUS_COALESCED)
        assert all(job["status"] in served for job in reply["jobs"])
        # Warm repeat: every point answers from the artifact cache.
        again = client.sweep(["vecadd", "saxpy"], modes=("dyser",),
                             base={"scale": "tiny"})
        assert again["counts"] == {P.STATUS_HIT: 2}

    def test_sweep_expansion_limit(self, service, client):
        axes = {"seed": list(range(service.service.max_sweep_specs + 1))}
        with pytest.raises(ServiceError) as err:
            client.sweep(["vecadd"], base={"scale": "tiny"}, axes=axes)
        assert err.value.status == 400

    def test_metrics_exposition_parses(self, client):
        text = client.metrics_text()
        families = set()
        samples = 0
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# TYPE"):
                families.add(line.split()[2])
                continue
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            float(value)   # every sample value must parse
            assert name_part.startswith("repro_service_")
            samples += 1
        assert "repro_service_requests_admitted_total" in families
        assert "repro_service_latency_e2e_ms" in families
        assert samples >= len(families)
        # Histogram buckets are cumulative and end at +Inf.
        buckets = [line for line in text.splitlines()
                   if line.startswith("repro_service_latency_e2e_ms_bucket")]
        counts = [float(line.rpartition(" ")[2]) for line in buckets]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in buckets[-1]

    def test_stats_endpoint_mirrors_registry(self, client):
        stats = client.stats()
        metrics = stats["metrics"]
        assert "service.requests.admitted" in metrics
        assert metrics["service.requests.admitted"]["value"] >= 1


# ---------------------------------------------------------------------
# Deterministic scheduling behaviour with an injected worker
# ---------------------------------------------------------------------


class TestBackpressureAndCoalescing:
    def _spec(self, seed: int) -> dict:
        return {"workload": "vecadd", "mode": "dyser", "scale": "tiny",
                "seed": seed}

    def _submit_async(self, port, spec, out, **kwargs):
        def run():
            with ServiceClient(port=port, retries=0,
                               timeout=60) as client:
                out.append(client.run(spec, raise_on_error=False,
                                      **kwargs))
        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def test_queue_full_answers_429_with_retry_after(self, canned_payload):
        worker = GatedWorker(canned_payload)
        with ServiceThread(cache=None, queue_limit=2, batch_max=1,
                           batch_window_s=0.0, worker=worker) as srv:
            replies: list[dict] = []
            t1 = self._submit_async(srv.port, self._spec(1), replies)
            assert worker.started.wait(timeout=10)
            t2 = self._submit_async(srv.port, self._spec(2), replies)
            with ServiceClient(port=srv.port, retries=0) as probe:
                assert _poll(lambda: probe.health()["inflight"] == 2)
                # Third distinct spec: the bound counts queued AND
                # executing jobs, so this must throttle.
                status, headers, data = probe._send_once(
                    "POST", "/v1/run",
                    json.dumps({"spec": self._spec(3)}).encode())
                payload = json.loads(data)
                assert status == 429
                assert payload["status"] == P.STATUS_THROTTLED
                retry_after = {k.lower(): v for k, v
                               in headers.items()}["retry-after"]
                assert float(retry_after) > 0
            worker.release.set()
            t1.join(timeout=30)
            t2.join(timeout=30)
            assert [r["status"] for r in replies] \
                == [P.STATUS_EXECUTED, P.STATUS_EXECUTED]

    def test_identical_inflight_spec_coalesces(self, canned_payload):
        worker = GatedWorker(canned_payload)
        with ServiceThread(cache=None, queue_limit=8, batch_max=1,
                           batch_window_s=0.0, worker=worker) as srv:
            replies: list[dict] = []
            t1 = self._submit_async(srv.port, self._spec(1), replies)
            assert worker.started.wait(timeout=10)
            t2 = self._submit_async(srv.port, self._spec(1), replies)
            with ServiceClient(port=srv.port, retries=0) as probe:
                coalesced = lambda: probe.stats()["metrics"][  # noqa: E731
                    "service.requests.coalesced"]["value"] >= 1
                assert _poll(coalesced), "second request never coalesced"
                # Only one engine job exists for the two requests.
                assert probe.health()["inflight"] == 1
            worker.release.set()
            t1.join(timeout=30)
            t2.join(timeout=30)
            statuses = sorted(r["status"] for r in replies)
            assert statuses == [P.STATUS_COALESCED, P.STATUS_EXECUTED]
            payloads = [json.dumps(r["result"], sort_keys=True)
                        for r in replies]
            assert payloads[0] == payloads[1]
            assert worker.order.count("vecadd:1") == 1

    def test_priority_orders_the_queue(self, canned_payload):
        worker = GatedWorker(canned_payload)
        with ServiceThread(cache=None, queue_limit=8, batch_max=1,
                           batch_window_s=0.0, worker=worker) as srv:
            replies: list[dict] = []
            threads = [self._submit_async(srv.port, self._spec(1),
                                          replies)]
            assert worker.started.wait(timeout=10)
            with ServiceClient(port=srv.port, retries=0) as probe:
                # Low priority (5) enqueued before high priority (0);
                # the dispatcher must still pop the high one first.
                threads.append(self._submit_async(
                    srv.port, self._spec(2), replies, priority=5))
                assert _poll(
                    lambda: probe.health()["queue_depth"] == 1)
                threads.append(self._submit_async(
                    srv.port, self._spec(3), replies, priority=0))
                assert _poll(
                    lambda: probe.health()["queue_depth"] == 2)
            worker.release.set()
            for thread in threads:
                thread.join(timeout=30)
            assert worker.order == ["vecadd:1", "vecadd:3", "vecadd:2"]

    def test_queued_deadline_expires_as_504(self, canned_payload):
        worker = GatedWorker(canned_payload)
        with ServiceThread(cache=None, queue_limit=8, batch_max=1,
                           batch_window_s=0.0, worker=worker) as srv:
            replies: list[dict] = []
            t1 = self._submit_async(srv.port, self._spec(1), replies)
            assert worker.started.wait(timeout=10)
            expired: list[dict] = []
            t2 = self._submit_async(srv.port, self._spec(2), expired,
                                    timeout_s=0.05)
            with ServiceClient(port=srv.port, retries=0) as probe:
                assert _poll(lambda: probe.health()["queue_depth"] == 1)
            time.sleep(0.2)   # let the queued deadline lapse
            worker.release.set()
            t1.join(timeout=30)
            t2.join(timeout=30)
            assert replies[0]["status"] == P.STATUS_EXECUTED
            assert expired[0]["status"] == P.STATUS_EXPIRED
            assert expired[0]["ok"] is False
            # The expired job never burned a worker slot.
            assert worker.order == ["vecadd:1"]


# ---------------------------------------------------------------------
# Lifecycle: graceful drain
# ---------------------------------------------------------------------


class TestDrain:
    def test_shutdown_completes_inflight_jobs(self, canned_payload):
        worker = GatedWorker(canned_payload)
        srv = ServiceThread(cache=None, batch_window_s=0.0,
                            worker=worker).start()
        replies: list[dict] = []

        def submit():
            with ServiceClient(port=srv.port, retries=0,
                               timeout=60) as client:
                replies.append(client.run(
                    {"workload": "vecadd", "scale": "tiny"},
                    raise_on_error=False))

        thread = threading.Thread(target=submit, daemon=True)
        thread.start()
        assert worker.started.wait(timeout=10)
        # Release the gate shortly *after* the drain begins: shutdown
        # must wait for the in-flight job, not abandon it.
        threading.Timer(0.25, worker.release.set).start()
        srv.shutdown(timeout=60)
        thread.join(timeout=30)
        assert replies and replies[0]["status"] == P.STATUS_EXECUTED
        assert replies[0]["ok"] is True

    def test_new_connections_refused_after_drain(self, canned_payload):
        srv = ServiceThread(cache=None, batch_window_s=0.0,
                            worker=GatedWorker(canned_payload,
                                               gate_first=False)).start()
        port = srv.port
        srv.shutdown(timeout=60)
        with pytest.raises(ServiceError) as err:
            with ServiceClient(port=port, retries=1,
                               backoff_s=0.01) as client:
                client.health()
        assert err.value.status == 0   # transport-level, after retries


# ---------------------------------------------------------------------
# Client retry policy
# ---------------------------------------------------------------------


class TestClientRetries:
    def test_retries_until_late_starting_server_is_up(self, canned_payload):
        port = _free_port()
        srv_box: list[ServiceThread] = []

        def start_late():
            time.sleep(0.4)
            srv_box.append(ServiceThread(
                port=port, cache=None, batch_window_s=0.0,
                worker=GatedWorker(canned_payload,
                                   gate_first=False)).start())

        starter = threading.Thread(target=start_late, daemon=True)
        starter.start()
        try:
            with ServiceClient(port=port, retries=8,
                               backoff_s=0.1) as client:
                health = client.health()   # racing the bind
            assert health["ready"] is True
        finally:
            starter.join(timeout=10)
            if srv_box:
                srv_box[0].shutdown(timeout=60)

    def test_gives_up_with_transport_error(self):
        client = ServiceClient(port=_free_port(), retries=2,
                               backoff_s=0.01)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0
        assert "3 attempts" in str(err.value)

    def test_backoff_is_capped_exponential(self):
        client = ServiceClient(backoff_s=0.1, backoff_cap_s=0.5)
        delays = [client._backoff(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_429_honours_retry_after_then_succeeds(self):
        # Fake transport: first response throttles with Retry-After,
        # second succeeds.  Exercises the retry loop without a server.
        sleeps: list[float] = []
        client = ServiceClient(retries=3, backoff_s=0.01,
                               sleep=sleeps.append)
        responses = [(429, {"Retry-After": "0.123"}, b'{"ok": false}'),
                     (200, {}, b'{"ok": true}')]
        client._send_once = lambda *a: responses.pop(0)
        status, payload = client.request("GET", "/healthz")
        assert status == 200 and payload["ok"] is True
        assert sleeps == [0.123]
