"""Tests for memory, register files and the cache timing model."""

import numpy as np
import pytest

from repro.cpu import Cache, CacheConfig, FpRegFile, IntRegFile, Memory, wrap64
from repro.errors import MemoryFault


class TestMemory:
    def test_word_roundtrip(self):
        m = Memory(1024)
        m.store_word(64, 42)
        assert m.load_word(64) == 42

    def test_float_word(self):
        m = Memory(1024)
        m.store_word(8, 2.5)
        assert m.load_word(8) == 2.5

    def test_misaligned_access_faults(self):
        m = Memory(1024)
        with pytest.raises(MemoryFault, match="misaligned"):
            m.load_word(3)

    def test_out_of_range_faults(self):
        m = Memory(1024)
        with pytest.raises(MemoryFault):
            m.load_word(1024)
        with pytest.raises(MemoryFault):
            m.load_word(-8)

    def test_block_roundtrip(self):
        m = Memory(1024)
        m.store_block(16, [1, 2, 3.5])
        assert m.load_block(16, 3) == [1, 2, 3.5]

    def test_block_overflow_faults(self):
        m = Memory(64)
        with pytest.raises(MemoryFault):
            m.store_block(56, [1, 2])

    def test_alloc_is_word_aligned_and_disjoint(self):
        m = Memory(1024)
        a = m.alloc(4)
        b = m.alloc(4)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 32

    def test_alloc_exhaustion(self):
        m = Memory(64)
        with pytest.raises(MemoryFault, match="out of memory"):
            m.alloc(100)

    def test_address_zero_reserved(self):
        m = Memory(1024)
        assert m.alloc(1) != 0

    def test_numpy_roundtrip(self):
        m = Memory(4096)
        data = np.arange(10, dtype=np.float64) * 1.5
        addr = m.alloc_numpy(data)
        out = m.read_numpy(addr, 10)
        np.testing.assert_allclose(out, data)

    def test_numpy_int_roundtrip(self):
        m = Memory(4096)
        data = np.arange(-5, 5, dtype=np.int64)
        addr = m.alloc_numpy(data)
        out = m.read_numpy(addr, 10, dtype=np.int64)
        np.testing.assert_array_equal(out, data)


class TestRegFiles:
    def test_r0_reads_zero_and_ignores_writes(self):
        rf = IntRegFile()
        rf.write(0, 99)
        assert rf.read(0) == 0

    def test_int_wraps_to_64_bits(self):
        rf = IntRegFile()
        rf.write(1, 1 << 64)
        assert rf.read(1) == 0
        rf.write(1, (1 << 63))
        assert rf.read(1) == -(1 << 63)

    def test_wrap64_identity_in_range(self):
        assert wrap64(12345) == 12345
        assert wrap64(-12345) == -12345

    def test_fp_file_stores_floats(self):
        rf = FpRegFile()
        rf.write(3, 7)
        assert rf.read(3) == 7.0
        assert isinstance(rf.read(3), float)


class TestCache:
    def small(self, **kw):
        defaults = dict(name="t", size_bytes=512, ways=2, line_bytes=32,
                        hit_latency=1, miss_latency=20)
        defaults.update(kw)
        return Cache(CacheConfig(**defaults))

    def test_first_access_misses_then_hits(self):
        c = self.small()
        assert c.access(0) == 20
        assert c.access(0) == 1
        assert c.access(24) == 1  # same line

    def test_distinct_lines_miss_separately(self):
        c = self.small()
        c.access(0)
        assert c.access(32) == 20

    def test_lru_eviction(self):
        c = self.small()  # 512B/2way/32B = 8 sets; set 0: lines 0,256,512..
        c.access(0)
        c.access(256)
        c.access(512)     # evicts line 0
        assert c.access(0) == 20
        assert c.stats.misses == 4

    def test_lru_touch_order(self):
        c = self.small()
        c.access(0)
        c.access(256)
        c.access(0)       # 0 becomes MRU
        c.access(512)     # evicts 256, not 0
        assert c.access(0) == 1

    def test_write_through_no_allocate(self):
        c = self.small()
        c.access(0, is_write=True)
        assert c.stats.write_misses == 1
        assert c.access(0) == 20  # write did not allocate

    def test_write_allocate_mode(self):
        c = self.small(write_allocate=True)
        c.access(0, is_write=True)
        assert c.access(0) == 1

    def test_probe_does_not_modify(self):
        c = self.small()
        assert not c.probe(0)
        c.access(0)
        assert c.probe(0)
        assert c.stats.accesses == 1

    def test_flush(self):
        c = self.small()
        c.access(0)
        c.flush()
        assert not c.probe(0)

    def test_miss_rate(self):
        c = self.small()
        c.access(0)
        c.access(0)
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=500, ways=2, line_bytes=32)
