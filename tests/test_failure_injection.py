"""Failure-injection tests: the integrated system must fail loudly and
precisely when the hardware/software contract is violated."""

import pytest

from repro.cpu import Core, CoreConfig, Memory
from repro.dyser import (
    Dfg,
    DyserConfig,
    DyserDevice,
    Fabric,
    FabricGeometry,
    FuOp,
    PortRef,
)
from repro.errors import DyserError, MemoryFault, SimulationError
from repro.isa import assemble


def add_config(config_id=0, fabric=None) -> DyserConfig:
    dfg = Dfg("add")
    n = dfg.add_node(FuOp.ADD, [PortRef(0), PortRef(1)])
    dfg.set_output(0, n)
    return DyserConfig(config_id, dfg, fabric or Fabric(FabricGeometry(4, 4)))


def run_asm(source, configs=(), memory=None, int_args=()):
    memory = memory or Memory(1 << 16)
    program = assemble(source)
    for config in configs:
        program.dyser_configs[config.config_id] = config
    device = DyserDevice(fabric=Fabric(FabricGeometry(4, 4))) \
        if configs else None
    core = Core(program, memory, dyser=device)
    core.set_args(int_args)
    return core.run()


class TestCoreFaults:
    def test_dyser_op_without_device(self):
        with pytest.raises(SimulationError, match="without DySER"):
            run_asm("dinit 0\nhalt")

    def test_unregistered_config(self):
        with pytest.raises(DyserError, match="unregistered"):
            run_asm("dinit 7\nhalt", configs=[add_config(0)])

    def test_send_before_init(self):
        with pytest.raises(DyserError, match="no configuration"):
            run_asm("dsend p0, r1\nhalt", configs=[add_config(0)])

    def test_send_to_unused_port(self):
        with pytest.raises(DyserError, match="does not use"):
            run_asm("dinit 0\ndsend p9, r1\nhalt",
                    configs=[add_config(0)])

    def test_recv_without_complete_invocation(self):
        # Only one of the two inputs sent: the recv must not hang or
        # invent data — it raises.
        with pytest.raises(DyserError, match="no pending invocation"):
            run_asm("dinit 0\ndsend p0, r1\ndrecv r2, p0\nhalt",
                    configs=[add_config(0)])

    def test_reconfigure_with_pending_inputs(self):
        configs = [add_config(0), add_config(1)]
        with pytest.raises(DyserError, match="still pending"):
            run_asm("dinit 0\ndsend p0, r1\ndinit 1\nhalt",
                    configs=configs)

    def test_reconfigure_with_unread_outputs(self):
        configs = [add_config(0), add_config(1)]
        with pytest.raises(DyserError, match="unread"):
            run_asm(
                "dinit 0\ndsend p0, r1\ndsend p1, r2\ndinit 1\nhalt",
                configs=configs)

    def test_wild_load_faults(self):
        with pytest.raises(MemoryFault):
            run_asm("li r1, 0x7ffff8\nld r2, r1, 64\nhalt",
                    memory=Memory(1 << 16))

    def test_misaligned_access_faults(self):
        with pytest.raises(MemoryFault, match="misaligned"):
            run_asm("li r1, 12\nld r2, r1, 0\nhalt")

    def test_vector_transfer_out_of_range(self):
        config = add_config(0)
        with pytest.raises(MemoryFault):
            run_asm(
                f"dinit 0\nli r1, {(1 << 16) - 16}\ndldv p0, r1, 8\nhalt",
                configs=[config], memory=Memory(1 << 16))

    def test_instruction_limit_stops_runaway(self):
        program = assemble("loop:\nj loop\nhalt")
        core = Core(program, Memory(1 << 12),
                    config=CoreConfig(has_dyser=False,
                                      max_instructions=500))
        with pytest.raises(SimulationError, match="instruction limit"):
            core.run()


class TestConfigContract:
    def test_config_for_bigger_fabric_rejected_on_small_device(self):
        # Config references ports that only exist on a bigger fabric.
        big = Fabric(FabricGeometry(8, 8))
        dfg = Dfg("wide")
        n = dfg.add_node(FuOp.ADD, [PortRef(30), PortRef(31)])
        dfg.set_output(0, n)
        config = DyserConfig(0, dfg, big)
        device = DyserDevice(fabric=Fabric(FabricGeometry(2, 2)))
        from repro.errors import ConfigurationError

        config.validate()  # fine on its own fabric
        small_config = DyserConfig(0, dfg, device.fabric)
        with pytest.raises(ConfigurationError):
            device.register_config(small_config)

    def test_device_rejects_invalid_config_at_register(self):
        from repro.errors import ConfigurationError

        dfg = Dfg("empty")
        dfg.add_node(FuOp.ADD, [PortRef(0), PortRef(1)])
        # No outputs declared.
        config = DyserConfig(0, dfg, Fabric(FabricGeometry(2, 2)))
        device = DyserDevice(fabric=Fabric(FabricGeometry(2, 2)))
        with pytest.raises(ConfigurationError, match="no outputs"):
            device.register_config(config)


class TestHarnessChecksCatchCorruption:
    def test_wrong_output_detected(self):
        """If the program writes the wrong answer, Instance.check says so
        (the harness surfaces correct=False rather than silently
        benchmarking garbage)."""
        from repro.workloads import get

        workload = get("vecadd")
        memory = Memory(1 << 20)
        instance = workload.prepare(memory, "tiny", 7)
        # Do not run anything: the output array still holds zeros.
        assert instance.check(memory) is False
