"""Focused unit tests for compiler internals: CFG analyses, LICM, CSE,
affine analysis, if-conversion, unrolling, reassociation, regalloc
components, and the shape classifier."""

import pytest

from repro.compiler.affine import Affine, AffineAnalysis, induction_step
from repro.compiler.cfg import dominators, innermost_loops, loop_exits, natural_loops
from repro.compiler.driver import frontend
from repro.compiler.ir import Compute, Const, Load, Store, Value
from repro.compiler.passes import licm, local_cse
from repro.compiler.regalloc import (
    ALLOCATABLE_INT,
    allocate,
    block_liveness,
    lower_phis,
)
from repro.compiler.reassoc import rebalance
from repro.compiler.shapes import Shape, classify_region
from repro.compiler.types import Scalar
from repro.dyser import Dfg, FuOp, FunctionalEvaluator, PortRef
from repro.dyser.dfg import ConstRef

NESTED = """
kernel f(out float y[], float a[], int n) {
    for (int i = 0; i < n; i = i + 1) {
        float s = 0.0;
        for (int j = 0; j < n - 1; j = j + 1) {
            s = s + a[i * n + j];
        }
        y[i] = s;
    }
}
"""

BRANCHY = """
kernel g(out int y[], int x[], int n) {
    for (int i = 0; i < n; i = i + 1) {
        int v = x[i];
        if (v > 10) { v = v - 10; } else { v = v + 1; }
        y[i] = v;
    }
}
"""


class TestCfgAnalyses:
    def test_dominators_entry_dominates_all(self):
        func = frontend(NESTED)
        dom = dominators(func)
        for block, doms in dom.items():
            assert func.entry in doms
            assert block in doms

    def test_natural_loops_nesting(self):
        func = frontend(NESTED)
        loops = natural_loops(func)
        assert len(loops) == 2
        outer = max(loops, key=lambda lp: len(lp.blocks))
        inner = min(loops, key=lambda lp: len(lp.blocks))
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.depth == 2 and outer.depth == 1

    def test_innermost_detection(self):
        func = frontend(NESTED)
        inner = innermost_loops(func)
        assert len(inner) == 1
        assert inner[0].is_innermost()

    def test_loop_exits(self):
        func = frontend(NESTED)
        for loop in natural_loops(func):
            exits = loop_exits(func, loop)
            assert len(exits) == 1
            assert exits[0][0] == loop.header


class TestLicm:
    def test_invariant_bound_hoisted(self):
        func = frontend(NESTED)  # frontend already runs licm
        inner = innermost_loops(func)[0]
        header = func.blocks[inner.header]
        # The n-1 bound must not be recomputed in the inner header.
        sub_in_header = [
            i for i in header.instrs
            if isinstance(i, Compute) and i.op is FuOp.ADD
            and any(isinstance(a, Const) and a.value == -1
                    for a in i.args)
        ]
        assert not sub_in_header

    def test_licm_idempotent(self):
        func = frontend(NESTED)
        assert not licm(func)  # already at fixed point
        func.verify()


class TestLocalCse:
    def test_duplicate_loads_merged(self):
        func = frontend("""
        kernel f(out float y[], float a[], int n) {
            for (int i = 0; i < n; i = i + 1) {
                y[i] = a[i] * a[i];
            }
        }
        """)
        loads = [
            i for b in func.blocks.values() for i in b.instrs
            if isinstance(i, Load)
        ]
        assert len(loads) == 1

    def test_store_invalidates_load_cse(self):
        func = frontend("""
        kernel f(out float y[], int n) {
            for (int i = 0; i < n; i = i + 1) {
                float a = y[0];
                y[i] = a + 1.0;
                float b = y[0];
                y[i] = a + b;
            }
        }
        """)
        loads = [
            i for b in func.blocks.values() for i in b.instrs
            if isinstance(i, Load)
        ]
        # The second y[0] load must survive: the store may alias it.
        assert len(loads) == 2


class TestAffineAnalysis:
    def test_address_difference(self):
        func = frontend("""
        kernel f(out float y[], float a[], int n) {
            for (int i = 0; i < n; i = i + 1) {
                y[i] = a[i] + a[i + 2];
            }
        }
        """)
        body_loads = []
        for block in func.blocks.values():
            analysis = AffineAnalysis()
            analysis.visit_block(block)
            for instr in block.instrs:
                if isinstance(instr, Load):
                    body_loads.append(analysis.form_of(instr.addr))
        assert len(body_loads) == 2
        assert abs(body_loads[0].difference(body_loads[1])) == 16

    def test_nonaffine_mul_is_opaque(self):
        v1, v2 = Value(1, Scalar.INT), Value(2, Scalar.INT)
        analysis = AffineAnalysis()
        from repro.compiler.ir import Block

        block = Block("b")
        r = Value(3, Scalar.INT)
        block.instrs.append(Compute(result=r, op=FuOp.MUL, args=[v1, v2]))
        analysis.visit_block(block)
        # Opaque: the result's form is itself.
        assert analysis.form_of(r) == Affine.of(r)

    def test_induction_step_detection(self):
        i = Value(1, Scalar.INT)
        nxt = Value(2, Scalar.INT)
        analysis = AffineAnalysis()
        analysis.forms[nxt] = Affine.of(i).add(Affine.constant(3))
        assert induction_step(analysis, i, nxt) == 3
        assert induction_step(analysis, i, Const(5, Scalar.INT)) is None


class TestShapes:
    def loop_of(self, src):
        func = frontend(src)
        loop = innermost_loops(func)[0]
        from repro.compiler.region import _loop_inductions

        return func, loop, _loop_inductions(func, loop)

    def test_straight(self):
        func, loop, ind = self.loop_of(
            "kernel f(out float y[], float a[], int n) {"
            " for (int i = 0; i < n; i = i + 1) { y[i] = a[i] * 2.0; } }")
        assert classify_region(func, loop, ind).shape is Shape.STRAIGHT

    def test_diamond(self):
        func, loop, ind = self.loop_of(BRANCHY)
        report = classify_region(func, loop, ind)
        assert report.shape is Shape.DIAMOND
        assert report.diamonds == 1

    def test_multi_exit(self):
        func, loop, ind = self.loop_of("""
        kernel f(out int y[], int x[], int n) {
            for (int i = 0; i < n; i = i + 1) {
                if (x[i] < 0) { break; }
                y[i] = x[i];
            }
        }
        """)
        assert classify_region(func, loop, ind).shape is Shape.MULTI_EXIT

    def test_loop_carried_control(self):
        func, loop, ind = self.loop_of("""
        kernel f(out float y[], float x0, int cap) {
            float x = x0;
            int i = 0;
            while (x > 1.0 && i < cap) {
                x = x * 0.5;
                i = i + 1;
            }
            y[0] = x;
        }
        """)
        report = classify_region(func, loop, ind)
        assert report.shape is Shape.LOOP_CARRIED_CONTROL
        assert report.carried_control
        assert report.curtails_compiler

    def test_induction_only_control_is_not_carried(self):
        func, loop, ind = self.loop_of(BRANCHY)
        assert not classify_region(func, loop, ind).carried_control


class TestReassociation:
    def chain_dfg(self, op, n):
        dfg = Dfg("chain")
        acc = PortRef(0)
        for k in range(1, n + 1):
            acc = dfg.add_node(op, [acc, PortRef(k)])
        dfg.set_output(0, acc)
        return dfg

    def test_depth_reduced_to_log(self):
        dfg = self.chain_dfg(FuOp.ADD, 8)
        assert dfg.depth() == 8
        assert rebalance(dfg)
        assert dfg.depth() == 4
        dfg.validate()

    def test_semantics_preserved_exactly_for_ints(self):
        dfg = self.chain_dfg(FuOp.ADD, 7)
        inputs = {p: (p + 1) * 11 for p in range(8)}
        before = FunctionalEvaluator(dfg)(inputs)
        rebalance(dfg)
        after = FunctionalEvaluator(dfg)(inputs)
        assert before == after

    def test_output_port_preserved(self):
        dfg = self.chain_dfg(FuOp.FMUL, 6)
        root = dfg.outputs[0]
        rebalance(dfg)
        assert dfg.outputs[0] is root

    def test_short_chains_untouched(self):
        dfg = self.chain_dfg(FuOp.ADD, 2)
        assert not rebalance(dfg)

    def test_non_associative_untouched(self):
        dfg = Dfg()
        a = dfg.add_node(FuOp.SUB, [PortRef(0), PortRef(1)])
        b = dfg.add_node(FuOp.SUB, [a, PortRef(2)])
        c = dfg.add_node(FuOp.SUB, [b, PortRef(3)])
        dfg.set_output(0, c)
        assert not rebalance(dfg)

    def test_multi_consumer_interior_blocks_chain(self):
        dfg = Dfg()
        a = dfg.add_node(FuOp.ADD, [PortRef(0), PortRef(1)])
        b = dfg.add_node(FuOp.ADD, [a, PortRef(2)])
        c = dfg.add_node(FuOp.ADD, [b, PortRef(3)])
        dfg.set_output(0, c)
        dfg.set_output(1, b)  # b observable: must not be deleted
        rebalance(dfg)
        dfg.validate()
        out = FunctionalEvaluator(dfg)({0: 1, 1: 2, 2: 3, 3: 4})
        assert out == {0: 10, 1: 6}

    def test_constants_participate(self):
        dfg = Dfg()
        a = dfg.add_node(FuOp.MUL, [PortRef(0), ConstRef(2)])
        b = dfg.add_node(FuOp.MUL, [a, PortRef(1)])
        c = dfg.add_node(FuOp.MUL, [b, ConstRef(3)])
        d = dfg.add_node(FuOp.MUL, [c, PortRef(2)])
        dfg.set_output(0, d)
        rebalance(dfg)
        dfg.validate()
        assert FunctionalEvaluator(dfg)({0: 1, 1: 5, 2: 7})[0] == 210


class TestRegallocComponents:
    def test_liveness_loop_carried_value_live_out(self):
        func = frontend("""
        kernel f(out int y[], int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) { s = s + i; }
            y[0] = s;
        }
        """)
        lower_phis(func)
        live_out = block_liveness(func)
        # Some block has the accumulator live-out around the back edge.
        assert any(live_out[b] for b in live_out)

    def test_allocation_no_register_clash(self):
        """Any two values with overlapping intervals must get different
        registers (within a file)."""
        func = frontend(NESTED)
        lower_phis(func)
        from repro.compiler.regalloc import build_intervals

        intervals, _ = build_intervals(func)
        alloc = allocate(func)
        by_reg: dict[tuple, list] = {}
        for iv in intervals:
            if iv.value in alloc.regs:
                by_reg.setdefault(
                    (iv.value.scalar, alloc.regs[iv.value]), []
                ).append(iv)
        for (_scalar, _reg), ivs in by_reg.items():
            ivs.sort(key=lambda iv: iv.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end < b.start, (a, b)

    def test_spilled_values_get_distinct_slots(self):
        decls = "\n".join(
            f"float v{i} = x[{i}] * {i + 1}.0;" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        func = frontend(
            f"kernel p(out float y[], float x[]) {{ {decls} "
            f"y[0] = {uses}; }}")
        lower_phis(func)
        alloc = allocate(func)
        assert alloc.spill_words == len(set(alloc.spills.values()))
        assert alloc.spill_words > 0

    def test_allocatable_pool_avoids_reserved(self):
        reserved = {0, 28, 29, 30, 31} | set(range(8, 16))
        assert not (set(ALLOCATABLE_INT) & reserved)
