"""Property-based tests (hypothesis) on core data structures and
invariants.

The most load-bearing invariant is the co-design contract: a fabric op
computes exactly what the host ISA computes — checked op-by-op against
the core's evaluator on random operands.  Other properties cover the
affine algebra, 64-bit wrapping, the assembler round trip, parallel-copy
sequentialization, the invocation engine's ordering guarantees, and the
spatial scheduler on random DFGs.
"""

import math
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.affine import Affine
from repro.cpu import Core, Memory, wrap64
from repro.dyser import (
    ConstRef,
    Dfg,
    DyserConfig,
    Fabric,
    FabricGeometry,
    FuOp,
    FunctionalEvaluator,
    NodeRef,
    PortRef,
    evaluate,
    uniform_capabilities,
)
from repro.dyser.ops import FU_OP_INFO, FuCapability, latency_of
from repro.isa import Instruction, Opcode, Program, assemble

ints = st.integers(min_value=-(2**63), max_value=2**63 - 1)
small_ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)
floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestWrap64:
    @given(ints)
    def test_identity_in_range(self, x):
        assert wrap64(x) == x

    @given(st.integers())
    def test_range(self, x):
        w = wrap64(x)
        assert -(2**63) <= w < 2**63

    @given(st.integers(), st.integers())
    def test_addition_homomorphism(self, a, b):
        assert wrap64(wrap64(a) + wrap64(b)) == wrap64(a + b)

    @given(st.integers())
    def test_idempotent(self, x):
        assert wrap64(wrap64(x)) == wrap64(x)


def _value_pool():
    from repro.compiler.ir import Value
    from repro.compiler.types import Scalar

    return [Value(i, Scalar.INT, f"b{i}") for i in range(4)]


#: Shared base values: Value equality is identity, so affine laws only
#: make sense over a common pool.
_POOL = _value_pool()


class TestAffineAlgebra:
    @st.composite
    @staticmethod
    def affines(draw):
        n = draw(st.integers(min_value=0, max_value=3))
        form = Affine.constant(draw(small_ints))
        for i in range(n):
            coeff = draw(st.integers(min_value=-8, max_value=8))
            form = form.add(Affine.of(_POOL[i]).scale(coeff))
        return form

    @given(affines(), affines())
    def test_add_commutes(self, a, b):
        assert a.add(b) == b.add(a)

    @given(affines(), affines(), affines())
    def test_add_associates(self, a, b, c):
        assert a.add(b).add(c) == a.add(b.add(c))

    @given(affines())
    def test_sub_self_is_zero(self, a):
        delta = a.sub(a)
        assert delta.is_constant and delta.offset == 0

    @given(affines(), small_ints)
    def test_scale_distributes(self, a, k):
        assert a.add(a).scale(k) == a.scale(k).add(a.scale(k))

    @given(affines(), affines())
    def test_difference_detects_constant_offsets(self, a, b):
        shifted = a.add(Affine.constant(8))
        assert shifted.difference(a) == 8
        if a.sub(b).is_constant:
            assert a.difference(b) == a.sub(b).offset


def _operand_for(op: FuOp, draw_int, draw_float):
    info = FU_OP_INFO[op]
    is_float_op = op.value.startswith("f") and op not in (
        FuOp.F2I,) or op in (FuOp.FSEL,)
    # Build operands per slot with correct domains.
    operands = []
    for slot in range(info.arity):
        if op in (FuOp.SEL,):
            operands.append(draw_int())
        elif op is FuOp.FSEL:
            operands.append(draw_int() if slot == 0 else draw_float())
        elif op in (FuOp.I2F,):
            operands.append(draw_int())
        elif op.value.startswith("f"):
            operands.append(draw_float())
        else:
            operands.append(draw_int())
    return operands


class TestCoDesignContract:
    """Fabric ops and host instructions must agree bit-for-bit."""

    _FU_TO_MACHINE = {fu: Opcode(fu.value) for fu in FuOp}

    @given(st.sampled_from(sorted(FuOp, key=lambda o: o.value)),
           st.data())
    @settings(max_examples=300)
    def test_fabric_matches_host(self, op, data):
        operands = _operand_for(
            op,
            lambda: data.draw(small_ints),
            lambda: data.draw(floats),
        )
        if op is FuOp.FSQRT and operands[0] < 0:
            operands[0] = abs(operands[0])
        fabric_result = evaluate(op, *operands)

        # Run the same op through the host core.
        program = Program()
        info = FU_OP_INFO[op]
        machine = self._FU_TO_MACHINE[op]
        from repro.isa.opcodes import OP_INFO

        signature = OP_INFO[machine].signature
        fields = {"rd": 1}
        int_regs, fp_regs = {}, {}
        reg = 2
        for kind, value in zip(signature[1:], operands):
            slot = {"rs1": "rs1", "fs1": "rs1", "rs2": "rs2",
                    "fs2": "rs2", "rs3": "rs3", "fs3": "rs3"}[kind]
            fields[slot] = reg
            if kind.startswith("f"):
                fp_regs[reg] = float(value)
            else:
                int_regs[reg] = int(value)
            reg += 1
        program.add(Instruction(machine, **fields))
        program.add(Instruction(Opcode.HALT))
        program.link()
        core = Core(program, Memory(1 << 12))
        for r, v in int_regs.items():
            core.iregs.write(r, v)
        for r, v in fp_regs.items():
            core.fregs.write(r, v)
        core.run()
        writes_fp = "fd" in signature
        host_result = (core.fregs.read(1) if writes_fp
                       else core.iregs.read(1))
        if isinstance(fabric_result, float) and math.isnan(fabric_result):
            assert math.isnan(host_result)
        else:
            assert host_result == fabric_result, op


class TestAssemblerRoundtrip:
    regs = st.integers(min_value=0, max_value=31)
    ports = st.integers(min_value=0, max_value=15)

    @given(st.sampled_from(sorted(Opcode, key=lambda o: o.value)),
           st.data())
    @settings(max_examples=200)
    def test_text_roundtrip(self, op, data):
        from repro.isa.opcodes import OP_INFO

        fields = {}
        needs_label = False
        for kind in OP_INFO[op].signature:
            if kind in ("rd", "fd"):
                fields["rd"] = data.draw(self.regs)
            elif kind in ("rs1", "fs1"):
                fields["rs1"] = data.draw(self.regs)
            elif kind in ("rs2", "fs2"):
                fields["rs2"] = data.draw(self.regs)
            elif kind in ("rs3", "fs3"):
                fields["rs3"] = data.draw(self.regs)
            elif kind == "imm":
                if op in (Opcode.FLI,):
                    fields["imm"] = data.draw(floats)
                else:
                    fields["imm"] = data.draw(small_ints)
            elif kind == "port":
                fields["port"] = data.draw(self.ports)
            elif kind == "label":
                fields["target"] = "L"
                needs_label = True
        insn = Instruction(op, **fields)
        text = insn.text() + "\nL:\nhalt" if needs_label \
            else insn.text() + "\nhalt"
        program = assemble(text)
        assert program.instructions[0].text() == insn.text()


class TestInvocationOrdering:
    @given(st.lists(st.tuples(small_ints, small_ints),
                    min_size=1, max_size=20))
    def test_results_arrive_in_send_order(self, pairs):
        from repro.dyser import DyserTimingParams, InvocationEngine

        dfg = Dfg()
        n = dfg.add_node(FuOp.ADD, [PortRef(0), PortRef(1)])
        dfg.set_output(0, n)
        config = DyserConfig(0, dfg, Fabric(FabricGeometry(2, 2)))
        engine = InvocationEngine(
            config, DyserTimingParams(input_fifo_depth=64,
                                      output_fifo_depth=64))
        for t, (a, b) in enumerate(pairs):
            engine.send(0, a, t)
            engine.send(1, b, t)
        results = [engine.recv(0, 0)[0] for _ in pairs]
        assert results == [wrap64(a + b) for a, b in pairs]

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=2, max_size=20))
    def test_fire_times_monotonic(self, arrival_times):
        from repro.dyser import DyserTimingParams, InvocationEngine

        dfg = Dfg()
        n = dfg.add_node(FuOp.ADD, [PortRef(0), ConstRef(1)])
        dfg.set_output(0, n)
        config = DyserConfig(0, dfg, Fabric(FabricGeometry(2, 2)))
        engine = InvocationEngine(
            config, DyserTimingParams(input_fifo_depth=64,
                                      output_fifo_depth=64))
        for t in arrival_times:
            engine.send(0, 1, t)
        fires = engine.fire_times
        assert all(b > a for a, b in zip(fires, fires[1:]))
        for t, fire in zip(arrival_times, fires):
            assert fire >= t


@st.composite
def random_dfgs(draw):
    """Random acyclic DFGs over a few ports and binary FP/int ops."""
    ops = draw(st.lists(
        st.sampled_from([FuOp.ADD, FuOp.SUB, FuOp.MUL, FuOp.AND,
                         FuOp.FADD, FuOp.FMUL, FuOp.MIN]),
        min_size=1, max_size=10))
    dfg = Dfg("random")
    sources = [PortRef(0), PortRef(1), PortRef(2)]
    refs = []
    for i, op in enumerate(ops):
        pool = sources + refs
        a = draw(st.sampled_from(pool))
        b = draw(st.sampled_from(pool))
        # Keep types coherent: float ops read ports or float nodes.
        refs.append(dfg.add_node(op, [a, b]))
    dfg.set_output(0, refs[-1])
    return dfg


class TestSchedulerProperties:
    @given(random_dfgs())
    @settings(max_examples=40, deadline=None)
    def test_random_dfgs_place_route_and_validate(self, dfg):
        from repro.compiler.schedule import schedule

        geometry = FabricGeometry(4, 4)
        fabric = Fabric(geometry, uniform_capabilities(geometry))
        config = schedule(0, dfg, fabric)
        config.validate()
        # Placement is injective and capability-legal (validate checks),
        # and path delays are at least the op-latency lower bound.
        # NB: the bound is the depth of the cone actually feeding port 0,
        # not dfg.depth() — random DFGs can carry deeper dead chains that
        # never reach the output (exactly what lint's RPR205 flags).
        def cone_depth(src):
            if not isinstance(src, NodeRef):
                return 0
            node = dfg.nodes[src.node]
            return 1 + max((cone_depth(s) for s in node.inputs), default=0)

        delays = config.path_delays()
        assert delays[0] >= 1
        assert delays[0] >= cone_depth(dfg.outputs[0])  # each op >= 1 cycle

    @given(random_dfgs())
    @settings(max_examples=20, deadline=None)
    def test_functional_evaluation_type_stable(self, dfg):
        evaluator = FunctionalEvaluator(dfg)
        out = evaluator({0: 3, 1: 4, 2: 5})
        assert set(out) == {0}


class TestParallelCopyProperty:
    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=1, max_size=6))
    def test_sequentialized_moves_preserve_semantics(self, targets):
        """Random parallel move sets (including cycles) executed in the
        sequentialized order must produce the parallel-assignment
        result."""
        from repro.compiler.ir import Function, Value
        from repro.compiler.regalloc import _sequentialize
        from repro.compiler.types import Scalar

        func = Function("t")
        slots = [Value(i, Scalar.INT, f"v{i}") for i in range(6)]
        moves = [(slots[i], slots[src]) for i, src in enumerate(targets)]
        ordered = _sequentialize(func, moves)
        # Simulate: registers hold their own index initially.
        env = {v: i for i, v in enumerate(slots)}
        for dst, src in ordered:
            env[dst] = env[src] if src in env else env.setdefault(src, 0)
        expected = {slots[i]: targets[i] if i < len(targets) else i
                    for i in range(len(targets))}
        for i, src in enumerate(targets):
            assert env[slots[i]] == src, (targets, ordered)


@lru_cache(maxsize=32)
def _lint_report(name: str):
    from repro import lint_workload

    return lint_workload(name)


class TestSuiteLintProperty:
    """Every suite workload's compiled configuration lints clean: the
    scheduler never emits an error-severity ``RPR2xx`` finding, and the
    IR verifier accepts the pre- and post-offload SSA."""

    @given(st.sampled_from(sorted(__import__("repro").SUITE)))
    @settings(max_examples=18, deadline=None)
    def test_compiled_workload_lints_clean(self, name):
        report = _lint_report(name)
        assert report.ok, report.render()
        # Shape advisories never escalate to errors.
        for diag in report:
            if diag.code.startswith("RPR3"):
                assert diag.severity is not __import__(
                    "repro").Severity.ERROR


class TestCompiledExpressionProperty:
    @given(st.lists(small_ints, min_size=3, max_size=3),
           st.sampled_from(["+", "-", "*"]),
           st.sampled_from(["+", "-", "*"]))
    @settings(max_examples=30, deadline=None)
    def test_random_int_expression(self, vals, op1, op2):
        from repro.compiler import compile_scalar

        a, b, c = vals
        src = f"""
        kernel f(out int y[], int a, int b, int c) {{
            y[0] = (a {op1} b) {op2} c;
        }}
        """
        result = compile_scalar(src)
        memory = Memory(1 << 16)
        py = memory.alloc(1)
        core = Core(result.program, memory)
        core.set_args((py, a, b, c))
        core.run()
        expected = wrap64(eval(f"wrap64(a {op1} b) {op2} c",
                               {"a": a, "b": b, "c": c,
                                "wrap64": wrap64}))
        assert memory.load_word(py) == expected
