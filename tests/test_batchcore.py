"""Tests for the batched lockstep backend (``repro.cpu.batchcore``).

Covers the three passes separately and end-to-end: lane planning
(``lane_key`` / ``plan_batches``), the lockstep core's config
validation, batched-vs-reference parity across the whole workload
suite including fault cases, divergence handling (a per-point
instruction limit evicts one point without poisoning its siblings,
with byte-identical stable error strings), a hypothesis property that
batched results are dict-identical to solo fast runs under random
per-point knobs, and the engine integration (``run_jobs`` groups
batched specs into lanes and caches per-point payloads byte-identical
to single-run payloads).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RunConfig, SweepSpec
from repro.cpu import BatchCore, CoreConfig, Memory
from repro.dyser import DyserTimingParams
from repro.engine import ArtifactCache, run_jobs
from repro.engine.jobs import JobSpec
from repro.errors import ReproError, SimulationError, stable_error_string
from repro.harness import (
    execute,
    execute_batch,
    get_backend,
    lane_key,
    plan_batches,
    verify_batch_parity,
)
from repro.harness.batch import execute_batch_group
from repro.obs.events import TraceOptions
from repro.workloads import SUITE


def _cfg(workload="dotprod", mode="dyser", **kw):
    kw.setdefault("scale", "tiny")
    kw.setdefault("backend", "batched")
    return RunConfig(workload=workload, mode=mode, **kw)


# ---------------------------------------------------------------------
# Pass 2: lane planning
# ---------------------------------------------------------------------


class TestPlanBatches:
    def test_timing_knobs_share_a_lane(self):
        configs = [
            _cfg(timing=DyserTimingParams(input_fifo_depth=d))
            for d in (2, 4, 8)
        ]
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1, 2]]
        assert singles == []

    def test_per_point_core_fields_share_a_lane(self):
        configs = [
            _cfg(core_config=CoreConfig(vector_port_words_per_cycle=r))
            for r in (1, 2, 4)
        ]
        groups, singles = plan_batches(configs)
        assert groups == [[0, 1, 2]]

    def test_functional_knobs_split_lanes(self):
        configs = [
            _cfg(),
            _cfg(workload="saxpy"),
            _cfg(mode="scalar"),
            _cfg(seed=11),
        ]
        groups, singles = plan_batches(configs)
        assert groups == []
        assert singles == [0, 1, 2, 3]

    def test_traced_configs_never_batch(self):
        configs = [
            _cfg(timing=DyserTimingParams(input_fifo_depth=2)),
            _cfg(timing=DyserTimingParams(input_fifo_depth=8),
                 trace=TraceOptions(enabled=True)),
            _cfg(timing=DyserTimingParams(input_fifo_depth=4)),
        ]
        groups, singles = plan_batches(configs)
        assert groups == [[0, 2]]
        assert singles == [1]

    def test_lane_of_one_is_a_single(self):
        groups, singles = plan_batches([_cfg()])
        assert groups == []
        assert singles == [0]

    def test_lane_key_ignores_per_point_fields(self):
        a = _cfg(core_config=CoreConfig(max_instructions=100))
        b = _cfg(core_config=CoreConfig(vector_port_words_per_cycle=1))
        assert lane_key(a) == lane_key(b)
        c = _cfg(core_config=CoreConfig(alu_latency=9))
        assert lane_key(a) != lane_key(c)


# ---------------------------------------------------------------------
# Pass 3: the lockstep core's config validation
# ---------------------------------------------------------------------


class TestBatchCoreValidation:
    def test_rejects_disagreeing_shared_fields(self):
        from repro.workloads import get as get_workload
        from repro.harness.runner import (_compile, _options_key,
                                          source_hash)
        from repro.harness.batch import _default_options

        base = _cfg()
        workload = get_workload(base.workload)
        compiled = _compile(base.workload,
                            source_hash(workload.source), base.mode,
                            _options_key(_default_options(base)))
        with pytest.raises(SimulationError, match="alu_latency"):
            BatchCore(compiled.program, Memory(base.memory_bytes),
                      [None, None],
                      [CoreConfig(has_dyser=True),
                       CoreConfig(has_dyser=True, alu_latency=9)])

    def test_rejects_empty_lane_and_traces(self):
        program = object()
        with pytest.raises(SimulationError):
            BatchCore(program, Memory(1 << 16), [], [])
        with pytest.raises(SimulationError, match="trace"):
            BatchCore(program, Memory(1 << 16), [None],
                      [CoreConfig(trace_limit=10)])

    def test_backend_registry_entry(self):
        backend = get_backend("batched")
        assert backend.batch_cls is BatchCore
        assert not backend.supports_tracing


# ---------------------------------------------------------------------
# Parity: every workload, both modes, fault cases included
# ---------------------------------------------------------------------


class TestBatchParity:
    @pytest.mark.parametrize("workload", sorted(SUITE))
    def test_suite_parity_dyser(self, workload):
        configs = [
            _cfg(workload, timing=DyserTimingParams(input_fifo_depth=d))
            for d in (2, 8)
        ]
        report = verify_batch_parity(configs)
        assert report.ok, report.summary()

    def test_scalar_lane_parity(self):
        configs = [
            _cfg("vecadd", mode="scalar",
                 core_config=CoreConfig(has_dyser=False,
                                        max_instructions=limit))
            for limit in (200_000_000, 100_000_001)
        ]
        report = verify_batch_parity(configs)
        assert report.ok, report.summary()

    def test_fault_case_parity(self):
        # One healthy point plus one that trips its instruction limit:
        # the lane must reproduce the solo stable error string exactly.
        configs = [
            _cfg("saxpy"),
            _cfg("saxpy", core_config=CoreConfig(max_instructions=40)),
        ]
        report = verify_batch_parity(configs)
        assert report.ok, report.summary()


# ---------------------------------------------------------------------
# Divergence: eviction must not poison siblings
# ---------------------------------------------------------------------


class TestDivergence:
    def test_mid_batch_fault_is_isolated(self):
        healthy = [
            _cfg("fir", timing=DyserTimingParams(input_fifo_depth=d))
            for d in (2, 8)
        ]
        sick = _cfg("fir", core_config=CoreConfig(max_instructions=40))
        outcomes = execute_batch([healthy[0], sick, healthy[1]])

        assert outcomes[1].result is None
        assert isinstance(outcomes[1].error, ReproError)
        with pytest.raises(ReproError) as solo_exc:
            execute(sick.with_(backend="fast"))
        assert (stable_error_string(outcomes[1].error)
                == stable_error_string(solo_exc.value))

        for cfg, outcome in zip(healthy, (outcomes[0], outcomes[2])):
            assert outcome.batched
            solo = execute(cfg.with_(backend="fast"))
            assert outcome.result.to_dict() == solo.to_dict()

    def test_all_points_faulting_fall_back_solo(self):
        configs = [
            _cfg("mm", core_config=CoreConfig(max_instructions=limit))
            for limit in (30, 60)
        ]
        outcomes = execute_batch(configs)
        for cfg, outcome in zip(configs, outcomes):
            assert outcome.result is None
            with pytest.raises(ReproError) as solo_exc:
                execute(cfg.with_(backend="fast"))
            assert (stable_error_string(outcome.error)
                    == stable_error_string(solo_exc.value))

    def test_points_reconverge_after_eviction(self):
        # Points evicted at different depths, then survivors run to
        # HALT: each outcome must still be its exact solo result.
        configs = [
            _cfg("stencil2d",
                 core_config=CoreConfig(max_instructions=limit))
            for limit in (25, 75, 200_000_000)
        ]
        outcomes = execute_batch_group(configs)
        assert outcomes[0].result is None and outcomes[1].result is None
        assert outcomes[2].result is not None
        solo = execute(configs[2].with_(backend="fast"))
        assert outcomes[2].result.to_dict() == solo.to_dict()


# ---------------------------------------------------------------------
# Property: batched == fast, point by point, under random knobs
# ---------------------------------------------------------------------


class TestBatchedProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        depths=st.lists(st.sampled_from([1, 2, 4, 8]),
                        min_size=2, max_size=4),
        interval=st.sampled_from([1, 2]),
        rate=st.sampled_from([1, 2, 4]),
    )
    def test_batched_matches_fast_per_point(self, depths, interval,
                                            rate):
        configs = [
            _cfg("dotprod",
                 timing=DyserTimingParams(input_fifo_depth=d,
                                          initiation_interval=interval),
                 core_config=CoreConfig(
                     vector_port_words_per_cycle=rate))
            for d in depths
        ]
        outcomes = execute_batch_group(configs)
        for cfg, outcome in zip(configs, outcomes):
            solo = execute(cfg.with_(backend="fast"))
            assert outcome.result.to_dict() == solo.to_dict()


# ---------------------------------------------------------------------
# Engine integration: lanes inside run_jobs
# ---------------------------------------------------------------------


class TestEngineBatching:
    def _sweep(self):
        return SweepSpec(
            workloads=("saxpy",),
            modes=("dyser",),
            base={"scale": "tiny", "backend": "batched"},
            axes=(("input_fifo_depth", (2, 4, 8)),),
        )

    def test_run_jobs_accepts_sweepspec_and_batches(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        report = run_jobs(self._sweep(), cache=cache, jobs=1)
        assert len(report.results) == 3
        assert [r.status for r in report.records] == ["executed"] * 3
        assert all(res.stats.instructions > 0 for res in report.results)
        # The lane shared one compile; a re-run is all cache hits.
        rerun = run_jobs(self._sweep(), cache=cache, jobs=1)
        assert [r.status for r in rerun.records] == ["hit"] * 3

    def test_batched_cache_entries_match_single_run_payloads(
            self, tmp_path):
        specs = self._sweep().jobs()
        cache_a = ArtifactCache(tmp_path / "a")
        run_jobs(specs, cache=cache_a, jobs=1)
        solo_specs = [JobSpec(**{
            **{name: getattr(s, name)
               for name in s.__dataclass_fields__},
            "backend": "fast"}) for s in specs]
        cache_b = ArtifactCache(tmp_path / "b")
        run_jobs(solo_specs, cache=cache_b, jobs=1)
        # backend is hash-excluded, so the entries must collide — and
        # their payload bytes must be identical.
        for spec in specs:
            assert cache_a.load_run(spec) == cache_b.load_run(spec)
            assert cache_a.load_run(spec) is not None

    def test_failed_lane_falls_back_to_solo(self, tmp_path,
                                            monkeypatch):
        import repro.harness.batch as batch_mod

        def boom(configs, compiled=None):
            raise RuntimeError("lane detonated")

        monkeypatch.setattr(batch_mod, "execute_batch_group", boom)
        report = run_jobs(self._sweep(), cache=ArtifactCache(tmp_path),
                          jobs=1)
        assert [r.status for r in report.records] == ["executed"] * 3
        assert all(res is not None for res in report.results)

    def test_injected_worker_disables_batching(self):
        seen = []

        def spy(spec, cache=None):
            seen.append(spec.input_fifo_depth)
            from repro.engine.pool import _worker
            return _worker(spec, cache)

        report = run_jobs(self._sweep(), worker=spy, jobs=1)
        assert sorted(seen) == [2, 4, 8]
        assert [r.status for r in report.records] == ["executed"] * 3
