"""Tests for the optional L2 cache level and configuration serialization."""

import numpy as np
import pytest

from repro.compiler import compile_scalar
from repro.cpu import Core, CoreConfig, Memory
from repro.cpu.cache import CacheConfig, l2_config
from repro.workloads import get

STREAM = """
kernel touch(out float y[], float a[], int n, int reps) {
    for (int r = 0; r < reps; r = r + 1) {
        for (int i = 0; i < n; i = i + 1) {
            y[i] = y[i] + a[i];
        }
    }
}
"""


def run_touch(core_config, n=2048, reps=3):
    result = compile_scalar(STREAM)
    memory = Memory(1 << 22)
    a = np.ones(n)
    y = np.zeros(n)
    py = memory.alloc_numpy(y)
    pa = memory.alloc_numpy(a)
    core = Core(result.program, memory, config=core_config)
    core.set_args((py, pa, n, reps))
    stats = core.run()
    np.testing.assert_allclose(memory.read_numpy(py, n), reps * a)
    return core, stats


class TestL2:
    def test_default_has_no_l2(self):
        core, _ = run_touch(CoreConfig(has_dyser=False), n=64, reps=1)
        assert core.l2 is None

    def test_l2_absorbs_l1_capacity_misses(self):
        """Working set (2 x 16 KiB) thrashes the 8 KiB L1 but fits the
        256 KiB L2.  With DRAM at the same distance in both setups
        (~30 cycles — an ASIC-clocked configuration; the FPGA default's
        12-cycle DRAM makes an L2 pointless, which is presumably why the
        prototype's L2 mattered less than on silicon), repeat sweeps
        must run faster through the L2."""
        from repro.cpu.cache import dcache_config

        far_dram = dcache_config()
        far_dram.miss_latency = 30
        without = run_touch(
            CoreConfig(has_dyser=False, dcache=far_dram))[1]
        with_l2 = run_touch(
            CoreConfig(has_dyser=False, dcache=far_dram,
                       l2=l2_config()))[1]
        assert with_l2.cycles < without.cycles

    def test_l2_stats_populated(self):
        core, _ = run_touch(CoreConfig(has_dyser=False, l2=l2_config()))
        assert core.l2.stats.accesses > 0
        # Second and third sweeps hit in L2.
        assert core.l2.stats.hits > core.l2.stats.misses

    def test_l2_miss_costs_more_than_l2_hit(self):
        """First touch goes to DRAM through the L2; the L2 path's miss
        must be at least as expensive as the no-L2 DRAM latency."""
        fast_l2 = CacheConfig(name="l2", size_bytes=256 * 1024, ways=8,
                              line_bytes=64, hit_latency=6,
                              miss_latency=28)
        single = run_touch(
            CoreConfig(has_dyser=False, l2=fast_l2), n=64, reps=1)[1]
        # One sweep, cold: everything misses both levels; cycles must
        # reflect the deeper path (2 + 28 + ... > 12).
        base = run_touch(CoreConfig(has_dyser=False), n=64, reps=1)[1]
        assert single.cycles > base.cycles


class TestConfigSerialization:
    def roundtrip(self, name="saxpy"):
        from repro.compiler import compile_dyser
        from repro.dyser.serialize import config_from_dict, config_to_dict

        result = compile_dyser(get(name).source)
        config = result.program.dyser_configs[0]
        data = config_to_dict(config)
        clone = config_from_dict(data, config.fabric)
        return config, clone, data

    def test_roundtrip_validates(self):
        _config, clone, _data = self.roundtrip()
        clone.validate()

    def test_roundtrip_preserves_structure(self):
        config, clone, _data = self.roundtrip()
        assert clone.config_id == config.config_id
        assert clone.dfg.input_ports == config.dfg.input_ports
        assert clone.dfg.output_ports == config.dfg.output_ports
        assert clone.placement == config.placement
        assert clone.path_delays() == config.path_delays()
        assert clone.config_words() == config.config_words()

    def test_roundtrip_preserves_semantics(self):
        from repro.dyser import FunctionalEvaluator

        config, clone, _data = self.roundtrip("dotprod")
        inputs = {p: float(p + 1) for p in config.dfg.input_ports}
        original = FunctionalEvaluator(config.dfg)(inputs)
        cloned = FunctionalEvaluator(clone.dfg)(inputs)
        assert original == cloned

    def test_json_compatible(self):
        import json

        _config, _clone, data = self.roundtrip()
        text = json.dumps(data)
        assert json.loads(text) == data

    def test_bad_payload_rejected(self):
        from repro.dyser import Fabric, FabricGeometry
        from repro.dyser.serialize import config_from_dict
        from repro.errors import DyserError

        with pytest.raises(DyserError, match="missing"):
            config_from_dict({"config_id": 1}, Fabric(FabricGeometry(2, 2)))
