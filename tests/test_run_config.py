"""Tests for the redesigned run API (RunConfig) and its bridges.

Covers: RunConfig validation and derivation helpers (including the
``backend`` field), the removal of the legacy kwargs shim, the lossless
JobSpec <-> RunConfig conversion, content-hash stability (golden hashes
pin that neither the RunConfig redesign nor the backend field
invalidated warm caches), run-summary serialization round trips, and
the format_series zero-bar fix.
"""

from __future__ import annotations

import warnings

import pytest

from repro import (
    CompilerOptions,
    DyserTimingParams,
    Fabric,
    FabricGeometry,
    JobSpec,
    RunConfig,
    TraceOptions,
    WorkloadError,
    format_series,
    run_workload,
)
from repro.harness.runner import Comparison, RunResult, compare

#: Golden job hashes, captured before the RunConfig redesign.  If these
#: move, every user's warm artifact cache goes cold — treat a failure
#: here as an API break, not a test to update.
GOLDEN_HASHES = {
    ("mm", "dyser"):
        "2271a120c34146ac4994f5811385cf2d4952685436b3661ebc355595570c032e",
    ("mm", "scalar"):
        "9aef86fd98b80638c935fba8d73f5ece943ac549f9abbca9d2540322741511d9",
}


class TestRunConfig:
    def test_defaults_match_historical_kwargs_defaults(self):
        config = RunConfig(workload="mm")
        assert (config.mode, config.scale, config.seed) == \
            ("dyser", "small", 7)
        assert config.memory_bytes == 1 << 22
        assert config.options is None and config.timing is None
        assert config.trace == TraceOptions()

    def test_rejects_unknown_mode_and_empty_workload(self):
        with pytest.raises(WorkloadError):
            RunConfig(workload="mm", mode="vliw")
        with pytest.raises(WorkloadError):
            RunConfig(workload="")

    def test_with_and_traced_derivations(self):
        base = RunConfig(workload="mm", scale="tiny")
        other = base.with_(seed=11)
        assert other.seed == 11 and other.workload == "mm"
        assert base.seed == 7  # frozen: original untouched
        traced = base.traced(capacity=128)
        assert traced.trace.enabled and traced.trace.capacity == 128
        assert "[traced]" in traced.describe()
        assert "[traced]" not in base.describe()

    def test_is_hashable(self):
        a = RunConfig(workload="mm", scale="tiny")
        b = RunConfig(workload="mm", scale="tiny")
        assert a == b and hash(a) == hash(b)


class TestLegacyShimRemoved:
    """The pre-1.1 ``run_workload(name, **kwargs)`` form is gone."""

    def test_name_form_raises_type_error(self):
        with pytest.raises(TypeError, match="takes a RunConfig"):
            run_workload("saxpy")

    def test_kwargs_form_raises_type_error(self):
        with pytest.raises(TypeError):
            run_workload("saxpy", mode="dyser", scale="tiny")

    def test_run_kwargs_bridge_is_gone(self):
        spec = JobSpec(workload="saxpy", mode="scalar", scale="tiny")
        assert not hasattr(spec, "run_kwargs")

    def test_config_form_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_workload(RunConfig(workload="saxpy", scale="tiny"))

    def test_config_plus_kwargs_is_an_error(self):
        with pytest.raises(TypeError):
            run_workload(RunConfig(workload="saxpy"), scale="tiny")
        with pytest.raises(TypeError):
            run_workload()


class TestBackendField:
    def test_default_backend_is_fast(self):
        from repro import DEFAULT_BACKEND

        assert RunConfig(workload="mm").backend == DEFAULT_BACKEND == "fast"
        assert JobSpec(workload="mm").backend == DEFAULT_BACKEND

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(WorkloadError, match="unknown backend"):
            RunConfig(workload="mm", backend="verilator")
        with pytest.raises(WorkloadError, match="unknown backend"):
            JobSpec(workload="mm", backend="verilator")

    def test_backend_survives_the_jobspec_bridge(self):
        spec = JobSpec(workload="mm", backend="reference")
        config = spec.to_run_config()
        assert config.backend == "reference"
        assert JobSpec.from_run_config(config) == spec

    def test_backend_does_not_enter_the_job_hash(self):
        # Both backends are cycle-exact-equal, so a cached result is
        # valid regardless of which backend computed it.
        fast = JobSpec(workload="mm", backend="fast")
        ref = JobSpec(workload="mm", backend="reference")
        assert fast.job_hash == ref.job_hash

    def test_backend_in_describe_only_when_non_default(self):
        assert "backend" not in RunConfig(workload="mm").describe()
        assert "backend=reference" in RunConfig(
            workload="mm", backend="reference").describe()


class TestJobSpecBridge:
    def test_round_trip_is_lossless(self):
        spec = JobSpec(workload="saxpy", mode="dyser", scale="tiny",
                       seed=3, geometry=(4, 4), unroll=2,
                       input_fifo_depth=8, config_cache_capacity=2)
        clone = JobSpec.from_run_config(spec.to_run_config())
        assert clone == spec
        assert clone.job_hash == spec.job_hash

    def test_round_trip_default_spec(self):
        spec = JobSpec(workload="mm")
        assert JobSpec.from_run_config(spec.to_run_config()) == spec

    def test_trace_options_do_not_enter_the_hash(self):
        spec = JobSpec(workload="mm")
        traced = spec.to_run_config(
            trace=TraceOptions(enabled=True, capacity=7))
        assert traced.trace.enabled
        assert JobSpec.from_run_config(traced).job_hash == spec.job_hash

    def test_bare_config_maps_to_default_spec(self):
        config = RunConfig(workload="mm", mode="scalar", scale="tiny")
        spec = JobSpec.from_run_config(config)
        assert spec == JobSpec(workload="mm", mode="scalar", scale="tiny")

    def test_explicit_parameter_objects_survive(self):
        config = RunConfig(
            workload="mm", scale="tiny",
            options=CompilerOptions(
                fabric=Fabric(FabricGeometry(4, 4)), unroll=4),
            timing=DyserTimingParams(input_fifo_depth=16))
        spec = JobSpec.from_run_config(config)
        assert spec.geometry == (4, 4)
        assert spec.unroll == 4
        assert spec.input_fifo_depth == 16
        back = spec.to_run_config()
        assert back.options.unroll == 4
        assert back.timing.input_fifo_depth == 16


class TestHashStability:
    @pytest.mark.parametrize("mode", ["dyser", "scalar"])
    def test_golden_job_hashes_unchanged(self, mode):
        assert JobSpec(workload="mm", mode=mode).job_hash == \
            GOLDEN_HASHES[("mm", mode)]

    def test_hash_ignores_run_config_round_trip(self):
        for spec in (JobSpec(workload="mm"),
                     JobSpec(workload="saxpy", geometry=(4, 4))):
            assert JobSpec.from_run_config(
                spec.to_run_config()).job_hash == spec.job_hash


class TestRunSummarySerialization:
    def test_run_result_round_trip(self):
        result = run_workload(RunConfig(workload="saxpy", scale="tiny"))
        clone = RunResult.from_dict(result.to_dict())
        assert clone.cycles == result.cycles
        assert clone.correct == result.correct
        assert clone.energy.total_j == pytest.approx(result.energy.total_j)
        assert clone.stats.to_dict() == result.stats.to_dict()
        assert [r.loop_header for r in clone.compile_result.regions] == \
            [r.loop_header for r in result.compile_result.regions]
        assert clone.compile_result.program is None
        assert clone.events is None

    def test_run_result_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            RunResult.from_dict({"format": "something-else"})

    def test_comparison_round_trip(self):
        comp = compare("saxpy", scale="tiny")
        clone = Comparison.from_dict(comp.to_dict())
        assert clone.workload == "saxpy"
        assert clone.speedup == pytest.approx(comp.speedup)
        assert clone.energy_ratio == pytest.approx(comp.energy_ratio)

    def test_traced_results_never_serialize_the_stream(self):
        result = run_workload(
            RunConfig(workload="saxpy", scale="tiny",
                      trace=TraceOptions(enabled=True)))
        assert result.events is not None
        data = result.to_dict()
        assert "events" not in data
        assert RunResult.from_dict(data).events is None


class TestFormatSeries:
    def test_zero_renders_empty_bar(self):
        text = format_series("speedup", ["a", "b", "c"], [2.0, 0.0, 1.0])
        lines = text.splitlines()
        assert lines[1].count("#") == 24      # peak
        assert lines[2].count("#") == 0       # y == 0: no sliver
        assert lines[3].count("#") == 12
        assert not lines[2].endswith(" ")     # no trailing whitespace

    def test_nonzero_values_keep_at_least_one_mark(self):
        text = format_series("s", [1, 2], [100.0, 0.001])
        assert text.splitlines()[2].count("#") == 1
