"""Smoke tests: every example script must run cleanly end to end."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py")
)


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = load_module(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "compiler_explorer", "design_space",
            "custom_kernel"} <= names
