"""Tests for program bundles: compiled artifacts round-trip through JSON
and execute identically."""

import json

import numpy as np
import pytest

from repro.compiler import compile_dyser
from repro.cpu import Core, Memory
from repro.dyser import DyserDevice, Fabric, FabricGeometry
from repro.errors import ReproError
from repro.harness import bundle_from_dict, bundle_to_dict, load_bundle, save_bundle
from repro.workloads import get

FABRIC = Fabric(FabricGeometry(8, 8))


def run_program(program, workload_name, seed=7):
    workload = get(workload_name)
    memory = Memory(1 << 22)
    instance = workload.prepare(memory, "tiny", seed)
    device = DyserDevice(fabric=FABRIC) if program.uses_dyser() else None
    core = Core(program, memory, dyser=device)
    core.set_args(instance.int_args, instance.fp_args)
    stats = core.run()
    return instance.check(memory), stats


class TestBundle:
    def roundtrip(self, name="saxpy", tmp_path=None):
        program = compile_dyser(get(name).source).program
        if tmp_path is not None:
            path = tmp_path / f"{name}.bundle.json"
            save_bundle(program, path)
            return program, load_bundle(path, FABRIC)
        data = bundle_to_dict(program)
        return program, bundle_from_dict(
            json.loads(json.dumps(data)), FABRIC)

    def test_roundtrip_executes_correctly(self, tmp_path):
        _original, loaded = self.roundtrip("saxpy", tmp_path)
        correct, _stats = run_program(loaded, "saxpy")
        assert correct

    def test_roundtrip_cycle_identical(self):
        original, loaded = self.roundtrip("dotprod")
        ok1, stats1 = run_program(original, "dotprod")
        ok2, stats2 = run_program(loaded, "dotprod")
        assert ok1 and ok2
        assert stats1.cycles == stats2.cycles

    def test_roundtrip_preserves_spills(self):
        from repro.compiler import compile_scalar

        decls = "\n".join(
            f"float v{i} = x[{i}] * {i + 1}.0;" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        program = compile_scalar(
            f"kernel p(out float y[], float x[]) {{ {decls} "
            f"y[0] = {uses}; }}").program
        clone = bundle_from_dict(bundle_to_dict(program), FABRIC)
        assert clone.spill_words == program.spill_words

    def test_multi_config_bundle(self):
        source = """
        kernel two(out float y[], float a[], float b[], int n, int m) {
            for (int t = 0; t < m; t = t + 1) {
                for (int i = 0; i < n; i = i + 1) {
                    y[i] = y[i] + a[i] * a[i];
                }
                for (int i = 0; i < n; i = i + 1) {
                    y[i] = y[i] * b[i] + 0.5;
                }
            }
        }
        """
        program = compile_dyser(source).program
        assert len(program.dyser_configs) == 2
        clone = bundle_from_dict(bundle_to_dict(program), FABRIC)
        assert sorted(clone.dyser_configs) == sorted(program.dyser_configs)
        # Execute the clone end to end.
        n, m = 16, 3
        rng = np.random.default_rng(5)
        a, b = rng.random(n), rng.random(n)
        y = rng.random(n)
        expected = y.copy()
        for _ in range(m):
            expected = expected + a * a
            expected = expected * b + 0.5
        memory = Memory(1 << 22)
        py = memory.alloc_numpy(y)
        pa, pb = memory.alloc_numpy(a), memory.alloc_numpy(b)
        core = Core(clone, memory, dyser=DyserDevice(fabric=FABRIC))
        core.set_args((py, pa, pb, n, m))
        core.run()
        np.testing.assert_allclose(memory.read_numpy(py, n), expected,
                                   rtol=1e-9)

    def test_bad_format_rejected(self):
        with pytest.raises(ReproError, match="not a program bundle"):
            bundle_from_dict({"format": "something-else"}, FABRIC)

    def test_bundle_is_json_document(self, tmp_path):
        program = compile_dyser(get("vecadd").source).program
        path = tmp_path / "v.json"
        save_bundle(program, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-bundle-v1"
        assert "dinit" in data["assembly"]
