"""Tests for the parallel sweep engine (repro.engine).

Covers: job-hash stability/uniqueness, cache hit-vs-miss round trips,
invalidation on code-fingerprint change, compile-artifact reuse,
failure/retry/timeout handling with injected workers, serial-vs-pooled
parity, and the warm-cache zero-work acceptance criterion.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import pytest

from repro.engine import (
    EXECUTED,
    FAILED,
    HIT,
    ArtifactCache,
    EngineFailure,
    JobSpec,
    code_fingerprint,
    comparison_jobs,
    execute_job,
    result_from_dict,
    result_to_dict,
    run_comparisons,
    run_jobs,
    suite_jobs,
    sweep,
)
from repro.errors import WorkloadError
from repro.harness import RunConfig, clear_caches, run_workload
from repro.workloads import SUITE


# ---------------------------------------------------------------------
# Injected workers (module-level so they pickle into pool processes).
# ---------------------------------------------------------------------

def _ok_worker(spec, cache=None):
    """Cheap deterministic payload without compiling anything."""
    payload = result_to_dict(run_workload(RunConfig(
        workload=spec.workload, mode=spec.mode, scale="tiny",
        seed=spec.seed)))
    return payload


def _failing_worker(spec, cache=None):
    raise RuntimeError("injected failure")


def _flaky_worker(spec, cache=None):
    """Fails the first time (per flag dir), succeeds after."""
    flag = pathlib.Path(os.environ["REPRO_TEST_FLAKY_DIR"]) / spec.workload
    if not flag.exists():
        flag.write_text("tripped")
        raise RuntimeError("first-attempt failure")
    return _ok_worker(spec, cache)


def _crashing_worker(spec, cache=None):
    """Hard worker death (no exception): exercises BrokenProcessPool."""
    flag = pathlib.Path(os.environ["REPRO_TEST_FLAKY_DIR"]) / spec.workload
    if not flag.exists():
        flag.write_text("tripped")
        os._exit(13)
    return _ok_worker(spec, cache)


def _sleepy_worker(spec, cache=None):
    import time

    time.sleep(30)
    return _ok_worker(spec, cache)  # pragma: no cover


# ---------------------------------------------------------------------
# JobSpec hashing
# ---------------------------------------------------------------------

class TestJobHash:
    def test_stable_across_instances(self):
        assert JobSpec("mm").job_hash == JobSpec("mm").job_hash
        assert JobSpec("mm", unroll=8).job_hash == JobSpec("mm").job_hash

    def test_unique_per_knob(self):
        base = JobSpec("mm")
        seen = {base.job_hash}
        for variant in (
            JobSpec("saxpy"),
            JobSpec("mm", mode="scalar"),
            JobSpec("mm", scale="tiny"),
            JobSpec("mm", seed=8),
            JobSpec("mm", geometry=(4, 4)),
            JobSpec("mm", unroll=4),
            JobSpec("mm", vectorize=False),
            JobSpec("mm", input_fifo_depth=2),
            JobSpec("mm", config_cache_capacity=0),
            JobSpec("mm", vector_port_words_per_cycle=4),
            JobSpec("mm", energy_overrides=(("fpu_nj", 2.0),)),
        ):
            assert variant.job_hash not in seen, variant.describe()
            seen.add(variant.job_hash)

    def test_type_normalization(self):
        assert (JobSpec("mm", vectorize=1).job_hash
                == JobSpec("mm", vectorize=True).job_hash)
        assert (JobSpec("mm", geometry=[8, 8]).job_hash
                == JobSpec("mm", geometry=(8, 8)).job_hash)

    def test_scalar_normalizes_dyser_knobs(self):
        # A scalar baseline maps to one cache entry across a DySER sweep.
        a = JobSpec("mm", mode="scalar", geometry=(2, 2), unroll=1)
        b = JobSpec("mm", mode="scalar", geometry=(8, 8), unroll=8)
        assert a.job_hash == b.job_hash

    def test_compile_hash_includes_source(self, monkeypatch):
        from repro.workloads import suite as suite_mod

        spec = JobSpec("mm")
        before = spec.compile_hash
        workload = suite_mod.SUITE["mm"]
        edited = type(workload)(
            name=workload.name, category=workload.category,
            description=workload.description,
            source=workload.source + "\n// edited",
            prepare=workload.prepare,
            flops_per_item=workload.flops_per_item)
        monkeypatch.setitem(suite_mod.SUITE, "mm", edited)
        assert spec.compile_hash != before

    def test_validation(self):
        with pytest.raises(WorkloadError):
            JobSpec("mm", mode="gpu")
        with pytest.raises(WorkloadError):
            JobSpec("mm", geometry=(8,))
        with pytest.raises(WorkloadError):
            sweep(["mm"], not_a_knob=[1, 2])


class TestSweepBuilders:
    def test_grid_expansion(self):
        specs = sweep(["mm", "saxpy"], base={"scale": "tiny"},
                      geometry=[(4, 4), (8, 8)], unroll=[1, 8])
        assert len(specs) == 2 * 2 * 2
        assert {s.workload for s in specs} == {"mm", "saxpy"}
        assert all(s.scale == "tiny" for s in specs)
        assert len({s.job_hash for s in specs}) == 8

    def test_comparison_jobs_pairing(self):
        specs = comparison_jobs(["mm"], scale="tiny")
        assert [s.mode for s in specs] == ["scalar", "dyser"]

    def test_suite_jobs_cover_suite(self):
        specs = suite_jobs(scale="tiny")
        assert len(specs) == 2 * len(SUITE)


# ---------------------------------------------------------------------
# Cache round trips and invalidation
# ---------------------------------------------------------------------

class TestCache:
    def test_run_roundtrip_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        specs = [JobSpec("vecadd", scale="tiny")]
        cold = run_jobs(specs, cache=cache)
        assert cold.executed == 1 and cold.cache_hits == 0
        warm = run_jobs(specs, cache=cache)
        assert warm.executed == 0 and warm.cache_hits == 1
        a, b = cold.results[0], warm.results[0]
        assert a.cycles == b.cycles
        assert a.energy.total_nj == b.energy.total_nj
        assert a.stats.insn_mix == b.stats.insn_mix
        assert a.stats.stall_cycles == b.stats.stall_cycles
        assert b.correct

    def test_result_serialization_roundtrip(self):
        result = run_workload(RunConfig(workload="saxpy", scale="tiny"))
        back = result_from_dict(result_to_dict(result))
        assert back.cycles == result.cycles
        assert back.instructions == result.instructions
        assert back.energy.total_nj == result.energy.total_nj
        assert back.work_items == result.work_items
        assert ([r.reason for r in back.compile_result.regions]
                == [r.reason for r in result.compile_result.regions])

    def test_fingerprint_invalidation(self, tmp_path):
        spec = JobSpec("vecadd", scale="tiny")
        old = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        run_jobs([spec], cache=old)
        assert old.load_run(spec) is not None
        new = ArtifactCache(tmp_path, fingerprint="bb" * 32)
        assert new.load_run(spec) is None  # code change == cold cache
        report = run_jobs([spec], cache=new)
        assert report.executed == 1

    def test_code_fingerprint_is_stable_hex(self):
        a, b = code_fingerprint(), code_fingerprint()
        assert a == b
        int(a, 16)
        assert len(a) == 64

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        spec = JobSpec("vecadd", scale="tiny")
        run_jobs([spec], cache=cache)
        [entry] = [p for p in cache.entries() if p.parent.name == "run"]
        entry.write_text(entry.read_text()[:40])  # simulate torn write
        report = run_jobs([spec], cache=cache)
        assert report.executed == 1 and report.cache_hits == 0

    def test_compile_artifact_reuse(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        spec = JobSpec("mm", scale="tiny")
        fresh = execute_job(spec, cache)
        clear_caches()  # drop the in-process lru compile cache
        assert cache.load_compile(spec) is not None
        cached = execute_job(spec, cache)
        assert cached.cycles == fresh.cycles
        assert cached.energy.total_nj == fresh.energy.total_nj
        assert cached.correct

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_jobs([JobSpec("vecadd", scale="tiny")], cache=cache)
        assert cache.clear() > 0
        assert cache.entries() == []


# ---------------------------------------------------------------------
# Cache maintenance: byte accounting, pruning, concurrent writers
# ---------------------------------------------------------------------

class TestCacheMaintenance:
    def test_stats_accounts_bytes_per_kind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_jobs([JobSpec("vecadd", scale="tiny")], cache=cache)
        stats = cache.stats()
        assert set(stats["kinds"]) == {"compile", "run"}
        for bucket in stats["kinds"].values():
            assert bucket["entries"] >= 1 and bucket["bytes"] > 0
        assert stats["entries"] == sum(
            b["entries"] for b in stats["kinds"].values())
        assert stats["bytes"] == sum(
            b["bytes"] for b in stats["kinds"].values())
        assert stats["stale_entries"] == 0
        assert str(tmp_path) in cache.describe()

    def test_stats_counts_other_fingerprints_as_stale(self, tmp_path):
        old = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        old.store("run", "k1", {"x": 1})
        new = ArtifactCache(tmp_path, fingerprint="bb" * 32)
        new.store("run", "k2", {"x": 2})
        stats = new.stats()
        assert stats["entries"] == 2
        assert stats["stale_entries"] == 1 and stats["stale_bytes"] > 0
        assert stats["kinds"]["run"]["entries"] == 1
        assert "stale" in new.describe()

    def test_prune_by_age_uses_mtime(self, tmp_path):
        cache = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        now = time.time()
        for key, age_days in (("old", 10), ("fresh", 1)):
            cache.store("run", key, {"k": key})
            mtime = now - age_days * 86400
            os.utime(cache._path("run", key), (mtime, mtime))
        report = cache.prune(max_age_days=7, now=now)
        assert report["removed"] == 1 and report["kept"] == 1
        assert cache.load("run", "old") is None
        assert cache.load("run", "fresh") == {"k": "fresh"}

    def test_prune_by_bytes_evicts_lru_first(self, tmp_path):
        cache = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        now = time.time()
        sizes = {}
        for i in range(4):
            key = f"k{i}"
            cache.store("run", key, {"pad": "x" * 64, "i": i})
            path = cache._path("run", key)
            sizes[key] = path.stat().st_size
            # k0 least recently modified ... k3 most recent.
            os.utime(path, (now - (100 - i), now - (100 - i)))
        budget = sizes["k2"] + sizes["k3"]
        report = cache.prune(max_bytes=budget, now=now)
        assert report["removed"] == 2
        assert report["kept_bytes"] <= budget
        assert cache.load("run", "k0") is None
        assert cache.load("run", "k1") is None
        assert cache.load("run", "k3") == {"pad": "x" * 64, "i": 3}

    def test_prune_sweeps_abandoned_stage_files(self, tmp_path):
        cache = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        cache.store("run", "live", {"ok": True})
        stale = cache._path("run", "live").with_name("x.json.tmp999-1-0")
        stale.write_text("{partial")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        report = cache.prune(now=time.time())
        assert report["removed"] == 1
        assert not stale.exists()
        assert cache.load("run", "live") == {"ok": True}

    def test_prune_removes_empty_directories(self, tmp_path):
        cache = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        cache.store("run", "only", {"x": 1})
        kind_dir = cache._path("run", "only").parent
        report = cache.prune(max_age_days=0, now=time.time() + 86400)
        assert report["removed"] == 1 and report["kept"] == 0
        assert not kind_dir.exists()

    def test_concurrent_writers_same_key_never_corrupt(self, tmp_path):
        """Racing stores publish atomically: a reader sees either a
        complete entry or a miss, never a torn JSON file."""
        cache = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        start = threading.Barrier(8)
        errors: list[str] = []

        def writer(tid: int) -> None:
            try:
                start.wait(timeout=10)
                for i in range(50):
                    cache.store("run", "hot",
                                {"tid": tid, "i": i, "pad": "y" * 128})
                    loaded = cache.load("run", "hot")
                    if loaded is not None and len(loaded["pad"]) != 128:
                        errors.append(f"torn read in thread {tid}")
            except Exception as exc:  # noqa: BLE001 - recorded
                errors.append(f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        final = cache.load("run", "hot")
        assert final is not None and final["pad"] == "y" * 128
        # No stage files left behind; exactly one published entry.
        leftovers = list(cache.root.rglob("*.tmp*"))
        assert leftovers == []
        assert len(cache.entries()) == 1
        json.loads(cache._path("run", "hot").read_text())

    def test_maintenance_tolerates_entries_vanishing(self, tmp_path):
        cache = ArtifactCache(tmp_path, fingerprint="aa" * 32)
        for i in range(3):
            cache.store("run", f"k{i}", {"i": i})
        # Simulate a racing pruner deleting one entry mid-survey.
        cache._path("run", "k1").unlink()
        stats = cache.stats()
        assert stats["entries"] == 2
        report = cache.prune(max_age_days=1000)
        assert report["kept"] == 2


# ---------------------------------------------------------------------
# Pool: failures, retries, timeout, dedup
# ---------------------------------------------------------------------

class TestPool:
    def test_serial_failure_does_not_abort(self):
        specs = [JobSpec("vecadd", scale="tiny"),
                 JobSpec("saxpy", scale="tiny")]
        report = run_jobs(specs, worker=_failing_worker, retries=1)
        assert len(report.failures) == 2
        assert all(r.attempts == 2 for r in report.records)
        assert "injected failure" in report.failures[0].error
        with pytest.raises(EngineFailure):
            report.raise_on_failure()

    def test_serial_retry_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        report = run_jobs([JobSpec("vecadd", scale="tiny")],
                          worker=_flaky_worker, retries=1)
        assert not report.failures
        assert report.records[0].status == EXECUTED
        assert report.records[0].attempts == 2
        assert report.results[0].correct

    def test_pooled_retry_after_worker_crash(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        report = run_jobs([JobSpec("vecadd", scale="tiny")],
                          jobs=2, worker=_crashing_worker, retries=2)
        assert not report.failures
        assert report.records[0].status == EXECUTED
        assert report.records[0].attempts >= 2
        assert report.results[0].cycles > 0

    def test_pooled_exception_exhausts_retries(self):
        report = run_jobs([JobSpec("vecadd", scale="tiny")],
                          jobs=2, worker=_failing_worker, retries=1)
        [record] = report.records
        assert record.status == FAILED
        assert record.attempts == 2
        assert "injected failure" in record.error

    def test_pooled_timeout(self):
        report = run_jobs([JobSpec("vecadd", scale="tiny")],
                          jobs=2, worker=_sleepy_worker,
                          timeout=0.5, retries=0)
        [record] = report.records
        assert record.status == FAILED
        assert "timed out" in record.error

    def test_dedup_identical_specs(self, tmp_path):
        spec = JobSpec("vecadd", scale="tiny")
        report = run_jobs([spec, spec, spec], cache=ArtifactCache(tmp_path))
        assert report.executed == 1
        assert report.duplicates == 2
        assert report.results[0] is report.results[1] is report.results[2]


# ---------------------------------------------------------------------
# Serial vs pooled parity and the warm-suite acceptance criterion
# ---------------------------------------------------------------------

class TestParityAndWarmSuite:
    def test_jobs1_vs_jobsN_identical_comparisons(self):
        names = ["vecadd", "saxpy"]
        serial, _ = run_comparisons(names, scale="tiny", jobs=1)
        pooled, _ = run_comparisons(names, scale="tiny", jobs=2)
        for name in names:
            a, b = serial[name], pooled[name]
            assert a.speedup == b.speedup
            assert a.energy_ratio == b.energy_ratio
            assert a.edp_ratio == b.edp_ratio
            assert a.scalar.cycles == b.scalar.cycles
            assert a.dyser.cycles == b.dyser.cycles

    def test_warm_suite_rerun_does_zero_work(self, tmp_path):
        """Acceptance: a warm `repro suite --scale tiny` re-runs nothing."""
        cache = ArtifactCache(tmp_path)
        specs = suite_jobs(scale="tiny")
        cold = run_jobs(specs, cache=cache)
        cold_primaries = len(specs) - cold.duplicates
        assert cold.executed == cold_primaries
        warm = run_jobs(specs, cache=cache)
        assert warm.executed == 0
        assert not warm.failures
        assert warm.cache_hits == len(specs) - warm.duplicates
        assert all(r.status in (HIT, "duplicate") for r in warm.records)
        for a, b in zip(cold.results, warm.results):
            assert a.cycles == b.cycles and a.correct and b.correct
