"""Differential tests for the fast simulation backend.

The fast backend's whole value rests on one claim: :class:`FastCore`
is *cycle-exact-equal* to the reference :class:`Core`.  These tests
attack that claim from several directions:

- the full workload suite, both modes, at tiny AND small scales, with
  byte-identical ``RunResult.to_dict()`` (the acceptance criterion);
- non-default knobs (geometry, unroll, FIFO depth, config cache, port
  width) and seeds;
- randomly generated assembled programs (hypothesis), compared on
  stats, registers and touched memory;
- the instruction-limit slow path, including the exact error message;
- backend dispatch: tracing transparently resolves fast -> reference
  and never changes reported cycles;
- the decode cache: identity-keyed, cleared by ``clear_caches``,
  evicted when programs are garbage collected.
"""

from __future__ import annotations

import gc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import (
    Core,
    CoreConfig,
    FastCore,
    Memory,
    clear_decode_caches,
    decode_cache_size,
    decode_program,
)
from repro.compiler import CompilerOptions
from repro.dyser import DyserTimingParams, Fabric, FabricGeometry
from repro.dyser.config_cache import ConfigCacheParams
from repro.errors import SimulationError
from repro.harness import (
    RunConfig,
    TraceOptions,
    backend_names,
    execute,
    get_backend,
    resolve_backend,
    verify_parity,
)
from repro.harness.parity import diff_summaries, suite_configs
from repro.isa import assemble
from repro.workloads import names as workload_names


# ---------------------------------------------------------------------
# Suite-wide differential parity (the acceptance criterion)
# ---------------------------------------------------------------------

class TestSuiteParity:
    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("mode", ["scalar", "dyser"])
    def test_tiny_scale_byte_identical(self, name, mode):
        report = verify_parity([RunConfig(workload=name, mode=mode,
                                          scale="tiny")])
        assert report.ok, report.summary()

    def test_small_scale_whole_suite(self):
        report = verify_parity(suite_configs(scale="small"))
        assert report.checked == 2 * len(workload_names())
        assert report.ok, report.summary()

    def test_seeds_vary_inputs_not_parity(self):
        configs = [RunConfig(workload=w, mode="dyser", scale="tiny",
                             seed=s)
                   for w in ("kmeans", "mm", "spmv")
                   for s in (1, 2, 3)]
        report = verify_parity(configs)
        assert report.ok, report.summary()

    def test_non_default_knobs(self):
        options = CompilerOptions(
            fabric=Fabric(FabricGeometry(4, 4)), unroll=2,
            vectorize=False)
        timing = DyserTimingParams(input_fifo_depth=1,
                                   output_fifo_depth=2,
                                   initiation_interval=3)
        configs = [
            RunConfig(workload="vecadd", mode="dyser", scale="tiny",
                      options=options, timing=timing,
                      cache_params=ConfigCacheParams(capacity=0)),
            RunConfig(workload="fir", mode="dyser", scale="tiny",
                      options=options),
            RunConfig(workload="mm", mode="dyser", scale="tiny",
                      core_config=CoreConfig(
                          has_dyser=True,
                          vector_port_words_per_cycle=4)),
        ]
        report = verify_parity(configs)
        assert report.ok, report.summary()

    def test_diff_summaries_localizes_divergence(self):
        a = {"stats": {"cycles": 10, "instructions": 5}}
        b = {"stats": {"cycles": 11, "instructions": 5}}
        assert diff_summaries(a, b) == ["stats.cycles"]
        assert diff_summaries(a, a) == []


# ---------------------------------------------------------------------
# Random assembled programs (property-based)
# ---------------------------------------------------------------------

_INT3 = ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
         "sll", "srl", "sra", "slt", "seq", "min", "max")
_INTI = ("addi", "muli", "andi", "ori", "xori", "slti")
_SHIFTI = ("slli", "srli", "srai")
_FP3 = ("fadd", "fsub", "fmul", "fmin", "fmax")
_FPCMP = ("flt", "fle", "feq")
_FP1 = ("fneg", "fabs")

#: Scratch layout: integer stores stay in [BASE, BASE+120], float
#: stores in [BASE+128, BASE+248] — loads never see a cross-typed word
#: that could raise on conversion (int(inf) etc.).
_BASE = 4096

_regs = st.integers(min_value=1, max_value=7)
_imms = st.integers(min_value=-64, max_value=64)
_shifts = st.integers(min_value=0, max_value=63)
_slots = st.integers(min_value=0, max_value=15)
_fvals = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@st.composite
def _insn(draw) -> str:
    kind = draw(st.sampled_from(
        ("int3", "int3", "inti", "shifti", "li", "mov", "sel",
         "fp3", "fpcmp", "fp1", "fli", "i2f",
         "ld", "st", "fld", "fst")))
    rd, r1, r2, r3 = (draw(_regs) for _ in range(4))
    if kind == "int3":
        return f"{draw(st.sampled_from(_INT3))} r{rd}, r{r1}, r{r2}"
    if kind == "inti":
        return (f"{draw(st.sampled_from(_INTI))} r{rd}, r{r1}, "
                f"{draw(_imms)}")
    if kind == "shifti":
        return (f"{draw(st.sampled_from(_SHIFTI))} r{rd}, r{r1}, "
                f"{draw(_shifts)}")
    if kind == "li":
        return f"li r{rd}, {draw(_imms)}"
    if kind == "mov":
        return f"mov r{rd}, r{r1}"
    if kind == "sel":
        return f"sel r{rd}, r{r1}, r{r2}, r{r3}"
    if kind == "fp3":
        return f"{draw(st.sampled_from(_FP3))} f{rd}, f{r1}, f{r2}"
    if kind == "fpcmp":
        return f"{draw(st.sampled_from(_FPCMP))} r{rd}, f{r1}, f{r2}"
    if kind == "fp1":
        return f"{draw(st.sampled_from(_FP1))} f{rd}, f{r1}"
    if kind == "fli":
        return f"fli f{rd}, {draw(_fvals)!r}"
    if kind == "i2f":
        return f"i2f f{rd}, r{r1}"
    slot = draw(_slots)
    if kind == "ld":
        return f"ld r{rd}, r8, {8 * slot}"
    if kind == "st":
        return f"st r{r1}, r8, {8 * slot}"
    if kind == "fld":
        return f"fld f{rd}, r8, {128 + 8 * slot}"
    return f"fst f{r1}, r8, {128 + 8 * slot}"


@st.composite
def _programs(draw) -> str:
    """Random straight-line blocks joined by *forward* control flow.

    Branches and jumps only ever target later blocks, so every
    generated program terminates; r8 holds the scratch base and is
    never a destination, so memory accesses stay in bounds.
    """
    n_blocks = draw(st.integers(min_value=1, max_value=5))
    lines = [f"li r8, {_BASE}"]
    for i in range(draw(st.integers(min_value=0, max_value=4))):
        lines.append(f"li r{i % 7 + 1}, {draw(_imms)}")
        lines.append(f"fli f{i % 7 + 1}, {draw(_fvals)!r}")
    for b in range(n_blocks):
        lines.append(f"L{b}:")
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            lines.append(draw(_insn()))
        if b + 1 < n_blocks:
            target = draw(st.integers(min_value=b + 1,
                                      max_value=n_blocks - 1))
            op = draw(st.sampled_from(
                ("beq", "bne", "blt", "bge", "ble", "bgt", "j", "")))
            if op == "j":
                lines.append(f"j L{target}")
            elif op:
                lines.append(f"{op} r{draw(_regs)}, r{draw(_regs)}, "
                             f"L{target}")
    lines.append("halt")
    return "\n".join(lines)


def _run_on(core_cls, program, config=None):
    memory = Memory(1 << 16)
    core = core_cls(program, memory, config=config)
    stats = core.run()
    words = [memory.load_word(_BASE + 8 * i) for i in range(32)]
    return stats, core.iregs._regs[:], core.fregs._regs[:], words


class TestRandomProgramParity:
    @settings(max_examples=60, deadline=None)
    @given(_programs())
    def test_random_program_parity(self, source):
        program = assemble(source, name="random")
        ref = _run_on(Core, program)
        fast = _run_on(FastCore, program)
        assert ref[0].to_dict() == fast[0].to_dict()
        assert ref[1:] == fast[1:]

    @settings(max_examples=20, deadline=None)
    @given(_programs(), st.integers(min_value=1, max_value=40))
    def test_instruction_limit_parity(self, source, limit):
        """Either both complete with identical stats, or both raise
        the exact same limit error."""
        program = assemble(source, name="random")
        config = CoreConfig(max_instructions=limit)
        outcomes = []
        for cls in (Core, FastCore):
            try:
                outcomes.append(("ok", _run_on(cls, program, config)))
            except SimulationError as exc:
                outcomes.append(("err", str(exc)))
        kinds = [k for k, _ in outcomes]
        assert kinds[0] == kinds[1], outcomes
        if kinds[0] == "ok":
            assert outcomes[0][1][0].to_dict() == outcomes[1][1][0].to_dict()
        else:
            assert outcomes[0][1] == outcomes[1][1]


class TestLimitMessages:
    def test_runaway_loop_message_identical(self):
        src = "L0:\nj L0\nhalt"
        program = assemble(src, name="spin")
        config = CoreConfig(max_instructions=10)
        errors = []
        for cls in (Core, FastCore):
            with pytest.raises(SimulationError) as exc_info:
                cls(program, Memory(1 << 16), config=config).run()
            errors.append(str(exc_info.value))
        assert errors[0] == errors[1]
        assert "instruction limit 10 exceeded" in errors[0]

    def test_fell_off_end_message_identical(self):
        # Branch past the halt: pc walks off the program.
        program = assemble("li r1, 1\nbne r1, r0, L\nhalt\nL:", name="off")
        errors = []
        for cls in (Core, FastCore):
            with pytest.raises(SimulationError) as exc_info:
                cls(program, Memory(1 << 16)).run()
            errors.append(str(exc_info.value))
        assert errors[0] == errors[1]
        assert "fell off the end" in errors[0]


# ---------------------------------------------------------------------
# Backend dispatch and tracing
# ---------------------------------------------------------------------

class TestBackendDispatch:
    def test_registry_names(self):
        assert backend_names() == ("batched", "fast", "reference")
        assert get_backend("fast").core_cls is FastCore
        assert get_backend("reference").core_cls is Core
        # The batched backend degrades to the fast core for solo runs
        # and carries its lockstep implementation alongside.
        batched = get_backend("batched")
        assert batched.core_cls is FastCore
        assert batched.batch_cls is not None

    def test_fast_resolves_to_reference_when_traced(self):
        base = RunConfig(workload="mm", scale="tiny", backend="fast")
        assert resolve_backend(base).name == "fast"
        traced = base.traced()
        assert resolve_backend(traced).name == "reference"
        # An instruction trace request also forces the reference core.
        tl = base.with_(core_config=CoreConfig(has_dyser=True,
                                               trace_limit=16))
        assert resolve_backend(tl).name == "reference"

    def test_tracing_never_changes_reported_cycles(self):
        """The satellite contract: enabling the event stream (which
        silently swaps fast -> reference) must not move a single
        counter."""
        for mode in ("scalar", "dyser"):
            base = RunConfig(workload="fir", mode=mode, scale="tiny",
                             backend="fast")
            plain = execute(base)
            traced = execute(base.traced())
            assert traced.events is not None and plain.events is None
            assert plain.cycles == traced.cycles
            assert plain.stats.to_dict() == traced.stats.to_dict()
            assert plain.to_dict() == traced.to_dict()

    def test_profile_works_on_fast_backend(self):
        from repro import profile_workload

        report = profile_workload(RunConfig(
            workload="saxpy", scale="tiny", backend="fast",
            trace=TraceOptions(enabled=True)))
        assert report.result.correct
        assert report.result.events is not None
        untraced = execute(RunConfig(workload="saxpy", scale="tiny",
                                     backend="fast"))
        assert report.result.cycles == untraced.cycles

    def test_fastcore_refuses_tracing_loudly(self):
        program = assemble("halt", name="p")
        from repro.obs.events import EventStream

        with pytest.raises(SimulationError, match="trac"):
            FastCore(program, Memory(1 << 16),
                     events=EventStream(capacity=8))
        with pytest.raises(SimulationError, match="trac"):
            FastCore(program, Memory(1 << 16),
                     config=CoreConfig(trace_limit=4))


# ---------------------------------------------------------------------
# The decode cache
# ---------------------------------------------------------------------

class TestDecodeCache:
    def test_identity_hit_and_clear(self):
        clear_decode_caches()
        program = assemble("li r1, 1\nadd r2, r1, r1\nhalt", name="p")
        d1 = decode_program(program)
        d2 = decode_program(program)
        assert d1 is d2
        assert decode_cache_size() == 1
        clear_decode_caches()
        assert decode_cache_size() == 0
        assert decode_program(program) is not d1

    def test_harness_clear_caches_drops_decodes(self):
        from repro.harness import clear_caches

        clear_decode_caches()
        program = assemble("halt", name="p")
        decode_program(program)
        assert decode_cache_size() == 1
        clear_caches()
        assert decode_cache_size() == 0

    def test_gc_evicts_dead_programs(self):
        clear_decode_caches()
        program = assemble("halt", name="p")
        decode_program(program)
        assert decode_cache_size() == 1
        del program
        gc.collect()
        assert decode_cache_size() == 0

    def test_repeated_runs_reuse_one_decode(self):
        clear_decode_caches()
        program = assemble("li r1, 2\nmul r2, r1, r1\nhalt", name="p")
        first = FastCore(program, Memory(1 << 16)).run()
        assert decode_cache_size() == 1
        second = FastCore(program, Memory(1 << 16)).run()
        assert decode_cache_size() == 1
        assert first.to_dict() == second.to_dict()
