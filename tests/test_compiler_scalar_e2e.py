"""End-to-end scalar compilation: source -> Program -> Core -> results
checked against numpy references."""

import numpy as np
import pytest

from repro.compiler import compile_scalar
from repro.cpu import Core, Memory
from repro.compiler.types import Scalar


def run_kernel(source, memory, int_args=(), fp_args=()):
    result = compile_scalar(source)
    core = Core(result.program, memory)
    core.set_args(int_args, fp_args)
    stats = core.run()
    return core, stats


class TestScalarExecution:
    def test_vecadd(self):
        src = """
        kernel vecadd(out float c[], float a[], float b[], int n) {
            for (int i = 0; i < n; i = i + 1) { c[i] = a[i] + b[i]; }
        }
        """
        mem = Memory(1 << 18)
        n = 20
        a = np.linspace(0.0, 1.0, n)
        b = np.linspace(2.0, 3.0, n)
        pc = mem.alloc(n)
        pa = mem.alloc_numpy(a)
        pb = mem.alloc_numpy(b)
        run_kernel(src, mem, int_args=(pc, pa, pb, n))
        np.testing.assert_allclose(mem.read_numpy(pc, n), a + b)

    def test_matrix_multiply(self):
        src = """
        kernel mm(out float C[], float A[], float B[], int n) {
            for (int i = 0; i < n; i = i + 1) {
                for (int j = 0; j < n; j = j + 1) {
                    float acc = 0.0;
                    for (int k = 0; k < n; k = k + 1) {
                        acc = acc + A[i * n + k] * B[k * n + j];
                    }
                    C[i * n + j] = acc;
                }
            }
        }
        """
        mem = Memory(1 << 18)
        n = 6
        rng = np.random.default_rng(1)
        a = rng.random((n, n))
        b = rng.random((n, n))
        pc = mem.alloc(n * n)
        pa = mem.alloc_numpy(a)
        pb = mem.alloc_numpy(b)
        run_kernel(src, mem, int_args=(pc, pa, pb, n))
        got = mem.read_numpy(pc, n * n).reshape(n, n)
        np.testing.assert_allclose(got, a @ b, rtol=1e-12)

    def test_conditional_abs_clip(self):
        src = """
        kernel clip(out float y[], float x[], int n, float lo, float hi) {
            for (int i = 0; i < n; i = i + 1) {
                float v = x[i];
                if (v < lo) { v = lo; }
                if (v > hi) { v = hi; }
                y[i] = v;
            }
        }
        """
        mem = Memory(1 << 18)
        n = 17
        x = np.linspace(-3.0, 3.0, n)
        py = mem.alloc(n)
        px = mem.alloc_numpy(x)
        run_kernel(src, mem, int_args=(py, px, n), fp_args=(-1.0, 1.0))
        np.testing.assert_allclose(
            mem.read_numpy(py, n), np.clip(x, -1.0, 1.0))

    def test_integer_histogram(self):
        src = """
        kernel hist(out int h[], int x[], int n, int bins) {
            for (int i = 0; i < n; i = i + 1) {
                int b = x[i] % bins;
                if (b < 0) { b = b + bins; }
                h[b] = h[b] + 1;
            }
        }
        """
        mem = Memory(1 << 18)
        n, bins = 50, 7
        rng = np.random.default_rng(2)
        x = rng.integers(-20, 20, n)
        ph = mem.alloc(bins)
        px = mem.alloc_numpy(x)
        run_kernel(src, mem, int_args=(ph, px, n, bins))
        expected = np.bincount(np.mod(x, bins), minlength=bins)
        np.testing.assert_array_equal(
            mem.read_numpy(ph, bins, dtype=np.int64), expected)

    def test_while_loop_gcd(self):
        src = """
        kernel gcd(out int y[], int a, int b) {
            while (b != 0) {
                int t = b;
                b = a % b;
                a = t;
            }
            y[0] = a;
        }
        """
        mem = Memory(1 << 16)
        py = mem.alloc(1)
        run_kernel(src, mem, int_args=(py, 252, 105))
        assert mem.load_word(py) == 21

    def test_break_and_continue(self):
        src = """
        kernel f(out int y[], int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) {
                if (i == 3) { continue; }
                if (i == 7) { break; }
                s = s + i;
            }
            y[0] = s;
        }
        """
        mem = Memory(1 << 16)
        py = mem.alloc(1)
        run_kernel(src, mem, int_args=(py, 100))
        assert mem.load_word(py) == 0 + 1 + 2 + 4 + 5 + 6

    def test_sqrt_distance(self):
        src = """
        kernel dist(out float d[], float x[], float y[], int n) {
            for (int i = 0; i < n; i = i + 1) {
                d[i] = sqrt(x[i] * x[i] + y[i] * y[i]);
            }
        }
        """
        mem = Memory(1 << 18)
        n = 9
        x = np.linspace(1.0, 2.0, n)
        y = np.linspace(-1.0, 1.0, n)
        pd = mem.alloc(n)
        px = mem.alloc_numpy(x)
        py = mem.alloc_numpy(y)
        run_kernel(src, mem, int_args=(pd, px, py, n))
        np.testing.assert_allclose(
            mem.read_numpy(pd, n), np.hypot(x, y), rtol=1e-12)

    def test_min_max_intrinsics(self):
        src = """
        kernel mm(out int y[], int a, int b) {
            y[0] = min(a, b);
            y[1] = max(a, b);
            y[2] = abs(a - b);
        }
        """
        mem = Memory(1 << 16)
        py = mem.alloc(3)
        run_kernel(src, mem, int_args=(py, 12, 45))
        assert mem.load_block(py, 3) == [12, 45, 33]

    def test_nested_conditionals(self):
        src = """
        kernel sign3(out int y[], int x[], int n) {
            for (int i = 0; i < n; i = i + 1) {
                int s = 0;
                if (x[i] > 0) { s = 1; }
                else {
                    if (x[i] < 0) { s = -1; }
                }
                y[i] = s;
            }
        }
        """
        mem = Memory(1 << 16)
        x = np.array([-5, 0, 7, -1, 2, 0])
        py = mem.alloc(len(x))
        px = mem.alloc_numpy(x)
        run_kernel(src, mem, int_args=(py, px, len(x)))
        np.testing.assert_array_equal(
            mem.read_numpy(py, len(x), dtype=np.int64), np.sign(x))

    def test_logical_ops(self):
        src = """
        kernel f(out int y[], int a, int b) {
            y[0] = a > 0 && b > 0;
            y[1] = a > 0 || b > 0;
            y[2] = !(a > 0);
        }
        """
        mem = Memory(1 << 16)
        py = mem.alloc(3)
        run_kernel(src, mem, int_args=(py, 5, -3))
        assert mem.load_block(py, 3) == [0, 1, 0]

    def test_register_pressure_spills(self):
        # Force more than 19 simultaneously-live values.
        decls = "\n".join(
            f"float v{i} = x[{i}] * {i + 1}.0;" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        src = f"""
        kernel pressure(out float y[], float x[]) {{
            {decls}
            y[0] = {uses};
        }}
        """
        result = compile_scalar(src)
        mem = Memory(1 << 18)
        x = np.linspace(1.0, 2.0, 30)
        py = mem.alloc(1)
        px = mem.alloc_numpy(x)
        core = Core(result.program, mem)
        core.set_args((py, px))
        core.run()
        expected = sum(x[i] * (i + 1) for i in range(30))
        assert mem.load_word(py) == pytest.approx(expected)

    def test_spills_actually_happened(self):
        decls = "\n".join(
            f"float v{i} = x[{i}] * {i + 1}.0;" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        src = f"""
        kernel pressure(out float y[], float x[]) {{
            {decls}
            y[0] = {uses};
        }}
        """
        result = compile_scalar(src)
        assert result.program.spill_words > 0

    def test_two_dimensional_stencil(self):
        src = """
        kernel stencil(out float B[], float A[], int n) {
            for (int i = 1; i < n - 1; i = i + 1) {
                for (int j = 1; j < n - 1; j = j + 1) {
                    B[i * n + j] = 0.2 * (A[i * n + j]
                        + A[(i - 1) * n + j] + A[(i + 1) * n + j]
                        + A[i * n + j - 1] + A[i * n + j + 1]);
                }
            }
        }
        """
        mem = Memory(1 << 20)
        n = 8
        rng = np.random.default_rng(3)
        a = rng.random((n, n))
        pb = mem.alloc(n * n)
        pa = mem.alloc_numpy(a)
        run_kernel(src, mem, int_args=(pb, pa, n))
        expected = np.zeros((n, n))
        expected[1:-1, 1:-1] = 0.2 * (
            a[1:-1, 1:-1] + a[:-2, 1:-1] + a[2:, 1:-1]
            + a[1:-1, :-2] + a[1:-1, 2:])
        got = mem.read_numpy(pb, n * n).reshape(n, n)
        np.testing.assert_allclose(got[1:-1, 1:-1], expected[1:-1, 1:-1],
                                   rtol=1e-12)
