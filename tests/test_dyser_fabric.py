"""Tests for the DySER fabric model: topology, DFG, functional eval."""

import pytest

from repro.dyser import (
    ConstRef,
    Dfg,
    DyserConfig,
    Fabric,
    FabricGeometry,
    FuCapability,
    FuOp,
    FunctionalEvaluator,
    PortRef,
    default_capabilities,
    evaluate,
    uniform_capabilities,
)
from repro.dyser.ops import FU_OP_INFO, capability_of, latency_of
from repro.errors import ConfigurationError, DyserError


class TestGeometry:
    def test_counts(self):
        g = FabricGeometry(4, 4)
        assert g.num_fus == 16
        assert g.num_switches == 25
        # (north + west edge switches) x ports_per_edge_switch (2).
        assert g.num_input_ports == (5 + 4) * 2
        assert g.num_output_ports == (5 + 4) * 2

    def test_single_port_per_switch(self):
        g = FabricGeometry(4, 4, ports_per_edge_switch=1)
        assert g.num_input_ports == 9
        switches = g.input_port_switches()
        assert len(switches) == len(set(switches))

    def test_fu_corner_switches(self):
        g = FabricGeometry(4, 4)
        assert g.fu_input_switches((1, 2)) == [(1, 2), (2, 2), (1, 3)]
        assert g.fu_output_switch((1, 2)) == (2, 3)

    def test_switch_neighbors_interior(self):
        g = FabricGeometry(4, 4)
        assert set(g.switch_neighbors((2, 2))) == {
            (1, 2), (3, 2), (2, 1), (2, 3)}

    def test_switch_neighbors_corner(self):
        g = FabricGeometry(4, 4)
        assert set(g.switch_neighbors((0, 0))) == {(1, 0), (0, 1)}

    def test_tiny_fabric_rejected(self):
        with pytest.raises(ConfigurationError):
            FabricGeometry(0, 4)

    def test_port_switches_are_on_edges(self):
        g = FabricGeometry(3, 2)
        assert all(s[1] == 0 or s[0] == 0 for s in g.input_port_switches())
        assert all(
            s[1] == g.height or s[0] == g.width
            for s in g.output_port_switches()
        )


class TestCapabilities:
    def test_default_profile_covers_all_capabilities(self):
        fabric = Fabric(FabricGeometry(8, 8))
        for cap in FuCapability:
            assert fabric.fus_with(cap), f"no FU with {cap}"

    def test_every_fu_has_alu(self):
        fabric = Fabric(FabricGeometry(8, 8))
        assert len(fabric.fus_with(FuCapability.ALU)) == 64

    def test_heterogeneous_mix(self):
        fabric = Fabric(FabricGeometry(8, 8))
        assert len(fabric.fus_with(FuCapability.MUL)) == 32
        # FP covers 3/4 of the grid; divide/sqrt units are scarce.
        assert len(fabric.fus_with(FuCapability.FP)) == 48
        fpdiv = len(fabric.fus_with(FuCapability.FPDIV))
        assert 0 < fpdiv <= 8
        assert fpdiv < len(fabric.fus_with(FuCapability.FP))

    def test_tiny_fabric_still_covers_everything(self):
        fabric = Fabric(FabricGeometry(1, 1))
        for cap in FuCapability:
            assert fabric.fus_with(cap)

    def test_uniform_profile(self):
        g = FabricGeometry(2, 2)
        caps = uniform_capabilities(g)
        assert all(c == set(FuCapability) for c in caps.values())

    def test_describe_mentions_size(self):
        assert "8x8" in Fabric(FabricGeometry(8, 8)).describe()


class TestOps:
    def test_every_op_has_info(self):
        for op in FuOp:
            info = FU_OP_INFO[op]
            assert info.arity in (1, 2, 3)
            assert info.latency >= 1

    def test_semantics_match_host(self):
        assert evaluate(FuOp.ADD, 3, 4) == 7
        assert evaluate(FuOp.DIV, -7, 3) == -2
        assert evaluate(FuOp.SRL, -1, 60) == 15
        assert evaluate(FuOp.SEL, 0, 10, 20) == 20
        assert evaluate(FuOp.FMUL, 1.5, 2.0) == 3.0
        assert evaluate(FuOp.FSQRT, 9.0) == 3.0
        assert evaluate(FuOp.FLT, 1.0, 2.0) == 1

    def test_divide_by_zero_does_not_raise(self):
        assert evaluate(FuOp.DIV, 5, 0) == -1
        assert evaluate(FuOp.FDIV, 1.0, 0.0) > 1e300

    def test_capability_mapping(self):
        assert capability_of(FuOp.ADD) is FuCapability.ALU
        assert capability_of(FuOp.MUL) is FuCapability.MUL
        assert capability_of(FuOp.FADD) is FuCapability.FP
        assert capability_of(FuOp.FSQRT) is FuCapability.FPDIV

    def test_latencies_ordered(self):
        assert latency_of(FuOp.ADD) < latency_of(FuOp.FMUL)
        assert latency_of(FuOp.FMUL) < latency_of(FuOp.FDIV)


def simple_mac_dfg() -> Dfg:
    """out = p0 * p1 + p2 — the canonical multiply-accumulate DFG."""
    dfg = Dfg("mac")
    prod = dfg.add_node(FuOp.FMUL, [PortRef(0), PortRef(1)])
    acc = dfg.add_node(FuOp.FADD, [prod, PortRef(2)])
    dfg.set_output(0, acc)
    return dfg


class TestDfg:
    def test_ports_discovered(self):
        dfg = simple_mac_dfg()
        assert dfg.input_ports == [0, 1, 2]
        assert dfg.output_ports == [0]

    def test_topo_order_respects_deps(self):
        dfg = simple_mac_dfg()
        order = [n.op for n in dfg.topo_order()]
        assert order.index(FuOp.FMUL) < order.index(FuOp.FADD)

    def test_depth(self):
        assert simple_mac_dfg().depth() == 2

    def test_cycle_detected(self):
        from repro.dyser.dfg import NodeRef

        dfg = Dfg("cyclic")
        a = dfg.add_node(FuOp.ADD, [PortRef(0), NodeRef(1)])
        dfg.add_node(FuOp.ADD, [a, PortRef(1)])
        dfg.set_output(0, a)
        with pytest.raises(ConfigurationError, match="cycle"):
            dfg.validate()

    def test_arity_checked(self):
        dfg = Dfg()
        with pytest.raises(ConfigurationError, match="expected 2"):
            dfg.add_node(FuOp.ADD, [PortRef(0)])

    def test_no_outputs_rejected(self):
        dfg = Dfg()
        dfg.add_node(FuOp.ADD, [PortRef(0), PortRef(1)])
        with pytest.raises(ConfigurationError, match="no outputs"):
            dfg.validate()

    def test_duplicate_output_port_rejected(self):
        dfg = simple_mac_dfg()
        with pytest.raises(ConfigurationError, match="already driven"):
            dfg.set_output(0, PortRef(0))

    def test_describe_lists_nodes(self):
        text = simple_mac_dfg().describe()
        assert "fmul" in text and "fadd" in text


class TestFunctionalEvaluator:
    def test_mac(self):
        ev = FunctionalEvaluator(simple_mac_dfg())
        out = ev({0: 2.0, 1: 3.0, 2: 1.0})
        assert out == {0: 7.0}

    def test_constants(self):
        dfg = Dfg()
        n = dfg.add_node(FuOp.MUL, [PortRef(0), ConstRef(10)])
        dfg.set_output(0, n)
        ev = FunctionalEvaluator(dfg)
        assert ev({0: 7})[0] == 70

    def test_passthrough_output(self):
        dfg = Dfg()
        n = dfg.add_node(FuOp.ADD, [PortRef(0), PortRef(1)])
        dfg.set_output(0, n)
        dfg.set_output(1, PortRef(0))  # forwarding an input directly
        ev = FunctionalEvaluator(dfg)
        out = ev({0: 5, 1: 6})
        assert out == {0: 11, 1: 5}

    def test_missing_input_raises(self):
        ev = FunctionalEvaluator(simple_mac_dfg())
        with pytest.raises(DyserError, match="missing input ports"):
            ev({0: 1.0, 1: 2.0})

    def test_select_predication(self):
        # out = p0 < p1 ? p0 : p1  (i.e. min via compare+select)
        dfg = Dfg()
        cond = dfg.add_node(FuOp.FLT, [PortRef(0), PortRef(1)])
        sel = dfg.add_node(FuOp.FSEL, [cond, PortRef(0), PortRef(1)])
        dfg.set_output(0, sel)
        ev = FunctionalEvaluator(dfg)
        assert ev({0: 3.0, 1: 9.0})[0] == 3.0
        assert ev({0: 9.0, 1: 3.0})[0] == 3.0


class TestDyserConfig:
    def test_abstract_config_validates(self):
        cfg = DyserConfig(0, simple_mac_dfg(), Fabric(FabricGeometry(4, 4)))
        cfg.validate()

    def test_port_out_of_range(self):
        dfg = Dfg()
        n = dfg.add_node(FuOp.ADD, [PortRef(99), PortRef(1)])
        dfg.set_output(0, n)
        cfg = DyserConfig(0, dfg, Fabric(FabricGeometry(2, 2)))
        with pytest.raises(ConfigurationError, match="input port 99"):
            cfg.validate()

    def test_path_delays_positive_and_monotone(self):
        cfg = DyserConfig(0, simple_mac_dfg(), Fabric(FabricGeometry(4, 4)))
        delays = cfg.path_delays()
        assert delays[0] >= latency_of(FuOp.FMUL) + latency_of(FuOp.FADD)

    def test_placement_capability_enforced(self):
        fabric = Fabric(FabricGeometry(4, 4))
        dfg = simple_mac_dfg()
        no_fp = [
            fu for fu in fabric.geometry.fus()
            if FuCapability.FP not in fabric.capabilities[fu]
        ]
        placement = {0: no_fp[0], 1: no_fp[1]}
        cfg = DyserConfig(0, dfg, fabric, placement=placement)
        with pytest.raises(ConfigurationError, match="lacks capability"):
            cfg.validate()

    def test_double_placement_rejected(self):
        fabric = Fabric(FabricGeometry(4, 4), uniform_capabilities(FabricGeometry(4, 4)))
        cfg = DyserConfig(0, simple_mac_dfg(), fabric,
                          placement={0: (0, 1), 1: (0, 1)})
        with pytest.raises(ConfigurationError, match="hosts two"):
            cfg.validate()

    def test_config_words_grow_with_dfg(self):
        small = DyserConfig(0, simple_mac_dfg(), Fabric(FabricGeometry(4, 4)))
        big_dfg = Dfg()
        acc = None
        for i in range(10):
            node = big_dfg.add_node(FuOp.FADD, [PortRef(i), PortRef(i + 1)])
            acc = node if acc is None else big_dfg.add_node(
                FuOp.FADD, [acc, node])
        big_dfg.set_output(0, acc)
        big = DyserConfig(1, big_dfg, Fabric(FabricGeometry(8, 8)))
        assert big.config_words() > small.config_words()
