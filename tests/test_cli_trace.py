"""Tests for the CLI and the core's execution tracing."""

import pytest

from repro.cli import main
from repro.compiler import compile_scalar
from repro.cpu import Core, CoreConfig, Memory


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vecadd" in out and "irregular-control" in out

    def test_run_scalar(self, capsys):
        assert main(["run", "vecadd", "--mode", "scalar",
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "cycles=" in out

    def test_run_dyser_reports_regions(self, capsys):
        assert main(["run", "saxpy", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "region" in out and "offloaded" in out
        assert "dyser" in out

    def test_compile_by_name(self, capsys):
        assert main(["compile", "--name", "dotprod"]) == 0
        out = capsys.readouterr().out
        assert "dinit" in out
        assert "configuration #0" in out

    def test_compile_scalar_flag(self, capsys):
        assert main(["compile", "--name", "dotprod", "--scalar"]) == 0
        out = capsys.readouterr().out
        assert "dinit" not in out

    def test_compile_dump_ir(self, capsys):
        assert main(["compile", "--name", "vecadd", "--dump-ir"]) == 0
        out = capsys.readouterr().out
        assert "function vecadd" in out

    def test_compile_from_file(self, tmp_path, capsys):
        src = tmp_path / "k.dy"
        src.write_text(
            "kernel k(out int y[], int a) { y[0] = a * a + 1; }")
        assert main(["compile", "--file", str(src)]) == 0
        out = capsys.readouterr().out
        assert "k.entry" in out

    def test_fpga(self, capsys):
        assert main(["fpga", "--width", "2", "--height", "2"]) == 0
        assert "dyser_2x2" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrace:
    SRC = """
    kernel f(out int y[], int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + i; }
        y[0] = s;
    }
    """

    def run_traced(self, limit):
        result = compile_scalar(self.SRC)
        memory = Memory(1 << 16)
        py = memory.alloc(1)
        core = Core(result.program, memory,
                    config=CoreConfig(has_dyser=False, trace_limit=limit))
        core.set_args((py, 5))
        stats = core.run()
        return core, stats

    def test_trace_disabled_by_default(self):
        core, _ = self.run_traced(0)
        assert core.trace == []

    def test_trace_limit_respected(self):
        core, stats = self.run_traced(10)
        assert len(core.trace) == 10
        assert stats.instructions > 10

    def test_trace_entries_structured(self):
        core, _ = self.run_traced(5)
        cycles = [t for t, _pc, _text in core.trace]
        assert cycles == sorted(cycles)
        assert all(isinstance(text, str) and text
                   for _t, _pc, text in core.trace)

    def test_trace_covers_whole_run_when_large(self):
        core, stats = self.run_traced(10_000)
        assert len(core.trace) == stats.instructions
        assert core.trace[-1][2] == "halt"
