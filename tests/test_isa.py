"""Tests for the ISA layer: opcodes, instructions, programs, assembler."""

import pytest

from repro.errors import AssemblerError, IsaError
from repro.isa import (
    OP_INFO,
    Instruction,
    InsnClass,
    Opcode,
    Program,
    assemble,
    disassemble,
)


class TestOpcodeTable:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            assert op in OP_INFO

    def test_signatures_are_tuples_of_known_kinds(self):
        known = {"rd", "rs1", "rs2", "rs3", "fd", "fs1", "fs2", "fs3",
                 "imm", "port", "label"}
        for info in OP_INFO.values():
            assert set(info.signature) <= known

    def test_branch_classification(self):
        assert OP_INFO[Opcode.BEQ].is_branch
        assert OP_INFO[Opcode.J].is_branch
        assert not OP_INFO[Opcode.ADD].is_branch

    def test_dyser_classification(self):
        for op in (Opcode.DINIT, Opcode.DSEND, Opcode.DRECV, Opcode.DLDV):
            assert OP_INFO[op].is_dyser
        assert not OP_INFO[Opcode.LD].is_dyser

    def test_memory_classification(self):
        for op in (Opcode.LD, Opcode.ST, Opcode.FLD, Opcode.DLD, Opcode.DSTV):
            assert OP_INFO[op].is_memory
        assert not OP_INFO[Opcode.DSEND].is_memory


class TestInstruction:
    def test_valid_instruction(self):
        insn = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert insn.text() == "add r1, r2, r3"

    def test_missing_operand_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rd=1, rs1=2)

    def test_register_out_of_range(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.ADD, rd=32, rs1=0, rs2=0)

    def test_negative_port_rejected(self):
        with pytest.raises(IsaError):
            Instruction(Opcode.DSEND, port=-1, rs1=1)

    def test_fp_text_rendering(self):
        insn = Instruction(Opcode.FADD, rd=1, rs1=2, rs2=3)
        assert insn.text() == "fadd f1, f2, f3"

    def test_branch_text(self):
        insn = Instruction(Opcode.BLT, rs1=1, rs2=2, target="loop")
        assert insn.text() == "blt r1, r2, loop"


class TestProgram:
    def test_link_resolves_targets(self):
        p = Program()
        p.add_label("start")
        p.add(Instruction(Opcode.J, target="end"))
        p.add(Instruction(Opcode.NOP))
        p.add_label("end")
        p.add(Instruction(Opcode.HALT))
        p.link()
        assert p.instructions[0].target_index == 2

    def test_undefined_label_raises(self):
        p = Program()
        p.add(Instruction(Opcode.J, target="nowhere"))
        with pytest.raises(IsaError, match="undefined label"):
            p.link()

    def test_duplicate_label_raises(self):
        p = Program()
        p.add_label("x")
        with pytest.raises(IsaError, match="duplicate"):
            p.add_label("x")

    def test_validate_requires_halt(self):
        p = Program()
        p.add(Instruction(Opcode.NOP))
        p.link()
        with pytest.raises(IsaError, match="no HALT"):
            p.validate()

    def test_static_mix(self):
        p = Program()
        p.add(Instruction(Opcode.ADD, rd=1, rs1=1, rs2=1))
        p.add(Instruction(Opcode.LD, rd=1, rs1=1, imm=0))
        p.add(Instruction(Opcode.HALT))
        mix = p.static_mix()
        assert mix[InsnClass.ALU] == 1
        assert mix[InsnClass.LOAD] == 1


class TestAssembler:
    SAMPLE = """
    ; dot-product style fragment
    start:
        li   r1, 0
        li   r2, 8
    loop:
        fld  f1, r1, 0
        fadd f2, f2, f1
        addi r1, r1, 8
        blt  r1, r2, loop
        halt
    """

    def test_roundtrip(self):
        p = assemble(self.SAMPLE)
        text = disassemble(p)
        p2 = assemble(text)
        assert [i.text() for i in p] == [i.text() for i in p2]
        assert p2.labels == p.labels

    def test_labels_resolved(self):
        p = assemble(self.SAMPLE)
        blt = p.instructions[-2]
        assert blt.op is Opcode.BLT
        assert blt.target_index == p.labels["loop"]

    def test_comments_and_blank_lines_ignored(self):
        p = assemble("nop ; trailing\n\n# full line\nhalt")
        assert len(p) == 2

    def test_hex_immediates(self):
        p = assemble("li r1, 0x10\nhalt")
        assert p.instructions[0].imm == 16

    def test_float_immediates(self):
        p = assemble("fli f1, 2.5\nhalt")
        assert p.instructions[0].imm == 2.5

    def test_negative_immediates(self):
        p = assemble("addi r1, r1, -8\nhalt")
        assert p.instructions[0].imm == -8

    def test_dyser_syntax(self):
        p = assemble("dinit 3\ndsend p0, r1\ndrecv r2, p1\ndldv p2, r3, 4\nhalt")
        assert p.instructions[0].imm == 3
        assert p.instructions[1].port == 0
        assert p.instructions[3].imm == 4

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expected"):
            assemble("add r1, r2")

    def test_wrong_register_kind(self):
        with pytest.raises(AssemblerError, match="expected fp register"):
            assemble("fadd r1, f2, f3")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus op\nhalt")
