"""Tests for first-class sweep descriptions (``repro.engine.sweeps``).

SweepSpec is the one sweep object shared by the CLI, ``run_jobs`` and
the service's ``POST /v1/sweep``.  These tests pin its contract:
expansion in the historical builder order (golden job hashes, literal
hex — warm caches must stay warm), ``sweep_hash`` stability across
spellings and round-trips, validation, the deprecated builder shims
(warning + identical output), and the service/client transport of the
first-class form with ``sweep_hash`` echoed in the envelope.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import SWEEP_VERSION, ArtifactCache, SweepSpec
from repro.engine.jobs import comparison_jobs, suite_jobs, sweep
from repro.errors import WorkloadError
from repro.service import ServiceClient, ServiceThread
from repro.service import protocol as P
from repro.workloads import SUITE

GRID = dict(
    workloads=("vecadd", "mm"), modes=("scalar", "dyser"),
    base={"scale": "tiny", "seed": 7},
    axes=(("input_fifo_depth", (2, 8)),
          ("initiation_interval", (1, 2))),
)

#: Golden identities, pinned literally: a change here silently
#: invalidates every artifact cache and re-runs every sweep point.
GRID_SWEEP_HASH = (
    "699c671863dccba486e9ece3c791017d321a12ec52f97cd825704cf3e1ef7b80")
GRID_JOB_HASHES = {
    0: "d509acba1b7a8e8d0918c6a8066c5d41b24fe9519f97c91e93639ecbf8375a97",
    4: "530f90b7ff6d906933c3f62a432a5e5b6d73438575d51963b0a0c8c64501a340",
    15: "e74ffef9f8c73c3efc671ba9751e9adfae11a684c1ba66bb5f388e55c6cf0ccb",
}


class TestExpansion:
    def test_golden_job_hashes(self):
        jobs = SweepSpec(**GRID).jobs()
        assert len(jobs) == 16
        for index, digest in GRID_JOB_HASHES.items():
            assert jobs[index].job_hash == digest

    def test_expansion_order_workload_mode_axes(self):
        jobs = SweepSpec(**GRID).jobs()
        flat = [(j.workload, j.mode, j.input_fifo_depth,
                 j.initiation_interval) for j in jobs]
        assert flat[:4] == [("vecadd", "scalar", 2, 1),
                            ("vecadd", "scalar", 2, 2),
                            ("vecadd", "scalar", 8, 1),
                            ("vecadd", "scalar", 8, 2)]
        assert flat[4][:2] == ("vecadd", "dyser")
        assert flat[8][:2] == ("mm", "scalar")

    def test_len_matches_jobs(self):
        spec = SweepSpec(**GRID)
        assert len(spec) == len(spec.jobs()) == 16
        assert "sweep[16]" in spec.describe()

    def test_comparison_shape(self):
        spec = SweepSpec.comparison(("vecadd",), scale="tiny")
        assert [(j.workload, j.mode) for j in spec.jobs()] \
            == [("vecadd", "scalar"), ("vecadd", "dyser")]

    def test_suite_covers_every_workload(self):
        jobs = SweepSpec.suite(scale="tiny").jobs()
        assert len(jobs) == 2 * len(SUITE)
        assert {j.workload for j in jobs} == set(SUITE)


class TestIdentity:
    def test_sweep_hash_pinned(self):
        assert SweepSpec(**GRID).sweep_hash == GRID_SWEEP_HASH

    def test_spellings_hash_identically(self):
        a = SweepSpec(**GRID)
        b = SweepSpec(
            workloads=["vecadd", "mm"], modes=["scalar", "dyser"],
            base=(("seed", 7), ("scale", "tiny")),
            axes={"input_fifo_depth": [2, 8],
                  "initiation_interval": [1, 2]},
        )
        assert a == b
        assert a.sweep_hash == b.sweep_hash

    def test_round_trip_through_dict(self):
        spec = SweepSpec(**GRID)
        clone = SweepSpec.from_dict(json.loads(json.dumps(
            spec.to_dict())))
        assert clone == spec
        assert clone.sweep_hash == spec.sweep_hash
        assert spec.to_dict()["version"] == SWEEP_VERSION

    def test_axis_order_is_significant(self):
        swapped = SweepSpec(
            **{**GRID, "axes": tuple(reversed(GRID["axes"]))})
        assert swapped.sweep_hash != SweepSpec(**GRID).sweep_hash


class TestValidation:
    def test_needs_workloads(self):
        with pytest.raises(WorkloadError, match="workload"):
            SweepSpec(workloads=())

    def test_unknown_mode(self):
        with pytest.raises(WorkloadError, match="mode"):
            SweepSpec(workloads=("mm",), modes=("quantum",))

    def test_unknown_field(self):
        with pytest.raises(WorkloadError, match="fifo_depht"):
            SweepSpec(workloads=("mm",), axes={"fifo_depht": (2,)})

    def test_empty_axis(self):
        with pytest.raises(WorkloadError, match="no values"):
            SweepSpec(workloads=("mm",),
                      axes=(("input_fifo_depth", ()),))

    def test_duplicate_axis(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            SweepSpec(workloads=("mm",),
                      axes=(("unroll", (1,)), ("unroll", (2,))))

    def test_workload_mode_not_knobs(self):
        with pytest.raises(WorkloadError):
            SweepSpec(workloads=("mm",), base={"workload": "saxpy"})

    def test_from_dict_rejects_bad_version(self):
        with pytest.raises(WorkloadError, match="version"):
            SweepSpec.from_dict({"version": "sweepspec-v0",
                                 "workloads": ["mm"]})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(WorkloadError):
            SweepSpec.from_dict(["mm"])


class TestDeprecatedShims:
    def test_sweep_builder_warns_and_matches(self):
        with pytest.deprecated_call():
            legacy = sweep(["vecadd", "mm"],
                           modes=("scalar", "dyser"),
                           base={"scale": "tiny", "seed": 7},
                           input_fifo_depth=(2, 8),
                           initiation_interval=(1, 2))
        assert [j.job_hash for j in legacy] \
            == [j.job_hash for j in SweepSpec(**GRID).jobs()]

    def test_comparison_jobs_warns_and_matches(self):
        with pytest.deprecated_call():
            legacy = comparison_jobs(["vecadd"], scale="tiny")
        assert legacy == SweepSpec.comparison(
            ("vecadd",), scale="tiny").jobs()

    def test_suite_jobs_warns_and_matches(self):
        with pytest.deprecated_call():
            legacy = suite_jobs(scale="tiny", seed=3)
        assert legacy == SweepSpec.suite(scale="tiny", seed=3).jobs()


class TestServiceTransport:
    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        cache = ArtifactCache(tmp_path_factory.mktemp("sweep-cache"))
        with ServiceThread(cache=cache, batch_window_s=0.001) as srv:
            yield srv

    @pytest.fixture()
    def client(self, service):
        with ServiceClient(port=service.port, timeout=120) as client:
            yield client

    def test_first_class_sweep_round_trip(self, client):
        spec = SweepSpec.comparison(("vecadd",), scale="tiny")
        reply = client.sweep_spec(spec)
        assert reply["ok"] is True
        assert reply["sweep_hash"] == spec.sweep_hash
        assert len(reply["jobs"]) == 2
        served = (P.STATUS_EXECUTED, P.STATUS_HIT, P.STATUS_COALESCED)
        assert all(job["status"] in served for job in reply["jobs"])

    def test_legacy_form_still_served_with_hash(self, client):
        reply = client.sweep(["vecadd"], modes=("dyser",),
                             base={"scale": "tiny"})
        assert reply["ok"] is True
        assert reply["sweep_hash"] == SweepSpec(
            workloads=("vecadd",), modes=("dyser",),
            base={"scale": "tiny"}).sweep_hash

    def test_bad_sweep_spec_is_400(self, client):
        status, payload = client.request(
            "POST", "/v1/sweep",
            {"sweep": {"version": "sweepspec-v0",
                       "workloads": ["vecadd"]}})
        assert status == 400
        assert "version" in payload["error"]
