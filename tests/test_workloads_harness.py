"""Tests for the workload suite and the experiment harness.

The execution-equivalence test here is the suite's backbone: every
workload runs scalar AND DySER at tiny scale and must pass its numpy
reference check in both modes.
"""

import pytest

from repro.cpu import Memory
from repro.errors import WorkloadError
from repro.harness import (
    RunConfig,
    compare,
    format_series,
    format_table,
    geomean,
    run_workload,
)
from repro.workloads import (
    CATEGORIES,
    IRREGULAR_COMPUTE,
    IRREGULAR_CONTROL,
    REGULAR,
    SUITE,
    get,
    names,
)

ALL_NAMES = sorted(SUITE)


class TestSuiteStructure:
    def test_suite_has_expected_breadth(self):
        assert len(SUITE) >= 14
        for category in CATEGORIES:
            assert len(names(category)) >= 3, category

    def test_every_workload_compiles_scalar(self):
        from repro.compiler import compile_scalar

        for name in ALL_NAMES:
            program = compile_scalar(get(name).source).program
            program.validate()

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get("not_a_kernel")

    def test_unknown_category_rejected(self):
        with pytest.raises(WorkloadError, match="unknown category"):
            names("bogus")

    def test_unknown_scale_rejected(self):
        workload = get("vecadd")
        with pytest.raises(WorkloadError, match="unknown scale"):
            workload.prepare(Memory(1 << 20), "galactic", 1)

    def test_prepare_is_seed_deterministic(self):
        workload = get("dotprod")
        m1, m2 = Memory(1 << 20), Memory(1 << 20)
        i1 = workload.prepare(m1, "tiny", 5)
        i2 = workload.prepare(m2, "tiny", 5)
        assert i1.int_args == i2.int_args
        a = m1.load_block(i1.int_args[1], 8)
        b = m2.load_block(i2.int_args[1], 8)
        assert a == b


class TestExecutionAcrossSuite:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_scalar_matches_reference(self, name):
        result = run_workload(RunConfig(workload=name, mode="scalar",
                                        scale="tiny"))
        assert result.correct, f"{name} scalar output wrong"

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_dyser_matches_reference(self, name):
        result = run_workload(RunConfig(workload=name, mode="dyser",
                                        scale="tiny"))
        assert result.correct, f"{name} DySER output wrong"

    def test_regular_kernels_speed_up(self):
        for name in names(REGULAR):
            c = compare(name, scale="tiny")
            assert c.speedup > 1.0, f"{name}: {c.speedup}"

    def test_curtailing_shapes_gain_little(self):
        """Paper finding ii: the two control-flow shapes curtail the
        compiler — speedups stay far below the regular kernels'."""
        curtailing = ("newton_lcd", "tpacf_bin")
        for name in curtailing:
            c = compare(name, scale="tiny")
            assert c.speedup < 2.0, f"{name}: {c.speedup}"

    def test_seed_changes_inputs_not_correctness(self):
        for seed in (1, 2, 3):
            result = run_workload(RunConfig(workload="kmeans",
                                            mode="dyser", scale="tiny",
                                            seed=seed))
            assert result.correct


class TestHarness:
    def test_comparison_metrics(self):
        c = compare("saxpy", scale="tiny")
        assert c.speedup == c.scalar.cycles / c.dyser.cycles
        assert c.energy_ratio > 0
        assert c.edp_ratio > c.energy_ratio / 2

    def test_run_result_throughput(self):
        r = run_workload(RunConfig(workload="vecadd", mode="dyser",
                                   scale="tiny"))
        assert r.work_items == 32
        assert r.cycles_per_item == r.cycles / 32

    def test_bad_mode_rejected(self):
        # The mode is validated at RunConfig construction now.
        with pytest.raises(WorkloadError, match="unknown mode"):
            RunConfig(workload="vecadd", mode="quantum")

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_format_table(self):
        text = format_table(["name", "x"], [["a", 1.5], ["b", 123.4]],
                            title="T")
        assert "T" in text and "a" in text and "123" in text

    def test_format_series(self):
        text = format_series("s", [1, 2], [0.5, 1.0])
        assert "#" in text
