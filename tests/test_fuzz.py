"""Tests for the differential fuzzing + chaos subsystem.

Covers: generator determinism and replayability from (seed, index)
alone, the oracle matrix (parity / lint / IR agreement on main), the
planted-mutation self-check (caught -> shrunk -> corpus entry that
replays red against the mutant and green against the real backend),
corpus round-trips and replay of the committed entries, chaos
scenarios, byte-reproducible findings reports, the ``repro fuzz`` CLI,
and the satellite hardening: corrupt-cache miss-and-evict, stable
error strings, and the parity harness's failure path against a
deliberately miscounting stub backend.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import (
    ArtifactCache,
    Backend,
    Core,
    FastCore,
    Memory,
    RunConfig,
    WorkloadError,
    stable_error_string,
    temporary_backend,
    unregister_backend,
    verify_parity,
)
from repro.cli import main
from repro.errors import MemoryFault, ReproError, SimulationError
from repro.harness.fuzz import (
    CaseGenerator,
    FuzzCase,
    FuzzOptions,
    MutantBatchCore,
    MutantFastCore,
    batched_oracle,
    iter_corpus,
    load_entry,
    replay_entry,
    run_case,
    run_chaos,
    run_fuzz,
    save_entry,
    shrink_case,
)
from repro.harness.fuzz.generator import MUTATIONS, _gen_dyser, case_rng
from repro.harness.fuzz.oracles import (
    MUST_CRASH_CODES,
    Finding,
    lint_case,
    lint_oracle,
    parity_oracle,
)

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"


# ---------------------------------------------------------------------
# Generator: determinism and structure
# ---------------------------------------------------------------------


class TestGenerator:
    def test_same_seed_same_cases(self):
        a = CaseGenerator(seed=42)
        b = CaseGenerator(seed=42)
        for index in range(25):
            assert a.generate(index).to_dict() == b.generate(index).to_dict()

    def test_generation_order_is_irrelevant(self):
        gen = CaseGenerator(seed=7)
        forward = [gen.generate(i).to_dict() for i in range(10)]
        backward = [gen.generate(i).to_dict()
                    for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = [CaseGenerator(seed=1).generate(i).to_dict()
             for i in range(10)]
        b = [CaseGenerator(seed=2).generate(i).to_dict()
             for i in range(10)]
        assert a != b

    def test_case_round_trips_through_dict(self):
        gen = CaseGenerator(seed=3)
        for index in range(15):
            case = gen.generate(index)
            assert FuzzCase.from_dict(
                json.loads(json.dumps(case.to_dict()))) == case

    def test_all_kinds_appear(self):
        kinds = {CaseGenerator(seed=0).generate(i).kind
                 for i in range(40)}
        assert kinds == {"scalar", "dyser", "kernel"}

    def test_irregularity_validated(self):
        with pytest.raises(ValueError):
            CaseGenerator(seed=0, irregularity=1.5)

    def test_every_case_runs_or_faults_cleanly(self):
        # No generated case may hang or escape the ReproError domain.
        gen = CaseGenerator(seed=11, irregularity=0.8)
        for index in range(20):
            case = gen.generate(index)
            if case.kind == "kernel":
                continue
            verdict, _ = run_case(case, Core)
            assert verdict in ("ok", "error")
            if case.expect_error:
                assert verdict == "error", case.describe()


# ---------------------------------------------------------------------
# Oracles on main: everything must agree
# ---------------------------------------------------------------------


class TestOraclesOnMain:
    def test_no_findings_at_default_irregularity(self):
        report = run_fuzz(FuzzOptions(
            seed=5, cases=30, oracles=("parity", "lint", "ir")))
        assert report.ok, report.summary()
        assert report.cases_run == 30

    def test_lint_agrees_on_every_planted_mutation(self):
        # Force each mutation kind and check lint-vs-crash agreement.
        seen: set[str] = set()
        for index in range(400):
            if seen == set(MUTATIONS):
                break
            case = _gen_dyser(case_rng(1, index), 1, index, 1.0)
            if not case.expect_error:
                continue
            seen.add(case.label.split("/", 1)[1])
            assert lint_oracle(case) is None, case.describe()
            codes = lint_case(case)
            assert codes & MUST_CRASH_CODES, case.describe()
        assert seen == set(MUTATIONS)

    def test_parity_oracle_names_diverging_key(self):
        gen = CaseGenerator(seed=0)
        finding = None
        for index in range(30):
            case = gen.generate(index)
            if case.kind not in ("scalar", "dyser"):
                continue
            finding = parity_oracle(case, candidate_cls=MutantFastCore)
            if finding is not None:
                break
        assert finding is not None
        assert finding.oracle == "parity"
        assert "stats." in finding.detail

    def test_findings_report_is_byte_reproducible(self):
        opts = FuzzOptions(seed=9, cases=20,
                           oracles=("parity", "lint", "ir"))
        a = json.dumps(run_fuzz(opts).to_dict(), sort_keys=True)
        b = json.dumps(run_fuzz(opts).to_dict(), sort_keys=True)
        assert a == b


# ---------------------------------------------------------------------
# The planted-mutation self-check (the acceptance criterion)
# ---------------------------------------------------------------------


class TestSelfCheck:
    def test_mutant_is_caught_shrunk_and_replayable(self, tmp_path):
        report = run_fuzz(FuzzOptions(
            seed=0, cases=12, oracles=("parity",),
            candidate_cls=MutantFastCore, corpus_dir=str(tmp_path)))
        assert not report.ok, "planted off-by-one was never caught"
        entries = iter_corpus(tmp_path)
        assert entries, "finding was not persisted to the corpus"
        for path in entries:
            case, finding = load_entry(path)
            assert finding.oracle == "parity"
            # Red against the mutant, green against the real backend.
            assert replay_entry(path, MutantFastCore) is not None
            assert replay_entry(path) is None
            # The shrunk case still assembles and runs standalone.
            verdict, _ = run_case(case, Core)
            assert verdict in ("ok", "error")

    def test_batch_mutant_is_caught_shrunk_and_replayable(self, tmp_path):
        report = run_fuzz(FuzzOptions(
            seed=2026, cases=2, oracles=("batched",),
            candidate_cls=MutantBatchCore, corpus_dir=str(tmp_path)))
        assert not report.ok, "planted batch off-by-one was never caught"
        entries = iter_corpus(tmp_path)
        assert entries, "finding was not persisted to the corpus"
        for path in entries:
            case, finding = load_entry(path)
            assert finding.oracle == "batched"
            # Red against the mutant lane, green against the real one.
            assert replay_entry(path, MutantBatchCore) is not None
            assert replay_entry(path) is None
            verdict, _ = run_case(case, Core)
            assert verdict in ("ok", "error")

    def test_batched_oracle_ignores_non_batch_candidate(self):
        # A parity campaign's MutantFastCore must not leak into the
        # lane construction (its constructor signature differs).
        case = CaseGenerator(seed=5).generate(1)
        if case.kind == "kernel":  # pragma: no cover - seed-stable
            pytest.skip("kernel case")
        assert batched_oracle(case, MutantFastCore) is None

    def test_shrinking_reduces_the_case(self):
        gen = CaseGenerator(seed=0)
        check = lambda c: parity_oracle(c, MutantFastCore)  # noqa: E731
        for index in range(30):
            case = gen.generate(index)
            if case.kind == "kernel" or check(case) is None:
                continue
            shrunk = shrink_case(case, check)
            assert check(shrunk) is not None, "shrink lost the finding"
            assert (len(shrunk.source.splitlines())
                    <= len(case.source.splitlines()))
            return
        pytest.fail("no case triggered the planted mutant")

    def test_shrink_keeps_unreproducible_case_untouched(self):
        case = CaseGenerator(seed=1).generate(0)
        assert shrink_case(case, lambda c: None) == case


# ---------------------------------------------------------------------
# Corpus round-trips and the committed entries
# ---------------------------------------------------------------------


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        case = CaseGenerator(seed=2).generate(4)
        finding = Finding("parity", case.key, "summary-mismatch",
                          "stats.cycles: reference=1 candidate=2",
                          seed=case.seed, index=case.index)
        path = save_entry(case, finding, tmp_path)
        loaded_case, loaded_finding = load_entry(path)
        assert loaded_case == case
        assert loaded_finding == finding

    def test_bad_format_is_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "other", "case": {}}))
        with pytest.raises(WorkloadError):
            load_entry(path)

    def test_iter_corpus_missing_dir_is_empty(self, tmp_path):
        assert iter_corpus(tmp_path / "nope") == []

    @pytest.mark.parametrize(
        "path", sorted(CORPUS_DIR.glob("*.json")),
        ids=lambda p: p.name)
    def test_committed_corpus_entry_stays_fixed(self, path):
        assert replay_entry(path) is None, (
            f"{path.name}: a previously-fixed fuzz finding fires again")

    def test_committed_corpus_is_nonempty(self):
        assert len(sorted(CORPUS_DIR.glob("*.json"))) >= 2


# ---------------------------------------------------------------------
# Chaos scenarios
# ---------------------------------------------------------------------


class TestChaos:
    def test_worker_crash_and_cache_corruption_scenarios(self):
        findings = run_chaos(
            seed=0, scenarios=("worker-crash", "cache-corruption"))
        assert findings == [], "\n".join(f.describe() for f in findings)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_chaos(scenarios=("nope",))


# ---------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------


class TestCli:
    def test_fuzz_smoke_exits_zero(self, capsys):
        rc = main(["fuzz", "--seed", "1", "--cases", "6",
                   "--oracle", "parity", "--oracle", "lint"])
        out = capsys.readouterr().out
        report = json.loads(out)
        assert rc == 0
        assert report["format"] == "repro-fuzz-report-v1"
        assert report["cases_run"] == 6
        assert report["findings"] == []

    def test_fuzz_report_file(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        rc = main(["fuzz", "--seed", "1", "--cases", "4",
                   "--oracle", "parity", "--report", str(target)])
        capsys.readouterr()
        assert rc == 0
        assert json.loads(target.read_text())["cases_run"] == 4

    def test_fuzz_replay_corpus(self, capsys):
        rc = main(["fuzz", "--replay", str(CORPUS_DIR)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FAIL" not in out

    def test_fuzz_replay_empty_dir_fails(self, tmp_path, capsys):
        rc = main(["fuzz", "--replay", str(tmp_path)])
        capsys.readouterr()
        assert rc == 1


# ---------------------------------------------------------------------
# Satellite: corrupt artifact-cache entries are a miss-and-evict
# ---------------------------------------------------------------------


class TestCacheCorruption:
    def _store(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        payload = {"stats": {"cycles": 123}, "blob": "x" * 64}
        cache.store("run", "deadbeef", payload)
        return cache, cache._path("run", "deadbeef"), payload

    def test_round_trip_with_checksum(self, tmp_path):
        cache, path, payload = self._store(tmp_path)
        assert cache.load("run", "deadbeef") == payload
        assert "_sha256" in json.loads(path.read_text())

    def test_truncated_entry_misses_and_evicts(self, tmp_path):
        cache, path, _ = self._store(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.load("run", "deadbeef") is None
        assert not path.exists()

    def test_bitflip_valid_json_misses_and_evicts(self, tmp_path):
        # The nasty case: still valid JSON, wrong bytes.
        cache, path, _ = self._store(tmp_path)
        data = json.loads(path.read_text())
        data["stats"]["cycles"] = 124
        path.write_text(json.dumps(data))
        assert cache.load("run", "deadbeef") is None
        assert not path.exists()

    def test_garbage_misses_and_evicts(self, tmp_path):
        cache, path, _ = self._store(tmp_path)
        path.write_text("{this is not json")
        assert cache.load("run", "deadbeef") is None
        assert not path.exists()

    def test_legacy_entry_without_checksum_still_served(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("run", "cafe", {"v": 1})
        path = cache._path("run", "cafe")
        data = json.loads(path.read_text())
        data.pop("_sha256")
        path.write_text(json.dumps(data))
        assert cache.load("run", "cafe") == {"v": 1}

    def test_get_is_an_alias_for_load(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("run", "feed", {"v": 2})
        assert cache.get("run", "feed") == {"v": 2}


# ---------------------------------------------------------------------
# Satellite: stable error strings
# ---------------------------------------------------------------------


class TestStableErrorString:
    def test_code_and_message(self):
        text = stable_error_string(MemoryFault(0x40, "out of range"))
        assert text.startswith("MemoryFault")
        # Semantic addresses identify the fault and must survive.
        assert "memory fault at 0x40" in text

    def test_context_is_sorted(self):
        a = SimulationError("boom", code="RPR999", zulu=1, alpha=2)
        b = SimulationError("boom", code="RPR999", alpha=2, zulu=1)
        assert stable_error_string(a) == stable_error_string(b)
        assert "alpha=2, zulu=1" in stable_error_string(a)

    def test_memory_addresses_are_scrubbed(self):
        exc = SimulationError(
            "bad object <repro.cpu.memory.Memory object at 0x7f3a2b1c>")
        text = stable_error_string(exc)
        assert "0x7f3a2b1c" not in text
        assert "at 0x…" in text

    def test_identical_faults_compare_equal_across_backends(self):
        program_src = "L0:\nj L0\nhalt"
        from repro import CoreConfig, assemble

        program = assemble(program_src, name="spin")
        rendered = []
        for cls in (Core, FastCore):
            try:
                cls(program, Memory(1 << 16),
                    config=CoreConfig(max_instructions=5)).run()
            except ReproError as exc:
                rendered.append(stable_error_string(exc))
        assert len(rendered) == 2
        assert rendered[0] == rendered[1]


# ---------------------------------------------------------------------
# Satellite: parity harness failure path (miscounting stub backend)
# ---------------------------------------------------------------------


class _MiscountingCore(FastCore):
    """Deliberately inflates the cycle count by one."""

    def run(self):
        stats = super().run()
        stats.cycles += 1
        return stats


class TestParityFailurePath:
    def test_miscounting_backend_yields_readable_diff(self):
        with temporary_backend(Backend(
                name="miscount", core_cls=_MiscountingCore,
                supports_tracing=False,
                description="off-by-one cycle stub")):
            report = verify_parity(
                [RunConfig(workload="vecadd", mode="dyser",
                           scale="tiny")],
                candidate="miscount")
        assert not report.ok
        mismatch = report.mismatches[0]
        # Cycles drive derived energy keys too; the diff must name the
        # primary counter among the diverging keys it describes.
        assert "stats.cycles" in mismatch.keys
        described = mismatch.describe()
        assert "stats.cycles" in described or "energy." in described
        assert "reference=" in described and "candidate=" in described
        assert "miscount" in report.summary()

    def test_temporary_backend_unregisters_on_exit(self):
        from repro import backend_names, get_backend

        with temporary_backend(Backend("stub2", _MiscountingCore,
                                       False)):
            assert "stub2" in backend_names()
        assert "stub2" not in backend_names()
        with pytest.raises(WorkloadError):
            get_backend("stub2")

    def test_builtin_backends_cannot_be_unregistered(self):
        with pytest.raises(WorkloadError):
            unregister_backend("fast")
        with pytest.raises(WorkloadError):
            unregister_backend("reference")
        with pytest.raises(WorkloadError):
            unregister_backend("never-registered")

    def test_crashing_candidate_is_a_mismatch_not_a_harness_error(self):
        class _ExplodingCore(FastCore):
            def run(self):
                raise SimulationError("synthetic fault", code="RPR998")

        with temporary_backend(Backend("exploder", _ExplodingCore,
                                       False)):
            report = verify_parity(
                [RunConfig(workload="vecadd", mode="dyser",
                           scale="tiny")],
                candidate="exploder")
        assert not report.ok
        assert report.mismatches[0].candidate == {
            "error": "SimulationError[RPR998]: synthetic fault"}
