"""End-to-end integration: hand-written DySER assembly on the full stack.

These tests exercise the same path the compiled kernels use — program with
attached configs -> Core -> DyserDevice — and pin down the headline
behaviour: same answers as scalar code, fewer cycles.
"""

import pytest

from repro.cpu import Core, CoreConfig, Memory
from repro.dyser import (
    Dfg,
    DyserConfig,
    DyserDevice,
    Fabric,
    FabricGeometry,
    FuOp,
    PortRef,
)
from repro.isa import assemble

N = 64


def mac_config(config_id=0) -> DyserConfig:
    """4-wide dot step: out0 = p8 + sum_i(p_i * p_{4+i}), i in 0..3.

    This is the shape the DySER compiler produces for reductions: unroll
    the loop, clone the multiply into four lanes fed by wide ports, and
    reduce in-fabric so the serial accumulate round-trips the core only
    once per four elements.
    """
    dfg = Dfg("dot4")
    products = [
        dfg.add_node(FuOp.FMUL, [PortRef(i), PortRef(4 + i)])
        for i in range(4)
    ]
    left = dfg.add_node(FuOp.FADD, [products[0], products[1]])
    right = dfg.add_node(FuOp.FADD, [products[2], products[3]])
    tree = dfg.add_node(FuOp.FADD, [left, right])
    acc = dfg.add_node(FuOp.FADD, [tree, PortRef(8)])
    dfg.set_output(0, acc)
    return DyserConfig(config_id, dfg, Fabric(FabricGeometry(4, 4)))


def setup_vectors(memory: Memory):
    a = memory.alloc_array([float(i % 7 + 1) for i in range(N)])
    b = memory.alloc_array([float((i * 3) % 5 + 1) for i in range(N)])
    expected = sum(
        memory.load_word(a + 8 * i) * memory.load_word(b + 8 * i)
        for i in range(N)
    )
    return a, b, expected


SCALAR_DOT = """
    ; f8 += A[i] * B[i], arguments: r8 = A, r9 = B, r10 = byte length
    li   r1, 0
    fli  f8, 0.0
loop:
    add  r2, r8, r1
    add  r3, r9, r1
    fld  f1, r2, 0
    fld  f2, r3, 0
    fmul f3, f1, f2
    fadd f8, f8, f3
    addi r1, r1, 8
    blt  r1, r10, loop
    halt
"""

DYSER_DOT = """
    ; same kernel, 4-wide and software-pipelined the way the DySER
    ; compiler emits reductions: two interleaved accumulator chains
    ; (f8 even invocations, f9 odd), each loop trip retires the two
    ; invocations launched a trip earlier, so the fabric round trip and
    ; cache misses overlap with useful issue.  Requires N % 32 == 0.
    dinit 0
    li   r1, 0
    fli  f8, 0.0
    fli  f9, 0.0
    ; prologue: launch invocations 0 (chain A) and 1 (chain B)
    add  r2, r8, r1
    add  r3, r9, r1
    dfldw p0, r2, 4
    dfldw p4, r3, 4
    dfsend p8, f8
    addi r1, r1, 32
    add  r2, r8, r1
    add  r3, r9, r1
    dfldw p0, r2, 4
    dfldw p4, r3, 4
    dfsend p8, f9
    addi r1, r1, 32
loop:
    dfrecv f8, p0        ; retire chain A from the previous trip
    add  r2, r8, r1
    add  r3, r9, r1
    dfldw p0, r2, 4
    dfldw p4, r3, 4
    dfsend p8, f8        ; relaunch chain A
    addi r1, r1, 32
    dfrecv f9, p0        ; retire chain B
    add  r2, r8, r1
    add  r3, r9, r1
    dfldw p0, r2, 4
    dfldw p4, r3, 4
    dfsend p8, f9        ; relaunch chain B
    addi r1, r1, 32
    blt  r1, r10, loop
    ; epilogue: retire the final two in-flight invocations
    dfrecv f8, p0
    dfrecv f9, p0
    fadd f8, f8, f9
    halt
"""


def run_dot(source, with_dyser):
    memory = Memory(1 << 18)
    a, b, expected = setup_vectors(memory)
    program = assemble(source)
    dyser = None
    if with_dyser:
        program.dyser_configs[0] = mac_config()
        dyser = DyserDevice(fabric=Fabric(FabricGeometry(4, 4)))
    core = Core(program, memory, dyser=dyser)
    core.set_args(int_args=(a, b, N * 8))
    stats = core.run()
    return core.fregs.read(8), expected, stats


class TestDotProduct:
    def test_scalar_correct(self):
        result, expected, _ = run_dot(SCALAR_DOT, with_dyser=False)
        assert result == pytest.approx(expected)

    def test_dyser_correct(self):
        result, expected, _ = run_dot(DYSER_DOT, with_dyser=True)
        assert result == pytest.approx(expected)

    def test_dyser_faster_than_scalar(self):
        # The wide-port + in-fabric-reduction mapping should clearly beat
        # the scalar loop, whose fmul+fadd chain serializes on the
        # unpipelined FPU every element.
        _, _, scalar = run_dot(SCALAR_DOT, with_dyser=False)
        _, _, dyser = run_dot(DYSER_DOT, with_dyser=True)
        assert dyser.cycles < scalar.cycles / 2

    def test_dyser_invocation_count(self):
        _, _, stats = run_dot(DYSER_DOT, with_dyser=True)
        assert stats.dyser_invocations == N // 4
        assert stats.dyser_values_sent == 2 * N + N // 4
        assert stats.dyser_values_received == N // 4

    def test_scalar_core_rejects_dyser_ops(self):
        memory = Memory(1 << 16)
        program = assemble("dinit 0\nhalt")
        core = Core(program, memory)  # no device attached
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="without DySER"):
            core.run()


VEC_SAXPY_DYSER = """
    ; y[i] = a*x[i] + y[i], vectorized 4-wide through the fabric
    dinit 0
    li   r1, 0
loop:
    add  r2, r8, r1     ; &x[i]
    add  r3, r9, r1     ; &y[i]
    dfldv p1, r2, 4
    dfldv p2, r3, 4
    dfstv p0, r3, 4
    addi r1, r1, 32
    blt  r1, r10, loop
    halt
"""


def saxpy_config(a: float) -> DyserConfig:
    """out0 = const_a * p1 + p2."""
    dfg = Dfg("saxpy")
    from repro.dyser import ConstRef

    prod = dfg.add_node(FuOp.FMUL, [ConstRef(a), PortRef(1)])
    acc = dfg.add_node(FuOp.FADD, [prod, PortRef(2)])
    dfg.set_output(0, acc)
    return DyserConfig(0, dfg, Fabric(FabricGeometry(4, 4)))


class TestVectorSaxpy:
    def test_vector_path_correct(self):
        a = 2.5
        memory = Memory(1 << 18)
        x = memory.alloc_array([float(i) for i in range(N)])
        y = memory.alloc_array([float(2 * i) for i in range(N)])
        expected = [a * i + 2 * i for i in range(N)]
        program = assemble(VEC_SAXPY_DYSER)
        program.dyser_configs[0] = saxpy_config(a)
        core = Core(program, memory,
                    dyser=DyserDevice(fabric=Fabric(FabricGeometry(4, 4))))
        core.set_args(int_args=(x, y, N * 8))
        stats = core.run()
        got = [memory.load_word(y + 8 * i) for i in range(N)]
        assert got == pytest.approx(expected)
        assert stats.dyser_invocations == N

    def test_vector_beats_scalar_sends(self):
        """4-wide vector loads should beat element-wise dfld+dfst."""
        a = 2.5

        scalar_src = """
            dinit 0
            li   r1, 0
        loop:
            add  r2, r8, r1
            add  r3, r9, r1
            dfld p1, r2, 0
            dfld p2, r3, 0
            dfst p0, r3, 0
            addi r1, r1, 8
            blt  r1, r10, loop
            halt
        """

        def run_one(src, stride):
            memory = Memory(1 << 18)
            x = memory.alloc_array([float(i) for i in range(N)])
            y = memory.alloc_array([float(2 * i) for i in range(N)])
            program = assemble(src)
            program.dyser_configs[0] = saxpy_config(a)
            core = Core(program, memory,
                        dyser=DyserDevice(fabric=Fabric(FabricGeometry(4, 4))))
            core.set_args(int_args=(x, y, N * 8))
            return core.run()

        vec = run_one(VEC_SAXPY_DYSER, 32)
        scalar = run_one(scalar_src, 8)
        assert vec.cycles < scalar.cycles
        assert vec.instructions < scalar.instructions
