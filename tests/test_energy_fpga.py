"""Tests for the energy model and FPGA resource model."""

import pytest

from repro.dyser import Fabric, FabricGeometry
from repro.energy import EnergyModel, EnergyParams
from repro.fpga import (
    FpgaCostTable,
    ResourceVector,
    dyser_resources,
    sparc_core_resources,
    system_report,
    utilization_table,
)
from repro.harness import RunConfig, run_workload


class TestEnergyModel:
    def run_stats(self, mode):
        return run_workload(RunConfig(workload="saxpy", mode=mode,
                                      scale="tiny"))

    def test_breakdown_covers_core_and_dyser(self):
        result = self.run_stats("dyser")
        bd = result.energy.breakdown_nj
        assert any(k.startswith("core.") for k in bd)
        assert any(k.startswith("dyser.") for k in bd)
        assert result.energy.total_nj > 0

    def test_scalar_run_has_no_dyser_energy(self):
        result = self.run_stats("scalar")
        assert result.energy.dyser_power_mw == 0.0

    def test_power_is_energy_over_time(self):
        result = self.run_stats("dyser")
        e = result.energy
        assert e.avg_power_mw == pytest.approx(
            e.total_j / e.runtime_s * 1e3)

    def test_dyser_power_in_paper_band(self):
        """Abstract anchor: DySER consumes ~200 mW.

        Checked on a compute-heavy kernel at the default calibration;
        the E5 bench reports the per-benchmark values.
        """
        result = run_workload(RunConfig(workload="mriq", mode="dyser",
                                        scale="small"))
        assert 100 <= result.energy.dyser_power_mw <= 300

    def test_dyser_wins_energy_on_compute_kernels(self):
        scalar = run_workload(RunConfig(workload="mriq", mode="scalar",
                                        scale="tiny"))
        dyser = run_workload(RunConfig(workload="mriq", mode="dyser",
                                       scale="tiny"))
        assert dyser.energy.total_j < scalar.energy.total_j
        assert (dyser.energy.energy_delay_product()
                < scalar.energy.energy_delay_product())

    def test_static_energy_scales_with_runtime(self):
        params = EnergyParams()
        model = EnergyModel(params)
        from repro.cpu.statistics import ExecStats

        short = ExecStats(cycles=1000, instructions=500)
        long = ExecStats(cycles=2000, instructions=500)
        assert (model.account(long).breakdown_nj["core.static"]
                == 2 * model.account(short).breakdown_nj["core.static"])

    def test_summary_mentions_power(self):
        result = self.run_stats("dyser")
        assert "mW" in result.energy.summary()


class TestFpgaModel:
    def test_resource_vector_addition(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(10, 20, 30, 40)
        c = a + b
        assert (c.luts, c.ffs, c.brams, c.dsps) == (11, 22, 33, 44)
        s = a.scale(3)
        assert (s.luts, s.dsps) == (3, 12)

    def test_dyser_area_scales_with_fabric(self):
        small = dyser_resources(Fabric(FabricGeometry(2, 2)))
        big = dyser_resources(Fabric(FabricGeometry(8, 8)))
        assert big.resources.luts > 4 * small.resources.luts

    def test_dyser_64fu_comparable_to_core(self):
        """Prototype-report shape: a 64-FU DySER is core-sized or less."""
        dyser = dyser_resources(Fabric(FabricGeometry(8, 8)))
        core = sparc_core_resources()
        assert 0.5 < dyser.resources.luts / core.resources.luts < 1.6

    def test_system_fmax_limited_by_core(self):
        rows = system_report(Fabric(FabricGeometry(8, 8)))
        by_name = {r.name: r for r in rows}
        system = by_name["sparc_dyser_system"]
        assert system.fmax_mhz == min(r.fmax_mhz for r in rows)
        assert system.fmax_mhz == by_name["sparc_core"].fmax_mhz

    def test_dyser_fmax_shrinks_with_diameter(self):
        f2 = dyser_resources(Fabric(FabricGeometry(2, 2))).fmax_mhz
        f8 = dyser_resources(Fabric(FabricGeometry(8, 8))).fmax_mhz
        assert f8 < f2

    def test_utilization_table_formats(self):
        text = utilization_table(Fabric(FabricGeometry(4, 4)))
        assert "sparc_core" in text
        assert "dyser_4x4" in text
        assert "LUTs" in text

    def test_dsps_follow_capability_profile(self):
        table = FpgaCostTable()
        uniform_small = dyser_resources(Fabric(FabricGeometry(2, 2)), table)
        assert uniform_small.resources.dsps > 0
