"""Tests for the validated kernel DSL (``repro.lang``, ISSUE 10).

Covers: the recursive-descent parser and the content-hash identity
contract (formatting never changes ``kernel_hash``), the fail-closed
validation pipeline with one negative case per RPR5xx code, the
resource lint on oversized dyser regions, lowering into the standard
:class:`Workload` form (correct in both modes, byte-identical across
the reference/fast/batched backends), the content-addressed
:class:`KernelStore` with its tamper check, the suite's lazy ``dsl:``
resolution plus the difflib nearest-name suggestions, and the ``dsl``
fuzz oracle (stream determinism, planted mutants rejected with their
specific code, regression classification, corpus replay).
"""

from __future__ import annotations

import json

import pytest

from repro import (
    KernelStore,
    RunConfig,
    WorkloadError,
    check_source,
    lower_spec,
    parse_kernel_source,
    run_workload,
    verify_parity,
)
from repro.errors import ParseError
from repro.harness.fuzz import CaseGenerator, save_entry, replay_entry
from repro.harness.fuzz.generator import DSL_MUTATIONS
from repro.harness.fuzz.oracles import Finding, dsl_oracle
from repro.lang import IRREGULAR_DSL, load_workload, lowered_source
from repro.workloads import SUITE, suite
from repro.workloads.dsl_kernels import DSL_SOURCES

MINIMAL = """
kernel tiny_copy {
    size n = { tiny: 8, small: 16, medium: 32 };
    in  float a[n] = uniform(0.0, 1.0);
    in  int   count = n;
    out float y[n];
    for (int i = 0; i < count; i = i + 1) {
        y[i] = a[i];
    }
}
"""


def _checked(source: str):
    spec, report = check_source(source)
    assert spec is not None, report.render()
    return spec


# ---------------------------------------------------------------------
# Parser and content-hash identity
# ---------------------------------------------------------------------


class TestParser:
    @pytest.mark.parametrize("name", sorted(DSL_SOURCES))
    def test_shipped_sources_parse(self, name):
        spec = parse_kernel_source(DSL_SOURCES[name])
        assert spec.name
        assert spec.workload_name == f"dsl:{spec.kernel_hash[:16]}"

    def test_formatting_never_changes_the_hash(self):
        reformatted = (
            "// a comment\n"
            "kernel tiny_copy {\n"
            "  size n={tiny:8,small:16,medium:32};\n"
            "  in float a[n]=uniform(0.0,1.0);\n"
            "  in int count=n;  // trailing comment\n"
            "  out float y[n];\n"
            "  for(int i=0;i<count;i=i+1){y[i]=a[i];}\n"
            "}\n")
        a = parse_kernel_source(MINIMAL)
        b = parse_kernel_source(reformatted)
        assert a.kernel_hash == b.kernel_hash
        assert a.workload_name == b.workload_name

    def test_distinct_kernels_hash_differently(self):
        other = MINIMAL.replace("y[i] = a[i];", "y[i] = a[i] + 1.0;")
        assert (parse_kernel_source(MINIMAL).kernel_hash
                != parse_kernel_source(other).kernel_hash)

    def test_float_cast_parses_in_call_position(self):
        spec = _checked(MINIMAL.replace(
            "y[i] = a[i];", "y[i] = float(i) * a[i];"))
        assert spec.name == "tiny_copy"

    def test_parse_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_kernel_source("kernel broken {")
        assert err.value.line >= 1


# ---------------------------------------------------------------------
# Validation: one negative case per RPR5xx code
# ---------------------------------------------------------------------


def _body(stmt: str) -> str:
    return MINIMAL.replace("y[i] = a[i];", stmt)


_WIDE_DYSER = MINIMAL.replace(
    "y[i] = a[i];",
    "dyser { y[i] = " + " + ".join(["a[i]"] * 70) + "; }")

_MANY_LIVE = MINIMAL.replace(
    "for (int i = 0;",
    "".join(f"float v{k} = a[{k}];\n    " for k in range(40))
    + "for (int i = 0;").replace(
    "y[i] = a[i];",
    "dyser { y[i] = " + " + ".join(f"v{k}" for k in range(40)) + "; }")


REJECTIONS = [
    ("RPR500", MINIMAL.replace("size n", "@ size n")),
    ("RPR501", MINIMAL.rstrip()[:-1]),
    ("RPR510", _body("y[i] = qz;")),
    ("RPR511", _body("y[i] = a[i] + count;")),
    ("RPR512", _body("y[i] = count[i];")),
    ("RPR513", _body("a[i] = 1.0;\n        y[i] = a[i];")),
    ("RPR514", _body("int h = count / 2;\n        y[i] = a[h];")),
    ("RPR515", _body("float v = a[i];")),
    ("RPR516", _body("y[i] = clamp(a[i]);")),
    ("RPR517", MINIMAL.replace("in  int   count = n;",
                               "in  float bad = n;")),
    ("RPR518", MINIMAL.replace("in  int   count = n;",
                               "in  int   count = n;\n"
                               "    in  int   count = n;")),
    ("RPR519", MINIMAL.replace(" = uniform(0.0, 1.0)", "")),
    ("RPR520", _WIDE_DYSER),
    ("RPR521", _MANY_LIVE),
    ("RPR522", MINIMAL.replace("small: 16, ", "")),
    ("RPR523", MINIMAL.replace("tiny: 8", "tiny: 0")),
    ("RPR524", MINIMAL.replace("out float y[n];",
                               "in float y[n] = zeros();")
               .replace("y[i] = a[i];", "float v = a[i];")),
    ("RPR525", _body("dyser { dyser { y[i] = a[i]; } }")),
    ("RPR526", MINIMAL.replace("}\n}", "}\n    break;\n}")),
]


class TestValidation:
    @pytest.mark.parametrize("code,source",
                             REJECTIONS, ids=[c for c, _ in REJECTIONS])
    def test_rejected_with_stable_code(self, code, source):
        spec, report = check_source(source)
        assert spec is None
        codes = {d.code for d in report.errors}
        assert code in codes, (code, report.render())
        # fail-closed: every rejection code is from the DSL bank and
        # registered (a registered code never renders the synthetic
        # "unregistered diagnostic" title).
        from repro.analysis.diagnostics import describe_code

        for diag in report.errors:
            assert diag.code.startswith("RPR5")
            assert describe_code(diag.code).title != "unregistered diagnostic"

    def test_while_loop_is_warning_not_rejection(self):
        source = _body("int k = 0;\n"
                       "        while (k < 3) { k = k + 1; }\n"
                       "        y[i] = a[i];")
        spec, report = check_source(source)
        assert spec is not None
        assert "RPR540" in {d.code for d in report.warnings}

    def test_check_source_never_raises(self):
        for junk in ("", "@@@", "kernel", "kernel x {",
                     "kernel x { size n = {tiny: 1}; }", "\x00\x01"):
            spec, report = check_source(junk)
            assert spec is None
            assert not report.ok


# ---------------------------------------------------------------------
# Lowering: the standard Workload contract
# ---------------------------------------------------------------------


class TestLowering:
    def test_lowered_kernel_runs_correctly_both_modes(self):
        spec = _checked(MINIMAL)
        workload = lower_spec(spec)
        assert workload.category == IRREGULAR_DSL
        suite.register_workload(workload, replace=True)
        try:
            for mode in ("scalar", "dyser"):
                result = run_workload(RunConfig(
                    workload=workload.name, mode=mode, scale="tiny"))
                assert result.correct, mode
        finally:
            SUITE.pop(workload.name, None)

    @pytest.mark.parametrize("backend", ["fast", "batched"])
    def test_dsl_kernel_backend_parity(self, backend):
        # Acceptance criterion: DSL kernels byte-identical across
        # reference/fast/batched (the shipped tier is registered).
        configs = [RunConfig(workload="spmv_csr_dsl", mode=mode,
                             scale="tiny")
                   for mode in ("scalar", "dyser")]
        report = verify_parity(configs, candidate=backend)
        assert report.ok, report.summary()

    def test_lowered_source_is_compilable_kernel_language(self):
        spec = _checked(DSL_SOURCES["spmv_csr_dsl"])
        text = lowered_source(spec)
        from repro import compile_dyser

        result = compile_dyser(text)
        assert result.program.instructions


# ---------------------------------------------------------------------
# Store: content-addressed persistence
# ---------------------------------------------------------------------


class TestStore:
    def test_put_load_roundtrip(self, tmp_path):
        store = KernelStore(tmp_path)
        spec = _checked(MINIMAL)
        entry = store.put(MINIMAL, spec)
        assert entry["kernel_hash"] == spec.kernel_hash
        assert store.path_for(spec.workload_name).exists()
        assert store.load_source(spec.workload_name) == MINIMAL
        assert store.names() == [spec.workload_name]
        workload = load_workload(spec.workload_name, store=store)
        assert workload is not None
        assert workload.name == spec.workload_name

    def test_put_is_idempotent(self, tmp_path):
        store = KernelStore(tmp_path)
        spec = _checked(MINIMAL)
        assert store.put(MINIMAL, spec) == store.put(MINIMAL, spec)
        assert len(store.names()) == 1

    def test_tampered_entry_is_rejected(self, tmp_path):
        store = KernelStore(tmp_path)
        spec = _checked(MINIMAL)
        store.put(MINIMAL, spec)
        path = store.path_for(spec.workload_name)
        doc = json.loads(path.read_text())
        doc["source"] = doc["source"].replace("a[i]", "(a[i] + 1.0)")
        path.write_text(json.dumps(doc))
        # content no longer matches the content-addressed name
        with pytest.raises(WorkloadError, match="refusing the mismatched"):
            load_workload(spec.workload_name, store=store)

    def test_missing_kernel_is_none(self, tmp_path):
        store = KernelStore(tmp_path)
        assert load_workload("dsl:" + "0" * 16, store=store) is None


# ---------------------------------------------------------------------
# Suite integration: dsl tier + lazy resolution + suggestions
# ---------------------------------------------------------------------


class TestSuiteIntegration:
    def test_dsl_tier_is_registered(self):
        tier = suite.names(category=IRREGULAR_DSL)
        assert set(DSL_SOURCES) <= set(tier)
        assert len(tier) >= 4

    def test_get_resolves_dsl_names_from_store(self, tmp_path, monkeypatch):
        spec = _checked(MINIMAL)
        KernelStore(tmp_path).put(MINIMAL, spec)
        monkeypatch.setenv("REPRO_KERNEL_DIR", str(tmp_path))
        try:
            SUITE.pop(spec.workload_name, None)
            workload = suite.get(spec.workload_name)
            assert workload.name == spec.workload_name
        finally:
            SUITE.pop(spec.workload_name, None)

    def test_unknown_workload_suggests_nearest(self):
        with pytest.raises(WorkloadError) as err:
            suite.get("vecad")
        msg = str(err.value)
        assert "unknown workload" in msg
        assert "'vecadd'" in msg

    def test_unknown_category_suggests_nearest(self):
        with pytest.raises(WorkloadError) as err:
            suite.names(category="iregular-dsl")
        msg = str(err.value)
        assert "unknown category" in msg
        assert "'irregular-dsl'" in msg


# ---------------------------------------------------------------------
# The dsl fuzz oracle
# ---------------------------------------------------------------------


class TestDslFuzz:
    def test_dsl_stream_is_deterministic(self):
        a = CaseGenerator(seed=13)
        b = CaseGenerator(seed=13)
        for index in range(20):
            assert (a.generate_dsl(index).to_dict()
                    == b.generate_dsl(index).to_dict())

    def test_main_stream_never_emits_dsl(self):
        kinds = {CaseGenerator(seed=0).generate(i).kind
                 for i in range(40)}
        assert kinds == {"scalar", "dyser", "kernel"}

    def test_every_mutation_rejected_with_its_code(self):
        gen = CaseGenerator(seed=1, irregularity=1.0)
        seen: set[str] = set()
        index = 0
        while seen != set(DSL_MUTATIONS) and index < 2000:
            case = gen.generate_dsl(index)
            index += 1
            if not case.expect_error:
                continue
            mutation = case.label.split("/", 1)[1]
            if mutation in seen:
                continue
            seen.add(mutation)
            assert dsl_oracle(case) is None, case.describe()
            spec, report = check_source(case.source)
            assert spec is None
            assert DSL_MUTATIONS[mutation] in {d.code
                                               for d in report.errors}
        assert seen == set(DSL_MUTATIONS)

    def test_oracle_flags_a_mutant_that_validation_accepts(self):
        # Regression shape: a case tagged expect_error whose source is
        # actually legal models validation having gone soft.
        gen = CaseGenerator(seed=4)
        legal = next(gen.generate_dsl(i) for i in range(100)
                     if not gen.generate_dsl(i).expect_error)
        from dataclasses import replace

        soft = replace(legal, expect_error=True, label="dsl/garbage")
        finding = dsl_oracle(soft)
        assert finding is not None
        assert finding.kind == "mutant-accepted"

    def test_oracle_flags_legal_source_rejected(self):
        gen = CaseGenerator(seed=4)
        mutant = next(gen.generate_dsl(i) for i in range(200)
                      if gen.generate_dsl(i).expect_error)
        from dataclasses import replace

        broken = replace(mutant, expect_error=False, label="dsl/plain")
        finding = dsl_oracle(broken)
        assert finding is not None
        assert finding.kind == "legal-rejected"

    def test_dsl_corpus_entry_roundtrip(self, tmp_path):
        case = CaseGenerator(seed=2026).generate_dsl(1)
        finding = Finding("dsl", case.key, "legal-rejected", "x",
                          seed=case.seed, index=case.index)
        path = save_entry(case, finding, tmp_path)
        assert path.name.startswith("dsl-")
        assert replay_entry(path) is None  # green on main
