"""End-to-end tests for untrusted kernel submission (ISSUE 10).

Covers: the ``POST /v2/kernels`` surface on a single worker (201
create, 200 idempotent resubmit, the 422 rejection envelope with
structured RPR5xx diagnostics, per-tenant kernel quotas with a 429 +
``Retry-After``, the 413 size cap), running a registered kernel
through ``/v1/run``, engine artifact-cache correctness for ``dsl:``
job specs (same source → same hash → warm hit byte-identical to
cold), gateway broadcast registration with survival of a worker kill,
and the ``repro kernel`` CLI round trip.

Like the other service tests, every daemon runs in-process on an
ephemeral port; kernel stores are pinned to ``tmp_path`` via
``$REPRO_KERNEL_DIR`` so tests never touch the user's cache.
"""

from __future__ import annotations

import json

import pytest

from repro import KernelStore, check_source, cli
from repro.engine import ArtifactCache, JobSpec, run_jobs
from repro.service import (
    Client,
    GatewayThread,
    ServiceError,
    ServiceThread,
    TenancyController,
    TenantQuota,
)
from repro.service import protocol as P

GOOD = """
kernel scaled_copy {
    size n = { tiny: 8, small: 16, medium: 32 };
    in  float a[n] = uniform(0.0, 1.0);
    in  int   count = n;
    out float y[n];
    for (int i = 0; i < count; i = i + 1) {
        y[i] = a[i] * 2.0;
    }
}
"""

OTHER = GOOD.replace("scaled_copy", "shifted_copy") \
            .replace("a[i] * 2.0", "a[i] + 1.0")

BAD = "kernel broken {"


@pytest.fixture(autouse=True)
def _isolated_kernel_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_DIR", str(tmp_path / "kernels"))


def _workload_name(source: str) -> str:
    spec, report = check_source(source)
    assert spec is not None, report.render()
    return spec.workload_name


# ---------------------------------------------------------------------
# Single-worker /v2/kernels surface
# ---------------------------------------------------------------------


class TestKernelEndpoint:
    def test_create_then_idempotent_resubmit(self):
        with ServiceThread(cache=None) as srv:
            with Client(port=srv.port, retries=0) as client:
                status, body = client.request(
                    "POST", "/v2/kernels", {"source": GOOD})
                assert status == 201
                assert body["ok"]
                kernel = body["kernel"]
                assert kernel["created"]
                assert kernel["workload"] == _workload_name(GOOD)
                assert kernel["workload"].startswith("dsl:")
                assert kernel["kernel_hash"].startswith(
                    kernel["workload"][len("dsl:"):])

                again, body2 = client.request(
                    "POST", "/v2/kernels", {"source": GOOD})
                assert again == 200
                assert body2["kernel"]["created"] is False
                assert (body2["kernel"]["kernel_hash"]
                        == kernel["kernel_hash"])

                assert client.kernels() == [kernel["workload"]]

    def test_rejection_envelope_carries_rpr5xx_diagnostics(self):
        with ServiceThread(cache=None) as srv:
            with Client(port=srv.port, retries=0) as client:
                status, body = client.request(
                    "POST", "/v2/kernels", {"source": BAD})
        assert status == 422
        assert body["ok"] is False
        assert body["protocol"] == P.PROTOCOL_V2
        error = body["error"]
        assert error["code"] == P.ERR_LINT_REJECTED
        diags = error["diagnostics"]
        assert diags, "rejection must carry structured diagnostics"
        for diag in diags:
            assert diag["code"].startswith("RPR5")
            assert diag["severity"] == "error"
            assert diag["message"]
        # nothing half-registered: a rejected kernel leaves no entry
        with ServiceThread(cache=None) as srv:
            with Client(port=srv.port, retries=0) as client:
                assert client.kernels() == []

    def test_submit_kernel_raises_with_payload(self):
        with ServiceThread(cache=None) as srv:
            with Client(port=srv.port, retries=0) as client:
                with pytest.raises(ServiceError) as err:
                    client.submit_kernel(BAD)
        assert err.value.status == 422
        codes = [d["code"]
                 for d in err.value.payload["error"]["diagnostics"]]
        assert any(c.startswith("RPR5") for c in codes)

    def test_kernel_quota_429_with_retry_after(self):
        tenancy = TenancyController(
            quotas={"alice": TenantQuota(max_kernels=1)})
        with ServiceThread(cache=None, tenancy=tenancy) as srv:
            with Client(port=srv.port, retries=0,
                        tenant="alice") as client:
                first = client.submit_kernel(GOOD)
                assert first["kernel"]["created"]
                # same content again: idempotent, no quota charge
                again = client.submit_kernel(GOOD)
                assert again["kernel"]["created"] is False

                status, headers, data = client._send_once(
                    "POST", "/v2/kernels",
                    json.dumps({"source": OTHER}).encode())
        assert status == 429
        body = json.loads(data)
        assert body["error"]["code"] == P.ERR_THROTTLED
        assert body["error"]["retry_after_s"] > 0
        retry_after = {k.lower(): v for k, v in headers.items()} \
            .get("retry-after")
        assert retry_after and float(retry_after) > 0

    def test_oversized_source_is_413(self):
        huge = GOOD + "// pad\n" * 20_000  # > 64 KiB
        with ServiceThread(cache=None) as srv:
            with Client(port=srv.port, retries=0) as client:
                status, body = client.request(
                    "POST", "/v2/kernels", {"source": huge})
        assert status == 413
        assert body["error"]["code"] == P.ERR_TOO_LARGE

    def test_registered_kernel_runs_via_v1(self):
        with ServiceThread(cache=None) as srv:
            with Client(port=srv.port, retries=0) as client:
                payload = client.submit_kernel(GOOD)
                workload = payload["kernel"]["workload"]
                reply = client.execute({"workload": workload,
                                        "mode": "dyser",
                                        "scale": "tiny"})
        assert reply["status"] == P.STATUS_EXECUTED
        assert reply["result"]["correct"]


# ---------------------------------------------------------------------
# Artifact-cache correctness for dsl: job specs
# ---------------------------------------------------------------------


class TestKernelCacheCorrectness:
    def test_same_source_same_hash_warm_hit_byte_identical(
            self, tmp_path):
        # same DSL source → same kernel_hash, regardless of formatting
        name = _workload_name(GOOD)
        assert _workload_name(
            "// reformatted\n" + GOOD.replace("    ", "\t")) == name

        spec, _ = check_source(GOOD)
        KernelStore().put(GOOD, spec)

        cache = ArtifactCache(tmp_path / "artifacts")
        specs = [JobSpec(name, mode=mode, scale="tiny")
                 for mode in ("scalar", "dyser")]
        cold = run_jobs(specs, cache=cache)
        assert cold.executed == 2 and cold.cache_hits == 0
        warm = run_jobs(specs, cache=cache)
        assert warm.executed == 0 and warm.cache_hits == 2
        for a, b in zip(cold.results, warm.results):
            assert b.correct
            assert a.cycles == b.cycles
            assert a.energy.total_nj == b.energy.total_nj
            assert a.stats.insn_mix == b.stats.insn_mix
            assert a.stats.stall_cycles == b.stats.stall_cycles


# ---------------------------------------------------------------------
# Gateway: broadcast registration, worker-kill survival
# ---------------------------------------------------------------------


class TestGatewayKernels:
    def test_broadcast_then_survives_worker_kill(self, tmp_path):
        with GatewayThread(
                n_workers=2,
                worker_kwargs={"cache": None, "batch_max": 1,
                               "batch_window_s": 0.0},
                cache=None, journal=tmp_path / "gw-jobs.jsonl",
                health_interval_s=0.2) as gw:
            with Client(port=gw.port, retries=1, timeout=60) as client:
                payload = client.submit_kernel(GOOD)
                assert payload["kernel"]["workers"] == 2
                workload = payload["kernel"]["workload"]

                handle = client.submit(sweep={
                    "workloads": [workload],
                    "modes": ["scalar", "dyser"],
                    "base": {"scale": "tiny"},
                })
                client.wait(handle.id, timeout=120)
                job = client.job(handle.id, results=True)
                assert job.state == "succeeded"
                assert len(job.results) == 2
                assert all(p["result"]["correct"] for p in job.results)

                gw.kill_worker(0)
                reply = client.execute({"workload": workload,
                                        "mode": "dyser",
                                        "scale": "tiny"})
                assert reply["result"]["correct"]

    def test_gateway_rejects_malformed_without_forwarding(self,
                                                          tmp_path):
        with GatewayThread(
                n_workers=2,
                worker_kwargs={"cache": None, "batch_max": 1,
                               "batch_window_s": 0.0},
                cache=None, journal=tmp_path / "gw-jobs.jsonl",
                health_interval_s=0.2) as gw:
            with Client(port=gw.port, retries=0) as client:
                status, body = client.request(
                    "POST", "/v2/kernels", {"source": BAD})
        assert status == 422
        assert body["error"]["code"] == P.ERR_LINT_REJECTED
        assert all(d["code"].startswith("RPR5")
                   for d in body["error"]["diagnostics"])


# ---------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------


class TestKernelCli:
    def test_check_accepts_and_rejects(self, tmp_path, capsys):
        good = tmp_path / "good.rk"
        good.write_text(GOOD)
        assert cli.main(["kernel", "check", str(good)]) == 0
        out = capsys.readouterr().out
        assert "kernel_hash" in out

        bad = tmp_path / "bad.rk"
        bad.write_text(BAD)
        assert cli.main(["kernel", "check", str(bad), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert any(d["code"].startswith("RPR5")
                   for d in report["diagnostics"])

    def test_kernel_run_executes(self, tmp_path, capsys):
        path = tmp_path / "k.rk"
        path.write_text(GOOD)
        assert cli.main(["kernel", "run", str(path),
                         "--mode", "dyser", "--scale", "tiny"]) == 0
        assert ": OK" in capsys.readouterr().out

    def test_kernel_submit_round_trip(self, tmp_path, capsys):
        path = tmp_path / "k.rk"
        path.write_text(GOOD)
        with ServiceThread(cache=None) as srv:
            rc = cli.main(["kernel", "submit", str(path),
                           "--port", str(srv.port)])
            assert rc == 0
            out = capsys.readouterr().out
            assert _workload_name(GOOD) in out
