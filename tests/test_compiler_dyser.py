"""Tests for the DySER compilation pipeline: region selection,
if-conversion, unrolling, vectorization, scheduling, and scalar-vs-DySER
execution equivalence."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, compile_dyser, compile_scalar
from repro.cpu import Core, Memory
from repro.dyser import DyserDevice, Fabric, FabricGeometry
from repro.isa import InsnClass

VECSCALE = """
kernel vecscale(out float c[], float a[], float b[], int n) {
    for (int i = 0; i < n; i = i + 1) { c[i] = 2.0 * a[i] + b[i] * b[i]; }
}
"""

DOTLIKE = """
kernel dot(out float y[], float a[], float b[], int n) {
    float acc = 0.0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + a[i] * b[i]; }
    y[0] = acc;
}
"""

CLIPPED = """
kernel clipped(out float c[], float a[], int n, float lo, float hi) {
    for (int i = 0; i < n; i = i + 1) {
        float v = a[i] * a[i];
        if (v < lo) { v = lo; }
        if (v > hi) { v = hi; }
        c[i] = v;
    }
}
"""

HISTOGRAM = """
kernel hist(out float h[], int x[], float w[], int n, int bins) {
    for (int i = 0; i < n; i = i + 1) {
        int b = x[i] % bins;
        h[b] = h[b] + w[i] * w[i];
    }
}
"""

CONVERGE = """
kernel converge(out float y[], float x0, float eps, int cap) {
    float x = x0;
    int it = 0;
    while (x * x - 2.0 > eps && it < cap) {
        x = 0.5 * (x + 2.0 / x);
        it = it + 1;
    }
    y[0] = x;
}
"""


def run_both(src, int_args=(), fp_args=(), n_out=1, out_dtype=np.float64,
             options=None, mem_size=1 << 20, setup=None):
    """Compile scalar and DySER, run both, return (out_s, out_d, stats)."""
    outs, stats = [], []
    results = []
    for mode in ("scalar", "dyser"):
        mem = Memory(mem_size)
        args = setup(mem) if setup else tuple(int_args)
        if mode == "scalar":
            res = compile_scalar(src)
            dev = None
        else:
            res = compile_dyser(src, options)
            dev = DyserDevice(fabric=(options.fabric if options
                                      else Fabric(FabricGeometry(8, 8))))
        core = Core(res.program, mem, dyser=dev)
        core.set_args(args, fp_args)
        stats.append(core.run())
        outs.append(mem.read_numpy(args[0], n_out, dtype=out_dtype))
        results.append(res)
    return outs, stats, results


class TestRegionSelection:
    def test_vecscale_offloaded_unrolled_vectorized(self):
        res = compile_dyser(VECSCALE)
        (region,) = res.regions
        assert region.accepted
        assert region.shape == "straight"
        assert region.unrolled == 8
        assert region.vectorized
        assert region.execute_ops == 24  # 3 ops x 8 lanes

    def test_config_attached_to_program(self):
        res = compile_dyser(VECSCALE)
        assert 0 in res.program.dyser_configs
        config = res.program.dyser_configs[0]
        config.validate()
        assert config.placement is not None
        assert config.routes is not None

    def test_reduction_offloaded_with_chained_accumulator(self):
        res = compile_dyser(DOTLIKE)
        (region,) = res.regions
        assert region.accepted
        assert region.unrolled == 8
        # One output (the accumulator), not eight.
        assert region.output_ports == 1
        dfg = res.program.dyser_configs[0].dfg
        # Reassociation turns the 8-term serial accumulation into a
        # balanced tree: mul + 3 tree levels + final accumulate.
        assert dfg.depth() == 5

    def test_conditional_region_if_converted(self):
        res = compile_dyser(CLIPPED)
        (region,) = res.regions
        assert region.accepted
        assert region.shape == "diamond"
        dump = res.ir_dump
        assert "fsel" in dump or "fsel" in str(
            res.program.dyser_configs[0].dfg.describe())

    def test_histogram_not_unrolled(self):
        # h[b] = h[b]+1 carries a may-alias dependence across iterations:
        # the unrolled attempt must fall back to unroll=1.
        res = compile_dyser(HISTOGRAM)
        (region,) = res.regions
        assert region.accepted
        assert region.unrolled == 1

    def test_loop_carried_control_shape(self):
        res = compile_dyser(CONVERGE)
        shapes = {r.shape for r in res.regions}
        assert "loop_carried_control" in shapes

    def test_min_region_ops_rejects_trivial(self):
        src = """
        kernel copy(out float c[], float a[], int n) {
            for (int i = 0; i < n; i = i + 1) { c[i] = a[i]; }
        }
        """
        res = compile_dyser(src)
        assert all(not r.accepted for r in res.regions)

    def test_tiny_fabric_falls_back_to_scalar(self):
        options = CompilerOptions(fabric=Fabric(FabricGeometry(1, 1)),
                                  unroll=4)
        res = compile_dyser(VECSCALE, options)
        (region,) = res.regions
        # 1x1 fabric: the unrolled (12-op) and scalar (3-op) slices both
        # exceed one FU; region must be rejected, program stays scalar.
        assert not region.accepted
        assert not res.program.uses_dyser()

    def test_unroll_disabled(self):
        options = CompilerOptions(unroll=1)
        res = compile_dyser(VECSCALE, options)
        (region,) = res.regions
        assert region.accepted
        assert region.unrolled == 1
        assert not region.vectorized


class TestExecutionEquivalence:
    def check(self, src, setup, n_out, out_dtype=np.float64, fp_args=(),
              options=None, rtol=1e-9):
        (out_s, out_d), (stat_s, stat_d), _ = run_both(
            src, setup=setup, n_out=n_out, out_dtype=out_dtype,
            fp_args=fp_args, options=options)
        if out_dtype == np.float64:
            np.testing.assert_allclose(out_d, out_s, rtol=rtol)
        else:
            np.testing.assert_array_equal(out_d, out_s)
        return stat_s, stat_d

    def test_vecscale_matches(self):
        n = 50

        def setup(mem):
            pc = mem.alloc(n)
            pa = mem.alloc_numpy(np.linspace(0, 1, n))
            pb = mem.alloc_numpy(np.linspace(2, 3, n))
            return (pc, pa, pb, n)

        stat_s, stat_d = self.check(VECSCALE, setup, n)
        assert stat_d.cycles < stat_s.cycles

    def test_dot_matches(self):
        n = 37

        def setup(mem):
            py = mem.alloc(1)
            pa = mem.alloc_numpy(np.linspace(0, 1, n))
            pb = mem.alloc_numpy(np.linspace(1, 2, n))
            return (py, pa, pb, n)

        self.check(DOTLIKE, setup, 1)

    def test_clipped_matches(self):
        n = 41

        def setup(mem):
            pc = mem.alloc(n)
            pa = mem.alloc_numpy(np.linspace(-2, 2, n))
            return (pc, pa, n)

        self.check(CLIPPED, setup, n, fp_args=(0.5, 3.0))

    def test_histogram_matches(self):
        n, bins = 60, 5

        def setup(mem):
            ph = mem.alloc(bins)
            px = mem.alloc_numpy(np.abs(np.arange(n) * 7919) % 100)
            pw = mem.alloc_numpy(np.linspace(0.5, 1.5, n))
            return (ph, px, pw, n, bins)

        self.check(HISTOGRAM, setup, bins)

    def test_converge_matches(self):
        # Int args are (y, cap); fp args are (x0, eps).
        def setup(mem):
            return (mem.alloc(1), 50)

        self.check(CONVERGE, setup, 1, fp_args=(3.0, 1e-9))

    def test_remainder_boundaries(self):
        # Exercise n % unroll in {0,1,2,3} and n < unroll.
        for n in (1, 2, 3, 4, 5, 7, 8, 16, 19):
            def setup(mem, n=n):
                pc = mem.alloc(max(n, 1))
                pa = mem.alloc_numpy(np.linspace(0, 1, n))
                pb = mem.alloc_numpy(np.linspace(2, 3, n))
                return (pc, pa, pb, n)

            self.check(VECSCALE, setup, n)

    def test_zero_trip_loop(self):
        def setup(mem):
            pc = mem.alloc(4)
            pa = mem.alloc_numpy(np.zeros(4))
            pb = mem.alloc_numpy(np.zeros(4))
            return (pc, pa, pb, 0)

        self.check(VECSCALE, setup, 4)


class TestDyserCodeProperties:
    def test_fewer_dynamic_instructions(self):
        n = 64
        mem_s, mem_d = Memory(1 << 20), Memory(1 << 20)
        a = np.linspace(0, 1, n)
        b = np.linspace(2, 3, n)

        def load(mem):
            return (mem.alloc(n), mem.alloc_numpy(a), mem.alloc_numpy(b), n)

        scalar = compile_scalar(VECSCALE)
        core_s = Core(scalar.program, mem_s)
        core_s.set_args(load(mem_s))
        stat_s = core_s.run()

        dyser = compile_dyser(VECSCALE)
        core_d = Core(dyser.program, mem_d,
                      dyser=DyserDevice(fabric=Fabric(FabricGeometry(8, 8))))
        core_d.set_args(load(mem_d))
        stat_d = core_d.run()
        assert stat_d.instructions < stat_s.instructions / 2
        assert stat_d.class_count(InsnClass.FPU) < \
            stat_s.class_count(InsnClass.FPU)
        assert stat_d.dyser_invocations == n // 8

    def test_dinit_in_preheader_runs_once(self):
        n = 32
        mem = Memory(1 << 20)
        res = compile_dyser(VECSCALE)
        core = Core(res.program, mem,
                    dyser=DyserDevice(fabric=Fabric(FabricGeometry(8, 8))))
        core.set_args((mem.alloc(n), mem.alloc_numpy(np.ones(n)),
                       mem.alloc_numpy(np.ones(n)), n))
        stats = core.run()
        assert stats.dyser_config_loads == 1

    def test_wide_transfers_used(self):
        res = compile_dyser(VECSCALE)
        mnemonics = {i.op.value for i in res.program}
        assert "dfldw" in mnemonics
        assert "dfstw" in mnemonics

    def test_listing_roundtrips_through_assembler(self):
        from repro.isa import assemble

        res = compile_dyser(VECSCALE)
        text = res.program.listing()
        p2 = assemble(text)
        assert [i.text() for i in p2] == [
            i.text() for i in res.program]
