"""Tests for invocation timing, flow control, config cache and the device."""

import pytest

from repro.dyser import (
    ConstRef,
    Dfg,
    DyserConfig,
    DyserDevice,
    DyserTimingParams,
    Fabric,
    FabricGeometry,
    FuOp,
    InvocationEngine,
    PortRef,
)
from repro.dyser.config_cache import ConfigCache, ConfigCacheParams
from repro.errors import DyserError


def add_dfg() -> Dfg:
    dfg = Dfg("add")
    n = dfg.add_node(FuOp.ADD, [PortRef(0), PortRef(1)])
    dfg.set_output(0, n)
    return dfg


def make_config(config_id=0, dfg=None, geometry=(4, 4)) -> DyserConfig:
    return DyserConfig(config_id, dfg or add_dfg(),
                       Fabric(FabricGeometry(*geometry)))


def make_engine(depth=4, ii=1, dfg=None) -> InvocationEngine:
    params = DyserTimingParams(
        input_fifo_depth=depth, output_fifo_depth=depth,
        initiation_interval=ii)
    return InvocationEngine(make_config(dfg=dfg), params)


class TestInvocationEngine:
    def test_single_invocation_value_and_delay(self):
        eng = make_engine()
        eng.send(0, 3, t_ready=10)
        eng.send(1, 4, t_ready=12)
        value, done = eng.recv(0, t_try=12)
        assert value == 7
        delay = eng.delays[0]
        assert done == 12 + delay

    def test_fire_waits_for_all_inputs(self):
        eng = make_engine()
        eng.send(0, 1, t_ready=5)
        assert eng.invocations == 0
        eng.send(1, 2, t_ready=50)
        assert eng.invocations == 1
        assert eng.fire_times == [50]

    def test_pipelining_one_per_cycle(self):
        eng = make_engine(depth=8)
        for i in range(6):
            eng.send(0, i, t_ready=10 + i)
            eng.send(1, i, t_ready=10 + i)
        assert eng.fire_times == [10 + i for i in range(6)]
        results = [eng.recv(0, t_try=0) for _ in range(6)]
        assert [v for v, _t in results] == [0, 2, 4, 6, 8, 10]
        # Outputs appear pipelined: one per cycle after the pipe fills.
        times = [t for _v, t in results]
        assert times == sorted(times)
        assert times[1] - times[0] == 1

    def test_initiation_interval_throttles(self):
        eng = make_engine(depth=8, ii=3)
        for i in range(4):
            eng.send(0, i, t_ready=0)
            eng.send(1, i, t_ready=0)
        assert eng.fire_times == [0, 3, 6, 9]

    def test_input_fifo_backpressure(self):
        # Depth 1: the second send on a port stalls until the invocation
        # holding the slot fires.
        eng = make_engine(depth=1)
        eng.send(0, 1, t_ready=0)
        eng.send(1, 1, t_ready=20)       # invocation 0 fires at 20
        done = eng.send(0, 2, t_ready=5)
        assert done == 20                 # stalled on the full FIFO

    def test_deep_fifo_absorbs_burst(self):
        eng = make_engine(depth=4)
        times = [eng.send(0, i, t_ready=i) for i in range(4)]
        assert times == [0, 1, 2, 3]      # no backpressure within depth

    def test_output_backpressure_delays_fire(self):
        eng = make_engine(depth=2)
        # Fill the output FIFO (depth 2), then receive invocation 0 late.
        for i in range(2):
            eng.send(0, i, t_ready=0)
            eng.send(1, i, t_ready=0)
        _v, _t = eng.recv(0, t_try=100)   # frees a slot at cycle >= 100
        # Invocation 2's output slot is the one just freed: it cannot
        # fire before that receive completed.
        eng.send(0, 9, t_ready=0)
        eng.send(1, 9, t_ready=0)
        assert eng.fire_times[2] >= 100

    def test_output_backpressure_unresolved_is_counted(self):
        # Receiving *after* the burst violates invocation ordering; the
        # model optimistically accepts but counts it (see ports.py).
        eng = make_engine(depth=2)
        for i in range(3):
            eng.send(0, i, t_ready=0)
            eng.send(1, i, t_ready=0)
        assert eng.unresolved_stalls > 0

    def test_recv_without_invocation_raises(self):
        eng = make_engine()
        eng.send(0, 1, t_ready=0)
        with pytest.raises(DyserError, match="no pending invocation"):
            eng.recv(0, t_try=0)

    def test_send_to_unused_port_raises(self):
        eng = make_engine()
        with pytest.raises(DyserError, match="does not use"):
            eng.send(7, 1, t_ready=0)

    def test_recv_from_undriven_port_raises(self):
        eng = make_engine()
        with pytest.raises(DyserError, match="does not drive"):
            eng.recv(5, t_try=0)

    def test_quiesce_rejects_inflight_inputs(self):
        eng = make_engine()
        eng.send(0, 1, t_ready=0)
        with pytest.raises(DyserError, match="still pending"):
            eng.quiesce()

    def test_quiesce_rejects_unread_outputs(self):
        eng = make_engine()
        eng.send(0, 1, t_ready=0)
        eng.send(1, 1, t_ready=0)
        with pytest.raises(DyserError, match="unread"):
            eng.quiesce()

    def test_quiesce_after_drain(self):
        eng = make_engine()
        eng.send(0, 1, t_ready=0)
        eng.send(1, 1, t_ready=0)
        eng.recv(0, t_try=0)
        eng.quiesce()
        assert eng.invocations == 0


class TestConfigCache:
    def test_miss_then_hit(self):
        cc = ConfigCache(ConfigCacheParams(capacity=2,
                                           load_words_per_cycle=2.0,
                                           hit_switch_cycles=2))
        miss_cycles, hit = cc.load_cycles(1, 100)
        assert not hit and miss_cycles == 50
        hit_cycles, hit = cc.load_cycles(1, 100)
        assert hit and hit_cycles == 2

    def test_capacity_zero_never_hits(self):
        cc = ConfigCache(ConfigCacheParams(capacity=0))
        cc.load_cycles(1, 10)
        _c, hit = cc.load_cycles(1, 10)
        assert not hit

    def test_lru_eviction(self):
        cc = ConfigCache(ConfigCacheParams(capacity=2))
        cc.load_cycles(1, 10)
        cc.load_cycles(2, 10)
        cc.load_cycles(3, 10)   # evicts 1
        _c, hit = cc.load_cycles(1, 10)
        assert not hit
        _c, hit = cc.load_cycles(3, 10)
        assert hit


class TestDyserDevice:
    def make_device(self) -> DyserDevice:
        dev = DyserDevice(fabric=Fabric(FabricGeometry(4, 4)))
        dev.register_config(make_config(0))
        dfg2 = Dfg("mul")
        n = dfg2.add_node(FuOp.MUL, [PortRef(0), PortRef(1)])
        dfg2.set_output(0, n)
        dev.register_config(make_config(1, dfg2))
        return dev

    def test_init_and_execute(self):
        dev = self.make_device()
        ready = dev.init_config(0, t=0)
        assert ready > 0       # cold load takes time
        dev.send(0, 2, ready)
        dev.send(1, 3, ready)
        value, _t = dev.recv(0, ready)
        assert value == 5

    def test_unregistered_config_raises(self):
        dev = self.make_device()
        with pytest.raises(DyserError, match="unregistered"):
            dev.init_config(42, t=0)

    def test_reinit_same_config_is_free(self):
        dev = self.make_device()
        ready = dev.init_config(0, t=0)
        assert dev.init_config(0, t=ready + 5) == ready + 5

    def test_switch_waits_for_drain(self):
        dev = self.make_device()
        ready = dev.init_config(0, t=0)
        dev.send(0, 1, ready)
        dev.send(1, 1, ready)
        _v, done = dev.recv(0, ready)
        ready2 = dev.init_config(1, t=ready)
        assert ready2 >= done

    def test_config_cache_hit_on_return(self):
        dev = self.make_device()
        r0 = dev.init_config(0, 0)
        r1 = dev.init_config(1, r0)
        cold_cost = r1 - r0
        r2 = dev.init_config(0, r1)   # should hit the config cache
        assert r2 - r1 < cold_cost

    def test_send_without_config_raises(self):
        dev = self.make_device()
        with pytest.raises(DyserError, match="no configuration"):
            dev.send(0, 1, 0)

    def test_stats_accumulate(self):
        dev = self.make_device()
        ready = dev.init_config(0, 0)
        dev.send(0, 1, ready)
        dev.send(1, 1, ready)
        dev.recv(0, ready)
        stats = dev.finalize()
        assert stats.invocations == 1
        assert stats.values_sent == 2
        assert stats.values_received == 1
        assert stats.config_loads == 1

    def test_duplicate_config_id_rejected(self):
        dev = self.make_device()
        with pytest.raises(DyserError, match="duplicate"):
            dev.register_config(make_config(0))


def single_input_dfg() -> Dfg:
    """One input port, one output — the shape dldv streams into."""
    dfg = Dfg("scale")
    n = dfg.add_node(FuOp.MUL, [PortRef(0), ConstRef(3)])
    dfg.set_output(0, n)
    return dfg


class TestSteadyState:
    def test_analytic_matches_saturated_engine(self):
        """At saturation the event-driven engine fires exactly on the
        analytic interval, and the last output lands at makespan(n)."""
        for ii in (1, 2, 5):
            eng = make_engine(depth=64, ii=ii)
            ss = eng.steady_state()
            assert ss.interval == ii
            n = 16
            for i in range(n):
                eng.send(0, i, t_ready=0)
                eng.send(1, 1, t_ready=0)
            assert eng.fire_times == [i * ss.interval for i in range(n)]
            last_ready = max(eng.recv(0, t_try=0)[1] for _ in range(n))
            assert last_ready == ss.makespan(n)

    def test_throughput_and_edges(self):
        eng = make_engine(ii=4)
        ss = eng.steady_state()
        assert ss.throughput == 0.25
        assert ss.makespan(0) == 0
        assert ss.makespan(1) == ss.latency

    def test_device_steady_state_requires_config(self):
        params = DyserTimingParams()
        dev = DyserDevice(fabric=Fabric(FabricGeometry(4, 4)),
                          timing=params)
        dev.register_config(make_config(0))
        with pytest.raises(DyserError):
            dev.steady_state()
        dev.init_config(0, 0)
        assert dev.steady_state().interval == 1


class TestSendStream:
    def _drain(self, eng, count):
        return [eng.recv(0, t_try=0) for _ in range(count)]

    def test_stream_is_cycle_exact_with_per_send_path(self):
        values = [float(v) for v in range(40)]
        arrivals = [2 * i for i in range(40)]
        for depth, ii in ((1, 1), (2, 3), (4, 1), (8, 2)):
            a = make_engine(depth=depth, ii=ii, dfg=single_input_dfg())
            b = make_engine(depth=depth, ii=ii, dfg=single_input_dfg())
            slow_total = 0
            for v, t in zip(values, arrivals):
                done = a.send(0, v, t)
                if done > t:
                    slow_total += done - t
            fast_total = b.send_stream(0, values, arrivals)
            assert a.fire_times == b.fire_times
            assert slow_total == fast_total
            assert self._drain(a, 40) == self._drain(b, 40)

    def test_stream_with_backpressure(self):
        """All values arrive at once: the stream path must reproduce
        the FIFO-full stalls of the per-send path."""
        values = list(range(20))
        arrivals = [0] * 20
        a = make_engine(depth=2, ii=3, dfg=single_input_dfg())
        b = make_engine(depth=2, ii=3, dfg=single_input_dfg())
        slow_total = 0
        for v, t in zip(values, arrivals):
            done = a.send(0, v, t)
            slow_total += max(0, done - t)
        fast_total = b.send_stream(0, values, arrivals)
        assert slow_total == fast_total > 0
        assert a.fire_times == b.fire_times
        assert self._drain(a, 20) == self._drain(b, 20)

    def test_stream_falls_back_on_multi_port_configs(self):
        eng = make_engine()   # two input ports
        eng.send(1, 5, t_ready=0)
        total = eng.send_stream(0, [1, 2], [0, 1])
        assert eng.invocations == 1   # second value still waits on port 1
        assert total >= 0
