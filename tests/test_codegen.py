"""Tests for the code generator: immediate peepholes, branch layout,
prologue, spill code, and DySER instruction lowering."""

import pytest

from repro.compiler import compile_dyser, compile_scalar
from repro.cpu import Core, Memory
from repro.isa import Opcode


def ops_of(program):
    return [i.op for i in program.instructions]


class TestPeepholes:
    def test_add_const_becomes_addi(self):
        result = compile_scalar(
            "kernel f(out int y[], int a) { y[0] = a + 5; }")
        ops = ops_of(result.program)
        assert Opcode.ADDI in ops
        # No LI materialization of the 5 needed.
        li_values = [i.imm for i in result.program
                     if i.op is Opcode.LI]
        assert 5 not in li_values

    def test_sub_const_becomes_addi_negative(self):
        result = compile_scalar(
            "kernel f(out int y[], int a) { y[0] = a - 3; }")
        addis = [i for i in result.program if i.op is Opcode.ADDI]
        assert any(i.imm == -3 for i in addis)

    def test_commuted_const_folds_into_imm_form(self):
        result = compile_scalar(
            "kernel f(out int y[], int a) { y[0] = 7 * a; }")
        assert Opcode.MULI in ops_of(result.program)

    def test_shift_for_addressing(self):
        result = compile_scalar(
            "kernel f(out int y[], int a[], int i) { y[0] = a[i]; }")
        assert Opcode.SLLI in ops_of(result.program)

    def test_float_constant_materialized_with_fli(self):
        result = compile_scalar(
            "kernel f(out float y[], float a) { y[0] = a * 2.5; }")
        flis = [i for i in result.program if i.op is Opcode.FLI]
        assert any(i.imm == 2.5 for i in flis)


class TestBranchLayout:
    SRC = """
    kernel f(out int y[], int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + i; }
        y[0] = s;
    }
    """

    def test_loop_has_single_conditional_branch(self):
        result = compile_scalar(self.SRC)
        ops = ops_of(result.program)
        conditional = [o for o in ops if o in (Opcode.BEQ, Opcode.BNE)]
        assert len(conditional) == 1

    def test_fallthrough_avoids_redundant_jumps(self):
        result = compile_scalar(self.SRC)
        ops = ops_of(result.program)
        # One back-edge jump; no jump-to-next-instruction.
        for idx, insn in enumerate(result.program.instructions):
            if insn.op is Opcode.J:
                assert insn.target_index != idx + 1

    def test_every_block_label_resolvable(self):
        result = compile_scalar(self.SRC)
        result.program.validate()


class TestSpillCode:
    def make_pressure(self, n=30):
        decls = "\n".join(
            f"float v{i} = x[{i}] * {i + 1}.0;" for i in range(n))
        uses = " + ".join(f"v{i}" for i in range(n))
        return (f"kernel p(out float y[], float x[]) {{ {decls} "
                f"y[0] = {uses}; }}")

    def test_spill_slots_addressed_off_r28(self):
        result = compile_scalar(self.make_pressure())
        assert result.program.spill_words > 0
        spill_stores = [
            i for i in result.program
            if i.op in (Opcode.FST, Opcode.ST) and i.rs1 == 28
        ]
        spill_loads = [
            i for i in result.program
            if i.op in (Opcode.FLD, Opcode.LD) and i.rs1 == 28
        ]
        assert spill_stores and spill_loads

    def test_spill_offsets_within_reserved_area(self):
        result = compile_scalar(self.make_pressure())
        limit = result.program.spill_words * 8
        for insn in result.program:
            if insn.op in (Opcode.FST, Opcode.ST, Opcode.FLD, Opcode.LD) \
                    and insn.rs1 == 28:
                assert 0 <= insn.imm < limit

    def test_core_reserves_spill_area(self):
        result = compile_scalar(self.make_pressure())
        memory = Memory(1 << 20)
        import numpy as np

        py = memory.alloc(1)
        px = memory.alloc_numpy(np.ones(30))
        core = Core(result.program, memory)
        core.set_args((py, px))
        core.run()
        assert core.iregs.read(28) > 0


class TestDyserLowering:
    SRC = """
    kernel f(out float y[], float a[], float b[], int n) {
        for (int i = 0; i < n; i = i + 1) { y[i] = a[i] * b[i] + 1.0; }
    }
    """

    def test_dinit_before_loop_body(self):
        result = compile_dyser(self.SRC)
        ops = ops_of(result.program)
        dinit_at = ops.index(Opcode.DINIT)
        first_transfer = min(
            i for i, o in enumerate(ops)
            if o in (Opcode.DFLDW, Opcode.DFLD, Opcode.DFSEND))
        assert dinit_at < first_transfer

    def test_wide_ops_carry_counts(self):
        result = compile_dyser(self.SRC)
        wide = [i for i in result.program if i.op is Opcode.DFLDW]
        assert wide and all(i.imm > 1 for i in wide)

    def test_no_scalar_fp_compute_left_in_loop(self):
        result = compile_dyser(self.SRC)
        # The unrolled main loop must contain no FMUL/FADD — only the
        # remainder loop keeps scalar FP code.
        listing = result.program.listing()
        main_loop = listing.split(".remh")[0].split(".hyper")[-1]
        assert "fmul" not in main_loop
        assert "fadd" not in main_loop
