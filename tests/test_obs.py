"""Tests for the observability layer (repro.obs).

Covers: the zero-cost-when-off contract (no stream allocated, simulated
cycles unchanged), the event stream's ring buffer and category filter,
span nesting, the metrics registry's name-uniqueness rules, Chrome
trace_event export schema, and the per-invocation attribution table.
"""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro import (
    EventStream,
    MetricsRegistry,
    ProfileReport,
    RunConfig,
    TraceOptions,
    profile_workload,
    run_workload,
    to_chrome_trace,
    trace_workload,
    write_chrome_trace,
)
from repro.obs.events import COMPLETE, COUNTER, CYCLES, INSTANT, WALL, maybe_span
from repro.obs.metrics import MetricError
from repro.obs.timeline import invocation_rows, invocation_table, phase_table


# ---------------------------------------------------------------------
# EventStream mechanics
# ---------------------------------------------------------------------


class TestEventStream:
    def test_complete_instant_counter(self):
        s = EventStream()
        s.complete("stall", "cpu.stall", ts=10, dur=3, pc=4)
        s.instant("redirect", "cpu.branch", ts=12)
        s.counter("occupancy", "dyser", ts=13, value=7)
        assert len(s) == 3
        phases = [e.phase for e in s]
        assert phases == [COMPLETE, INSTANT, COUNTER]
        assert s.events[0].args == {"pc": 4}
        assert s.events[2].args["value"] == 7
        assert s.events[0].domain == CYCLES

    def test_ring_buffer_drops_oldest_and_counts(self):
        s = EventStream(capacity=4)
        for i in range(10):
            s.instant(f"e{i}", "cpu", ts=i)
        assert len(s) == 4
        assert s.dropped == 6
        assert [e.name for e in s] == ["e6", "e7", "e8", "e9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventStream(capacity=0)

    def test_category_filter_is_prefix_based(self):
        s = EventStream(categories=("cpu.stall", "dyser"))
        assert s.wants("cpu.stall")
        assert s.wants("dyser.port")
        assert not s.wants("cpu")          # parent of a filter, not child
        assert not s.wants("compiler")
        s.instant("kept", "dyser.invoke", ts=0)
        s.instant("filtered", "compiler", ts=0)
        assert [e.name for e in s] == ["kept"]

    def test_span_nesting_records_both_and_merges_extra(self):
        s = EventStream()
        with s.span("outer", "compiler", mode="dyser") as info:
            with s.span("inner", "compiler.pass") as inner:
                inner["ir_size"] = 11
            info["regions"] = 2
        # Inner span exits (and records) first.
        assert [e.name for e in s] == ["inner", "outer"]
        inner_ev, outer_ev = s.events
        assert inner_ev.args == {"ir_size": 11}
        assert outer_ev.args == {"mode": "dyser", "regions": 2}
        assert all(e.domain == WALL for e in s)
        # The inner span lies within the outer one on the wall clock.
        assert outer_ev.ts <= inner_ev.ts
        assert inner_ev.ts + inner_ev.dur <= outer_ev.ts + outer_ev.dur + 1.0

    def test_maybe_span_is_a_noop_without_a_stream(self):
        with maybe_span(None, "phase", "compiler") as extra:
            extra["anything"] = 1  # must not raise
        s = EventStream()
        with maybe_span(s, "phase", "compiler") as extra:
            extra["n"] = 3
        assert s.events[0].args == {"n": 3}

    def test_queries(self):
        s = EventStream()
        s.instant("a", "cpu.stall", ts=0)
        s.instant("b", "cpu", ts=1)
        s.instant("a", "dyser", ts=2)
        assert [e.category for e in s.by_category("cpu")] == \
            ["cpu.stall", "cpu"]
        assert len(s.named("a")) == 2


class TestTraceOptions:
    def test_default_is_off_and_allocates_nothing(self):
        opts = TraceOptions()
        assert not opts.enabled
        assert opts.stream() is None

    def test_enabled_stream_carries_capacity_and_filter(self):
        opts = TraceOptions(enabled=True, capacity=16,
                            categories=("cpu",))
        s = opts.stream()
        assert s is not None and s.capacity == 16
        assert s.wants("cpu.stall") and not s.wants("dyser")

    def test_round_trips_through_dict(self):
        opts = TraceOptions(enabled=True, capacity=99,
                            categories=("cpu", "dyser"), instructions=True)
        assert TraceOptions.from_dict(opts.to_dict()) == opts


# ---------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------


class TestMetricsRegistry:
    def test_names_are_unique_same_type_returns_existing(self):
        reg = MetricsRegistry()
        c1 = reg.counter("dyser.config.stall_cycles")
        c2 = reg.counter("dyser.config.stall_cycles")
        assert c1 is c2
        assert reg.names() == ["dyser.config.stall_cycles"]

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        with pytest.raises(MetricError):
            reg.histogram("x")

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(5)
        with pytest.raises(MetricError):
            c.inc(-1)
        assert reg.value("c") == 5

    def test_histogram_le_bucket_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1, 2, 4))
        for v in (1, 2, 3, 100):
            h.observe(v)
        # counts: <=1, <=2, <=4, overflow
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4 and h.min == 1 and h.max == 100
        assert h.mean == pytest.approx(106 / 4)

    def test_round_trips_through_dict(self):
        reg = MetricsRegistry()
        reg.counter("a", help="a counter").inc(3)
        reg.gauge("b").set(2.5)
        reg.histogram("c", buckets=(1, 2)).observe(2)
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()
        assert clone.value("a") == 3
        assert clone.get("c").counts == reg.get("c").counts

    def test_format_is_sorted_and_total(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(2)
        lines = reg.format().splitlines()
        assert lines[0].startswith("a") and lines[1].startswith("z")

    def test_prometheus_exposition_schema(self):
        reg = MetricsRegistry()
        reg.counter("svc.requests", help="served").inc(3)
        reg.gauge("svc.depth").set(2)
        h = reg.histogram("svc.lat", buckets=(1, 4))
        for v in (0.5, 2, 9):
            h.observe(v)
        text = reg.to_prometheus(prefix="repro")
        assert "# TYPE repro_svc_requests_total counter" in text
        assert "repro_svc_requests_total 3" in text
        assert "# TYPE repro_svc_depth gauge" in text
        # Cumulative le buckets plus +Inf == count.
        assert 'repro_svc_lat_bucket{le="1"} 1' in text
        assert 'repro_svc_lat_bucket{le="4"} 2' in text
        assert 'repro_svc_lat_bucket{le="+Inf"} 3' in text
        assert "repro_svc_lat_count 3" in text

    def test_registry_survives_pickling_with_fresh_lock(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(7)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.value("a") == 7
        clone.counter("b").inc()          # the regrown lock works
        assert clone.names() == ["a", "b"]

    def test_concurrent_updates_never_tear_a_scrape(self):
        """Regression: scraping a registry while writer threads update
        their instruments and register new ones must neither raise
        (``dict changed size``) nor emit a histogram whose bucket sum
        disagrees with its count.

        The contract is one writer per instrument (updates are
        lock-free), any number of concurrent scrapers and registrars.
        """
        reg = MetricsRegistry()
        stop = threading.Event()
        failures: list[str] = []
        writers = 4

        def writer(tid: int) -> None:
            hot = reg.counter(f"hot.{tid}")
            hist = reg.histogram(f"lat.{tid}", buckets=(1, 2, 4, 8))
            i = 0
            while not stop.is_set():
                hot.inc()
                hist.observe(i % 10)
                reg.counter(f"dyn.{tid}.{i % 50}").inc()
                i += 1

        def scraper() -> None:
            while not stop.is_set():
                try:
                    for name, entry in reg.to_dict().items():
                        if entry["kind"] == "histogram" \
                                and sum(entry["counts"]) != entry["count"]:
                            failures.append(f"torn histogram {name}")
                            return
                    reg.to_prometheus()
                    reg.format()
                    reg.names()
                except Exception as exc:  # noqa: BLE001 - recorded
                    failures.append(f"{type(exc).__name__}: {exc}")
                    return

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(writers)]
        threads += [threading.Thread(target=scraper) for _ in range(2)]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert failures == []
        # Quiesced: every per-writer histogram's tear-safe snapshot
        # matches its exact totals, and its writer's counter agrees.
        for tid in range(writers):
            hist = reg.get(f"lat.{tid}")
            entry = hist.to_dict()
            assert sum(entry["counts"]) == entry["count"] == hist.count
            assert reg.value(f"hot.{tid}") == hist.count
            assert hist.count > 0


# ---------------------------------------------------------------------
# Zero-cost-when-off: tracing must not change simulated behaviour
# ---------------------------------------------------------------------


class TestTracingIsPureObservation:
    @pytest.mark.parametrize("mode", ["scalar", "dyser"])
    def test_events_off_means_no_stream(self, mode):
        result = run_workload(RunConfig(workload="saxpy", mode=mode,
                                        scale="tiny"))
        assert result.events is None

    @pytest.mark.parametrize("mode", ["scalar", "dyser"])
    def test_traced_run_matches_untraced_cycles(self, mode):
        plain = run_workload(RunConfig(workload="saxpy", mode=mode,
                                       scale="tiny"))
        traced = trace_workload("saxpy", mode=mode, scale="tiny")
        assert traced.events is not None and len(traced.events) > 0
        assert traced.cycles == plain.cycles
        assert traced.correct and plain.correct
        assert traced.stats.to_dict()["stall_cycles"] == \
            plain.stats.to_dict()["stall_cycles"]

    def test_trace_workload_rejects_kwargs_with_config(self):
        with pytest.raises(TypeError):
            trace_workload(RunConfig(workload="saxpy"), scale="tiny")


# ---------------------------------------------------------------------
# Timeline export
# ---------------------------------------------------------------------


def _valid_trace_event(entry: dict) -> bool:
    if not {"name", "ph", "pid", "tid"} <= set(entry):
        return False
    if entry["ph"] == "M":
        return "name" in entry["args"]
    if "ts" not in entry or "cat" not in entry:
        return False
    if entry["ph"] == "X":
        return "dur" in entry and entry["dur"] >= 0
    if entry["ph"] == "i":
        return entry.get("s") in ("t", "p", "g")
    if entry["ph"] == "C":
        return isinstance(entry.get("args"), dict)
    return False


class TestChromeTrace:
    def test_export_schema_validates(self, tmp_path):
        traced = trace_workload("mm", scale="tiny")
        path = write_chrome_trace(traced.events, tmp_path / "trace.json",
                                  metadata={"workload": "mm"})
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert all(_valid_trace_event(e) for e in doc["traceEvents"])
        assert doc["otherData"]["workload"] == "mm"
        # Both clock domains present, on distinct synthetic processes.
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}
        # JSON is self-contained: a re-dump parses identically.
        assert json.loads(json.dumps(doc)) == doc

    def test_wall_events_rebased_to_zero(self):
        s = EventStream()
        s.complete("a", "compiler", ts=5_000_000.0, dur=10, domain=WALL)
        s.complete("b", "compiler", ts=5_000_500.0, dur=10, domain=WALL)
        doc = to_chrome_trace(s)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["ts"] for e in xs] == [0.0, 500.0]

    def test_dropped_events_reported(self):
        s = EventStream(capacity=1)
        s.instant("a", "cpu", ts=0)
        s.instant("b", "cpu", ts=1)
        doc = to_chrome_trace(s)
        assert doc["otherData"]["dropped_events"] == 1


class TestAttributionTables:
    def test_invocation_rows_bin_stalls_between_fires(self):
        s = EventStream()
        s.complete("branch", "cpu.stall", ts=4, dur=4)
        s.complete("invocation", "dyser.invoke", ts=10, dur=6,
                   config=0, index=0)
        s.complete("dyser_config", "cpu.stall", ts=12, dur=8)
        s.complete("invocation", "dyser.invoke", ts=30, dur=6,
                   config=0, index=1)
        rows = invocation_rows(s)
        assert len(rows) == 2
        assert rows[0]["stalls"] == {"branch": 4}
        assert rows[0]["gap"] == 10
        assert rows[1]["stalls"] == {"dyser_config": 8}
        assert rows[1]["gap"] == 20

    def test_invocation_table_on_real_run(self):
        traced = trace_workload("saxpy", scale="tiny")
        text = invocation_table(traced.events)
        assert "per-invocation cycle attribution" in text
        assert "fire@" in text

    def test_invocation_table_empty_for_scalar(self):
        traced = trace_workload("saxpy", mode="scalar", scale="tiny")
        assert "no DySER invocations" in invocation_table(traced.events)

    def test_phase_table_lists_compiler_passes(self):
        traced = trace_workload("saxpy", scale="tiny")
        text = phase_table(traced.events)
        for phase in ("parse", "lower", "optimize", "codegen"):
            assert phase in text


# ---------------------------------------------------------------------
# profile_workload / ProfileReport
# ---------------------------------------------------------------------


class TestProfileReport:
    def test_summary_and_export(self, tmp_path):
        report = profile_workload("saxpy", scale="tiny")
        assert isinstance(report, ProfileReport)
        text = report.summary()
        assert "profile saxpy" in text and "OK" in text
        assert "events recorded" in text
        path = report.export(tmp_path / "out" / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["workload"] == "saxpy"

    def test_profile_accepts_trace_options(self):
        report = profile_workload(
            "saxpy", scale="tiny",
            trace=TraceOptions(capacity=64, categories=("cpu.stall",)))
        assert report.events.capacity == 64
        assert all(e.category == "cpu.stall" for e in report.events)

    def test_dyser_metrics_registered_uniquely(self):
        traced = trace_workload("saxpy", scale="tiny")
        metrics = traced.stats.metrics
        names = metrics.names()
        assert len(names) == len(set(names))
        assert "dyser.config.stall_cycles" in names
