"""Tests for the sharded gateway and the v2 job surface (ISSUE 9).

Covers: consistent-hash ring determinism and minimal-disruption
rebalancing, the JSONL job journal (replay, torn tails, compaction),
per-tenant admission (allowlist, token bucket, inflight quota), the
normalized v2 error envelope, the durable ``/v2/jobs`` lifecycle
(submit / poll / results / cancel / list), worker-kill eviction with
byte-identical re-dispatch, journal replay across a gateway restart,
and the deprecated :class:`~repro.service.ServiceClient` shims.

Like ``test_service.py``, every daemon runs in-process on an ephemeral
port; tests needing deterministic timing inject a canned or gated
engine worker so nothing depends on real simulation latency.
"""

from __future__ import annotations

import json
import threading
import time
import warnings

import pytest

from repro import RunConfig, run_workload
from repro.engine import ArtifactCache, result_to_dict
from repro.service import (
    Client,
    GatewayThread,
    HashRing,
    JobRecord,
    JobStore,
    ServiceClient,
    ServiceError,
    ServiceThread,
    TenancyController,
    TenantQuota,
    controller_from_config,
)
from repro.service import protocol as P
from repro.service.gateway import _GatewayServiceThread


SPEC = {"workload": "vecadd", "mode": "dyser", "scale": "tiny"}
SWEEP = {"workloads": ["vecadd"], "modes": ["dyser", "scalar"],
         "base": {"scale": "tiny"}}


@pytest.fixture(scope="module")
def canned_payload():
    """One real run summary, reused by injected workers (fast tests)."""
    return result_to_dict(run_workload(RunConfig(**SPEC)))


def _canned_worker(payload):
    def worker(spec, cache=None):
        return dict(payload)
    return worker


class GatedWorker:
    """Blocks the next call after each :meth:`arm` until released."""

    def __init__(self, payload: dict):
        self.payload = payload
        self.release = threading.Event()
        self.started = threading.Event()
        self._lock = threading.Lock()
        self._armed = 0

    def arm(self):
        with self._lock:
            self._armed += 1
        self.release.clear()
        self.started.clear()

    def __call__(self, spec, cache=None):
        blocked = False
        with self._lock:
            if self._armed:
                self._armed -= 1
                blocked = True
        if blocked:
            self.started.set()
            assert self.release.wait(timeout=30), "gate never released"
        return dict(self.payload)


def _poll(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


# ---------------------------------------------------------------------
# Consistent-hash ring (pure)
# ---------------------------------------------------------------------


class TestHashRing:
    NODES = ["10.0.0.1:9001", "10.0.0.2:9001", "10.0.0.3:9001"]
    KEYS = [f"job-{i:04d}" for i in range(200)]

    def test_mapping_is_deterministic(self):
        a = HashRing(self.NODES)
        b = HashRing(list(reversed(self.NODES)))
        assert [a.node_for(k) for k in self.KEYS] \
            == [b.node_for(k) for k in self.KEYS]

    def test_every_node_owns_some_keys(self):
        ring = HashRing(self.NODES)
        owners = {ring.node_for(k) for k in self.KEYS}
        assert owners == set(self.NODES)

    def test_preference_starts_at_owner_and_covers_all(self):
        ring = HashRing(self.NODES)
        for key in self.KEYS[:20]:
            pref = ring.preference(key)
            assert pref[0] == ring.node_for(key)
            assert sorted(pref) == sorted(self.NODES)
            assert len(set(pref)) == len(pref)

    def test_removal_only_remaps_the_dead_nodes_keys(self):
        ring = HashRing(self.NODES)
        before = {k: ring.node_for(k) for k in self.KEYS}
        dead = self.NODES[1]
        ring.remove(dead)
        for key, owner in before.items():
            if owner != dead:
                assert ring.node_for(key) == owner
            else:
                assert ring.node_for(key) != dead

    def test_readding_restores_the_original_mapping(self):
        ring = HashRing(self.NODES)
        before = {k: ring.node_for(k) for k in self.KEYS}
        ring.remove(self.NODES[0])
        ring.add(self.NODES[0])
        assert {k: ring.node_for(k) for k in self.KEYS} == before


# ---------------------------------------------------------------------
# Job journal (pure, tmp_path)
# ---------------------------------------------------------------------


def _record(job_id="j-test-0001", state=P.JOB_QUEUED) -> JobRecord:
    return JobRecord(job_id=job_id, tenant="anonymous",
                     kind=P.JOB_KIND_SWEEP,
                     spec_payloads=[{"workload": "vecadd"},
                                    {"workload": "saxpy"}],
                     state=state)


class TestJobStore:
    def test_round_trips_across_reopen(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        record = _record()
        store.create(record)
        store.record_result(record, 0, {"ok": True, "status": "hit"})
        store.finish(record, P.JOB_SUCCEEDED)
        store.close()

        reopened = JobStore(path)
        back = reopened.jobs[record.job_id]
        assert back.state == P.JOB_SUCCEEDED
        assert back.results[0] == {"ok": True, "status": "hit"}
        assert back.results[1] is None
        assert back.done == 1 and back.total == 2
        reopened.close()

    def test_running_jobs_replay_as_queued(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        record = _record()
        store.create(record)
        store.mark_running(record)
        store.close()

        reopened = JobStore(path)
        assert reopened.jobs[record.job_id].state == P.JOB_QUEUED
        reopened.close()

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.create(_record())
        store.close()
        with path.open("a") as fh:
            fh.write('{"event": "finish", "id": "j-test-0001", "sta')

        reopened = JobStore(path)
        assert reopened.jobs["j-test-0001"].state == P.JOB_QUEUED
        reopened.close()

    def test_compaction_snapshots_one_line_per_job(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        for i in range(3):
            record = _record(job_id=f"j-test-{i:04d}")
            store.create(record)
            store.mark_running(record)
            store.record_result(record, 0, {"ok": True})
            store.finish(record, P.JOB_SUCCEEDED)
        store.compact()
        assert len(path.read_text().splitlines()) == 3

        reopened = JobStore(path)
        assert all(r.state == P.JOB_SUCCEEDED
                   for r in reopened.jobs.values())
        reopened.close()

    def test_in_memory_store_never_touches_disk(self, tmp_path):
        store = JobStore(None)
        record = _record()
        store.create(record)
        store.finish(record, P.JOB_FAILED, error="boom")
        assert store.jobs[record.job_id].error == "boom"
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------
# Tenancy (pure, injected clock)
# ---------------------------------------------------------------------


class TestTenancy:
    def test_allowlist_denies_unknown_tenants(self):
        ctl = TenancyController(allowed={"alice"})
        assert ctl.admit("alice").allowed
        verdict = ctl.admit("bob")
        assert not verdict.allowed
        assert verdict.status == P.STATUS_DENIED

    def test_inflight_quota_throttles_then_releases(self):
        ctl = TenancyController(
            quotas={"ci": TenantQuota(max_inflight=1)})
        assert ctl.admit("ci").allowed
        verdict = ctl.admit("ci")
        assert not verdict.allowed
        assert verdict.status == P.STATUS_THROTTLED
        assert verdict.retry_after_s > 0
        ctl.release("ci", served=True)
        assert ctl.admit("ci").allowed
        assert ctl.stats()["served"] == {"ci": 1}

    def test_token_bucket_refills_with_the_clock(self):
        now = [0.0]
        ctl = TenancyController(
            default=TenantQuota(rate_per_s=1.0, burst=1),
            clock=lambda: now[0])
        assert ctl.admit("t").allowed
        ctl.release("t")
        verdict = ctl.admit("t")
        assert not verdict.allowed
        assert verdict.retry_after_s >= 0.05
        now[0] = 1.1
        assert ctl.admit("t").allowed

    def test_config_parsing_and_disabled_default(self):
        assert not TenancyController().enabled
        assert not controller_from_config(None).enabled
        ctl = controller_from_config({
            "default": {"rate_per_s": 50, "burst": 20},
            "tenants": {"ci": {"max_inflight": 2}},
            "allowed": ["ci", "bench"]})
        assert ctl.enabled
        assert ctl.quota_for("ci").max_inflight == 2
        assert ctl.quota_for("bench").rate_per_s == 50


# ---------------------------------------------------------------------
# v2 error envelope (protocol + HTTP shape)
# ---------------------------------------------------------------------


class TestErrorEnvelope:
    def test_error_object_always_carries_all_fields(self):
        err = P.error_object(P.ERR_THROTTLED, "busy",
                             retry_after_s=0.51234)
        assert set(err) == {"code", "message", "diagnostics",
                            "retry_after_s"}
        assert err["retry_after_s"] == 0.512

    def test_error_envelope_maps_codes_to_http(self):
        status, body = P.error_envelope(P.ERR_NOT_FOUND, "nope")
        assert status == 404
        assert body["protocol"] == P.PROTOCOL_V2
        assert body["ok"] is False
        assert body["error"]["code"] == P.ERR_NOT_FOUND

    def test_http_status_covers_v1_and_denied(self):
        for verdict, code in P.HTTP_STATUS.items():
            assert P.http_status(verdict) == code
        assert P.http_status(P.STATUS_DENIED) == 403

    def test_unknown_job_is_v2_not_found(self, canned_payload):
        with ServiceThread(cache=None,
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0) as client:
                status, body = client.request(
                    "GET", "/v2/jobs/j-missing-0000")
        assert status == 404
        assert body["protocol"] == P.PROTOCOL_V2
        assert body["error"]["code"] == P.ERR_NOT_FOUND

    def test_ambiguous_submission_is_v2_bad_request(self, canned_payload):
        with ServiceThread(cache=None,
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0) as client:
                status, body = client.request(
                    "POST", "/v2/jobs",
                    {"spec": SPEC, "sweep": SWEEP})
        assert status == 400
        assert body["error"]["code"] == P.ERR_BAD_REQUEST


# ---------------------------------------------------------------------
# Durable jobs on a single daemon
# ---------------------------------------------------------------------


class TestV2Jobs:
    def test_run_job_lifecycle_and_result_bytes(self, canned_payload,
                                                tmp_path):
        with ServiceThread(cache=None,
                           journal=tmp_path / "jobs.jsonl",
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0) as client:
                handle = client.submit(SPEC, label="one-run")
                assert handle.submitted.state == P.JOB_QUEUED
                final = handle.wait(timeout=30, results=True)
        assert final.succeeded
        assert final.label == "one-run"
        assert final.done == final.total == 1
        assert _canonical(final.results[0]["result"]) \
            == _canonical(canned_payload)

        # The journal survives the daemon: replay shows the same job.
        store = JobStore(tmp_path / "jobs.jsonl")
        assert store.jobs[final.id].state == P.JOB_SUCCEEDED
        store.close()

    def test_sweep_job_expands_and_completes(self, canned_payload):
        with ServiceThread(cache=None,
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0) as client:
                final = client.submit(sweep=SWEEP, wait=True,
                                      wait_timeout=30)
                listed = client.jobs(state=P.JOB_SUCCEEDED)
        assert final.succeeded
        assert final.kind == P.JOB_KIND_SWEEP
        assert final.done == final.total == 2
        assert [s.id for s in listed] == [final.id]

    def test_cancel_stops_a_blocked_job(self, canned_payload):
        worker = GatedWorker(canned_payload)
        with ServiceThread(cache=None, batch_max=1,
                           batch_window_s=0.0, worker=worker) as srv:
            with Client(port=srv.port, retries=0) as client:
                worker.arm()
                handle = client.submit(sweep=SWEEP)
                assert worker.started.wait(timeout=10)
                cancelled = client.cancel(handle)
                worker.release.set()
                final = client.wait(handle, timeout=30)
        assert cancelled.state in (P.JOB_QUEUED, P.JOB_RUNNING,
                                   P.JOB_CANCELLED)
        assert final.state == P.JOB_CANCELLED
        assert final.done < final.total


# ---------------------------------------------------------------------
# Tenancy over HTTP
# ---------------------------------------------------------------------


class TestTenancyOverHttp:
    def test_denied_tenant_gets_403_with_detail(self, canned_payload):
        tenancy = TenancyController(allowed={"alice"})
        with ServiceThread(cache=None, tenancy=tenancy,
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0,
                        tenant="mallory") as client:
                reply = client.execute(SPEC, raise_on_error=False)
                assert reply["status"] == P.STATUS_DENIED
                assert reply["error_detail"]["code"] \
                    == P.ERR_TENANT_DENIED
            with Client(port=srv.port, retries=0,
                        tenant="alice") as client:
                ok = client.execute(SPEC)
        assert ok["status"] == P.STATUS_EXECUTED

    def test_rate_limited_tenant_gets_429_retry_after(self,
                                                      canned_payload):
        tenancy = TenancyController(
            quotas={"greedy": TenantQuota(rate_per_s=0.001, burst=1)})
        with ServiceThread(cache=None, tenancy=tenancy,
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0,
                        tenant="greedy") as client:
                first = client.execute(SPEC)
                assert first["status"] == P.STATUS_EXECUTED
                status, headers, data = client._send_once(
                    "POST", "/v1/run",
                    json.dumps({"spec": SPEC}).encode())
        assert status == 429
        payload = json.loads(data)
        assert payload["status"] == P.STATUS_THROTTLED
        retry_after = {k.lower(): v for k, v in headers.items()} \
            .get("retry-after")
        assert retry_after and float(retry_after) > 0

    def test_v2_submission_rejected_with_envelope(self, canned_payload):
        tenancy = TenancyController(allowed={"alice"})
        with ServiceThread(cache=None, tenancy=tenancy,
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0,
                        tenant="mallory") as client:
                status, body = client.request("POST", "/v2/jobs",
                                              {"spec": SPEC})
        assert status == 403
        assert body["protocol"] == P.PROTOCOL_V2
        assert body["error"]["code"] == P.ERR_TENANT_DENIED


# ---------------------------------------------------------------------
# The gateway fleet
# ---------------------------------------------------------------------


@pytest.fixture()
def fleet(canned_payload, tmp_path):
    with GatewayThread(
            n_workers=2,
            worker_kwargs={"cache": None, "batch_max": 1,
                           "batch_window_s": 0.0,
                           "worker": _canned_worker(canned_payload)},
            cache=None, journal=tmp_path / "gw-jobs.jsonl",
            health_interval_s=0.2) as gw:
        yield gw


class TestGateway:
    def test_health_names_the_fleet(self, fleet):
        with Client(port=fleet.port, retries=0) as client:
            health = client.health()
        assert health["ready"]
        assert health["ring_size"] == 2
        assert sorted(w["addr"] for w in health["workers"]) \
            == sorted(fleet.worker_addrs())

    def test_run_forwards_and_matches_direct_bytes(self, fleet,
                                                   canned_payload):
        with Client(port=fleet.port, retries=0) as client:
            reply = client.execute(SPEC)
        assert reply["ok"]
        assert _canonical(reply["result"]) == _canonical(canned_payload)

    def test_sweep_aggregates_across_shards(self, fleet):
        with Client(port=fleet.port, retries=1) as client:
            status, body = client.request("POST", "/v1/sweep",
                                          dict(SWEEP))
        assert status == 200 and body["ok"]
        assert body["counts"]["executed"] == 2
        assert len(body["jobs"]) == 2

    def test_gateway_metrics_exposition(self, fleet):
        with Client(port=fleet.port, retries=0) as client:
            client.execute(SPEC)
            text = client.metrics_text()
        assert "repro_service_gateway_forwarded_total" in text
        assert "repro_service_gateway_workers_live 2" in text

    def test_v2_job_through_the_gateway(self, fleet, canned_payload):
        with Client(port=fleet.port, retries=0) as client:
            final = client.submit(sweep=SWEEP, wait=True,
                                  wait_timeout=30)
            with_results = client.job(final.id, results=True)
        assert final.succeeded
        assert all(_canonical(r["result"]) == _canonical(canned_payload)
                   for r in with_results.results)


class TestGatewayFailover:
    def test_worker_kill_evicts_and_redispatches(self, canned_payload,
                                                 tmp_path):
        worker = GatedWorker(canned_payload)
        with GatewayThread(
                n_workers=2,
                worker_kwargs={"cache": None, "batch_max": 1,
                               "batch_window_s": 0.0, "worker": worker},
                cache=None, journal=tmp_path / "gw.jsonl",
                health_interval_s=0.2) as gw:
            client = Client(port=gw.port, retries=0, timeout=30)
            probes = [Client(port=w.port, retries=0, timeout=5)
                      for w in gw.workers]
            worker.arm()
            handle = client.submit(SPEC)
            assert worker.started.wait(timeout=10)

            def busy():
                alive = []
                for i, probe in enumerate(probes):
                    try:
                        if probe.health().get("inflight", 0) > 0:
                            alive.append(i)
                    except ServiceError:
                        pass
                return alive

            assert _poll(lambda: len(busy()) == 1)
            gw.kill_worker(busy()[0])
            worker.release.set()
            final = client.wait(handle, timeout=30, results=True)
            assert final.succeeded
            assert _canonical(final.results[0]["result"]) \
                == _canonical(canned_payload)
            assert _poll(
                lambda: client.health().get("ring_size") == 1)
            client.close()
            for probe in probes:
                probe.close()

    def test_journal_replay_across_gateway_restart(self, canned_payload,
                                                   tmp_path):
        journal = tmp_path / "gw.jsonl"
        worker = GatedWorker(canned_payload)
        with GatewayThread(
                n_workers=1,
                worker_kwargs={"cache": None, "batch_max": 1,
                               "batch_window_s": 0.0, "worker": worker},
                cache=None, journal=journal,
                health_interval_s=0.2) as gw:
            client = Client(port=gw.port, retries=0, timeout=30)
            worker.arm()
            handle = client.submit(sweep=SWEEP)
            assert worker.started.wait(timeout=10)
            gw.gateway.kill()       # crash, no drain: journal keeps it
            client.close()
            worker.release.set()

            reborn = _GatewayServiceThread(
                workers=gw.worker_addrs(), cache=None,
                journal=journal, health_interval_s=0.2)
            reborn.start()
            try:
                with Client(port=reborn.port, retries=0,
                            timeout=30) as client2:
                    final = client2.wait(handle.id, timeout=30,
                                         results=True)
                    assert final.succeeded
                    assert final.done == final.total == 2
            finally:
                reborn.shutdown(timeout=30)
            gw.gateway = None       # already dead; skip its drain


# ---------------------------------------------------------------------
# Deprecated client shims
# ---------------------------------------------------------------------


class TestDeprecatedShims:
    def test_run_shim_warns_and_still_answers(self, canned_payload):
        with ServiceThread(cache=None,
                           worker=_canned_worker(canned_payload)) as srv:
            with ServiceClient(port=srv.port, retries=0) as client:
                with pytest.warns(DeprecationWarning,
                                  match="Client.execute"):
                    reply = client.run(SPEC)
        assert reply["status"] == P.STATUS_EXECUTED

    def test_sweep_shim_warns_and_still_answers(self, canned_payload):
        with ServiceThread(cache=None,
                           worker=_canned_worker(canned_payload)) as srv:
            with ServiceClient(port=srv.port, retries=0) as client:
                with pytest.warns(DeprecationWarning):
                    reply = client.sweep(["vecadd"],
                                         modes=["dyser", "scalar"],
                                         base={"scale": "tiny"})
        assert reply["counts"]["executed"] == 2

    def test_new_surface_is_warning_free(self, canned_payload):
        with ServiceThread(cache=None,
                           worker=_canned_worker(canned_payload)) as srv:
            with Client(port=srv.port, retries=0) as client:
                with warnings.catch_warnings():
                    warnings.simplefilter("error", DeprecationWarning)
                    client.execute(SPEC)
                    client.submit(SPEC, wait=True, wait_timeout=30)


# ---------------------------------------------------------------------
# Shared-cache fallback at the gateway
# ---------------------------------------------------------------------


class TestSharedCacheFallback:
    def test_gateway_cache_short_circuits_dead_fleet(self,
                                                     canned_payload,
                                                     tmp_path):
        """A result in the shared cache answers even with no worker."""
        cache = ArtifactCache(tmp_path / "shared")
        with GatewayThread(
                n_workers=1,
                worker_kwargs={"cache": None,
                               "worker": _canned_worker(canned_payload)},
                cache=cache, journal=None,
                health_interval_s=0.2) as gw:
            with Client(port=gw.port, retries=0, timeout=30) as client:
                first = client.execute(SPEC)
                assert first["status"] == P.STATUS_EXECUTED
                gw.kill_worker(0)
                warm = client.execute(SPEC)
        assert warm["status"] == P.STATUS_HIT
        assert _canonical(warm["result"]) == _canonical(canned_payload)
