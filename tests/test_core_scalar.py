"""Tests for the host core: functional correctness and timing behaviour."""

import pytest

from repro.cpu import Core, CoreConfig, Memory, StallCause
from repro.errors import SimulationError
from repro.isa import assemble


def run(source, memory=None, int_args=(), fp_args=(), config=None):
    memory = memory or Memory(1 << 16)
    core = Core(assemble(source), memory, config=config)
    core.set_args(int_args, fp_args)
    stats = core.run()
    return core, stats


class TestFunctional:
    def test_arithmetic(self):
        core, _ = run("""
            li  r1, 7
            li  r2, 3
            add r3, r1, r2
            sub r4, r1, r2
            mul r5, r1, r2
            div r6, r1, r2
            rem r7, r1, r2
            halt
        """)
        r = core.iregs.read
        assert (r(3), r(4), r(5), r(6), r(7)) == (10, 4, 21, 2, 1)

    def test_negative_division_truncates(self):
        core, _ = run("""
            li  r1, -7
            li  r2, 3
            div r3, r1, r2
            rem r4, r1, r2
            halt
        """)
        assert core.iregs.read(3) == -2
        assert core.iregs.read(4) == -1

    def test_logic_and_shifts(self):
        core, _ = run("""
            li   r1, 12
            li   r2, 10
            and  r3, r1, r2
            or   r4, r1, r2
            xor  r5, r1, r2
            slli r6, r1, 2
            srai r7, r1, 2
            halt
        """)
        r = core.iregs.read
        assert (r(3), r(4), r(5), r(6), r(7)) == (8, 14, 6, 48, 3)

    def test_compare_and_select(self):
        core, _ = run("""
            li  r1, 5
            li  r2, 9
            slt r3, r1, r2
            seq r4, r1, r2
            sel r5, r3, r1, r2
            sel r6, r4, r1, r2
            min r7, r1, r2
            max r8, r1, r2
            halt
        """)
        r = core.iregs.read
        assert (r(3), r(4), r(5), r(6), r(7), r(8)) == (1, 0, 5, 9, 5, 9)

    def test_fp_ops(self):
        core, _ = run("""
            fli   f1, 2.0
            fli   f2, 8.0
            fadd  f3, f1, f2
            fmul  f4, f1, f2
            fdiv  f5, f2, f1
            fsqrt f6, f2
            flt   r1, f1, f2
            fsel  f7, r1, f1, f2
            halt
        """)
        f = core.fregs.read
        assert f(3) == 10.0
        assert f(4) == 16.0
        assert f(5) == 4.0
        assert f(6) == pytest.approx(2.8284271247461903)
        assert core.iregs.read(1) == 1
        assert f(7) == 2.0

    def test_conversions(self):
        core, _ = run("""
            li  r1, 3
            i2f f1, r1
            fli f2, 2.75
            f2i r2, f2
            halt
        """)
        assert core.fregs.read(1) == 3.0
        assert core.iregs.read(2) == 2

    def test_loads_and_stores(self):
        mem = Memory(1 << 16)
        addr = mem.alloc_array([11, 22, 33])
        core, _ = run(f"""
            li r1, {addr}
            ld r2, r1, 8
            addi r2, r2, 1
            st r2, r1, 16
            halt
        """, memory=mem)
        assert mem.load_word(addr + 16) == 23

    def test_fp_memory(self):
        mem = Memory(1 << 16)
        addr = mem.alloc_array([1.5, 0.0])
        run(f"""
            li  r1, {addr}
            fld f1, r1, 0
            fadd f1, f1, f1
            fst f1, r1, 8
            halt
        """, memory=mem)
        assert mem.load_word(addr + 8) == 3.0

    def test_loop_sums_array(self):
        mem = Memory(1 << 16)
        addr = mem.alloc_array(list(range(1, 11)))
        core, _ = run(f"""
            li  r1, {addr}
            li  r2, {addr + 80}
            li  r3, 0
        loop:
            ld  r4, r1, 0
            add r3, r3, r4
            addi r1, r1, 8
            blt r1, r2, loop
            halt
        """, memory=mem)
        assert core.iregs.read(3) == 55

    def test_branch_variants(self):
        core, _ = run("""
            li r1, 5
            li r2, 5
            li r10, 0
            beq r1, r2, t1
            j end
        t1:
            addi r10, r10, 1
            bge r1, r2, t2
            j end
        t2:
            addi r10, r10, 1
            bgt r1, r2, bad
            ble r1, r2, t3
        bad:
            j end
        t3:
            addi r10, r10, 1
        end:
            halt
        """)
        assert core.iregs.read(10) == 3

    def test_kernel_arguments(self):
        core, _ = run("""
            add r1, r8, r9
            fadd f1, f8, f9
            halt
        """, int_args=(4, 5), fp_args=(0.5, 0.25))
        assert core.iregs.read(1) == 9
        assert core.fregs.read(1) == 0.75

    def test_runaway_guard(self):
        cfg = CoreConfig(max_instructions=100)
        with pytest.raises(SimulationError, match="instruction limit"):
            run("loop:\nj loop\nhalt", config=cfg)

    def test_fall_off_end(self):
        mem = Memory(1 << 16)
        program = assemble("nop\nhalt")
        # Mutate to remove halt's effect by branching past it.
        with pytest.raises(SimulationError):
            core = Core(assemble("j skip\nhalt\nskip:\nnop\nhalt"), mem)
            program2 = core.program
            del program2.instructions[-1]
            core.run()


class TestTiming:
    def test_straightline_alu_is_one_ipc(self):
        _, stats = run("\n".join(["addi r1, r1, 1"] * 50 + ["halt"]))
        # 51 instructions, no hazards beyond 1-cycle ALU bypass: every
        # non-issue cycle must be an I$ cold-miss bubble.
        assert stats.instructions == 51
        assert stats.cycles == 51 + stats.stall_cycles.get(
            StallCause.FETCH_MISS, 0)
        assert stats.stall_cycles.get(StallCause.DATA_HAZARD, 0) == 0

    def test_mul_latency_creates_hazard(self):
        spacer = "nop\n" * 10
        _, fast = run(f"li r1, 3\nmul r2, r1, r1\n{spacer}add r3, r2, r2\nhalt")
        _, slow = run("li r1, 3\nmul r2, r1, r1\nadd r3, r2, r2\nhalt")
        assert slow.stall_cycles.get(StallCause.DATA_HAZARD, 0) > 0
        assert fast.stall_cycles.get(StallCause.DATA_HAZARD, 0) == 0

    def test_taken_branch_penalty(self):
        cfg = CoreConfig(branch_taken_penalty=3)
        _, taken = run("li r1, 1\nli r2, 1\nbeq r1, r2, end\nend:\nhalt",
                       config=cfg)
        _, untaken = run("li r1, 1\nli r2, 2\nbeq r1, r2, end\nend:\nhalt",
                         config=cfg)
        assert taken.cycles == untaken.cycles + 3
        assert taken.stall_cycles[StallCause.BRANCH] == 3

    def test_load_miss_exposed_on_use(self):
        mem = Memory(1 << 16)
        addr = mem.alloc_array([1.0])
        src = f"""
            li  r1, {addr}
            fld f1, r1, 0
            fadd f2, f1, f1
            halt
        """
        _, stats = run(src, memory=mem)
        assert stats.stall_cycles.get(StallCause.LOAD_MISS, 0) > 0

    def test_load_hit_after_warm(self):
        mem = Memory(1 << 16)
        addr = mem.alloc_array([1.0, 2.0])
        src = f"""
            li  r1, {addr}
            fld f1, r1, 0
            fld f2, r1, 8
            fadd f3, f2, f2
            halt
        """
        _, stats = run(src, memory=mem)
        # Second load hits the same line: its consumer sees no miss stall
        # beyond the first load's fill.
        assert stats.dcache_hits >= 1

    def test_unpipelined_fpu_structural_stall(self):
        src = "fli f1, 1.0\nfli f2, 2.0\n" + \
              "fadd f3, f1, f2\nfadd f4, f1, f2\nfadd f5, f1, f2\nhalt"
        _, unpiped = run(src, config=CoreConfig(fpu_pipelined=False))
        _, piped = run(src, config=CoreConfig(fpu_pipelined=True))
        assert unpiped.cycles > piped.cycles
        assert unpiped.stall_cycles.get(StallCause.STRUCTURAL_FPU, 0) > 0
        assert piped.stall_cycles.get(StallCause.STRUCTURAL_FPU, 0) == 0

    def test_cycle_accounting_closes(self):
        mem = Memory(1 << 16)
        addr = mem.alloc_array(list(range(64)))
        src = f"""
            li  r1, {addr}
            li  r2, {addr + 512}
            li  r3, 0
        loop:
            ld  r4, r1, 0
            mul r4, r4, r4
            add r3, r3, r4
            addi r1, r1, 8
            blt r1, r2, loop
            halt
        """
        _, stats = run(src, memory=mem)
        assert stats.issue_cycles == stats.instructions
        assert stats.cycles == stats.instructions + stats.total_stalls

    def test_ipc_below_one(self):
        _, stats = run("li r1, 2\nmul r2, r1, r1\nmul r3, r2, r2\nhalt")
        assert stats.ipc < 1.0
