"""Tokenizer for the kernel language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import LexerError

KEYWORDS = frozenset({
    "kernel", "int", "float", "for", "while", "if", "else", "out",
    "break", "continue",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class TokKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind.value}({self.text!r})@{self.line}:{self.column}"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<newline>\n)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>""" + "|".join(re.escape(o) for o in _OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> list[Token]:
    """Turn ``source`` into a token list ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexerError(
                f"unexpected character {source[pos]!r}",
                line, pos - line_start + 1,
            )
        kind = match.lastgroup
        text = match.group()
        column = pos - line_start + 1
        if kind == "newline":
            line += 1
            line_start = match.end()
        elif kind == "comment":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + text.rfind("\n") + 1
        elif kind == "ws":
            pass
        elif kind == "float":
            tokens.append(Token(TokKind.FLOAT, text, line, column))
        elif kind == "int":
            tokens.append(Token(TokKind.INT, text, line, column))
        elif kind == "ident":
            tok_kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(tok_kind, text, line, column))
        else:  # op
            tokens.append(Token(TokKind.OP, text, line, column))
        pos = match.end()
    tokens.append(Token(TokKind.EOF, "", line, pos - line_start + 1))
    return tokens
