"""IR -> host ISA code generation.

Input is phi-lowered (non-SSA) IR plus an :class:`Allocation`.  The
emitter handles:

- FuOp -> Opcode mapping (1:1 by construction — the co-design invariant);
- immediate-form peepholes (``addi``/``slli``/... where the pattern fits);
- constant materialization and spill reload/store through scratch regs;
- block layout with fallthrough-aware branch emission;
- the DySER pseudo-instructions from :mod:`repro.compiler.dyser_ir`.
"""

from __future__ import annotations

from repro.compiler import dyser_ir as dir_
from repro.compiler.ir import (
    Block,
    Compute,
    CondBr,
    Const,
    Copy,
    Function,
    Jump,
    Load,
    Operand,
    Ret,
    Store,
    Value,
)
from repro.compiler.regalloc import (
    ALLOCATABLE_FP,
    ALLOCATABLE_INT,
    SPILL_BASE_REG,
    Allocation,
    allocate,
    lower_phis,
)
from repro.compiler.types import Scalar
from repro.dyser.ops import FuOp
from repro.errors import CompilerError
from repro.isa.instruction import ARG_FP_REGS, ARG_INT_REGS, Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

#: FuOp -> Opcode, valid because the ISA names compute ops identically.
_FU_TO_OP = {fu: Opcode(fu.value) for fu in FuOp}

#: Int compute ops with an immediate form, FuOp -> immediate Opcode.
_IMM_FORMS = {
    FuOp.ADD: Opcode.ADDI, FuOp.MUL: Opcode.MULI, FuOp.AND: Opcode.ANDI,
    FuOp.OR: Opcode.ORI, FuOp.XOR: Opcode.XORI, FuOp.SLL: Opcode.SLLI,
    FuOp.SRL: Opcode.SRLI, FuOp.SRA: Opcode.SRAI, FuOp.SLT: Opcode.SLTI,
}

_SCRATCH = {Scalar.INT: [29, 30, 31], Scalar.FLOAT: [29, 30, 31]}


class Emitter:
    """Emits one function into a :class:`Program`."""

    def __init__(self, func: Function, alloc: Allocation) -> None:
        self.func = func
        self.alloc = alloc
        self.program = Program(name=func.name)
        self.program.spill_words = alloc.spill_words
        self._scratch_used: list[int] = []

    # -- operand access ----------------------------------------------------

    def _take_scratch(self, scalar: Scalar) -> int:
        for reg in _SCRATCH[scalar]:
            if reg not in self._scratch_used:
                self._scratch_used.append(reg)
                return reg
        raise CompilerError("out of scratch registers")  # pragma: no cover

    def _release_scratch(self) -> None:
        self._scratch_used.clear()

    def read_operand(self, op: Operand) -> int:
        """Return a register holding ``op``, emitting reload/materialize
        code as needed."""
        if isinstance(op, Const):
            reg = self._take_scratch(op.scalar)
            if op.scalar is Scalar.FLOAT:
                self.emit(Opcode.FLI, rd=reg, imm=float(op.value))
            else:
                self.emit(Opcode.LI, rd=reg, imm=int(op.value))
            return reg
        kind, index = self.alloc.location(op)
        if kind == "reg":
            return index
        reg = self._take_scratch(op.scalar)
        load_op = Opcode.FLD if op.scalar is Scalar.FLOAT else Opcode.LD
        self.emit(load_op, rd=reg, rs1=SPILL_BASE_REG, imm=index * 8)
        return reg

    def write_reg(self, value: Value) -> int:
        """Register to compute ``value`` into (scratch when spilled)."""
        kind, index = self.alloc.location(value)
        if kind == "reg":
            return index
        return self._take_scratch(value.scalar)

    def finish_write(self, value: Value, reg: int) -> None:
        """Store to the spill slot when ``value`` lives in memory."""
        kind, index = self.alloc.location(value)
        if kind == "spill":
            store_op = (Opcode.FST if value.scalar is Scalar.FLOAT
                        else Opcode.ST)
            self.emit(store_op, rs2=reg, rs1=SPILL_BASE_REG, imm=index * 8)

    def emit(self, op: Opcode, **fields) -> None:
        self.program.add(Instruction(op, **fields))

    # -- instruction emission ------------------------------------------------

    def emit_compute(self, instr: Compute) -> None:
        op = instr.op
        args = list(instr.args)
        # Immediate peephole for int two-operand forms.
        if op in _IMM_FORMS:
            if (isinstance(args[0], Const)
                    and FuOp is not None and op in (
                        FuOp.ADD, FuOp.MUL, FuOp.AND, FuOp.OR, FuOp.XOR)):
                args = [args[1], args[0]]
            if isinstance(args[1], Const) and not isinstance(args[0], Const):
                a = self.read_operand(args[0])
                rd = self.write_reg(instr.result)
                self.emit(_IMM_FORMS[op], rd=rd, rs1=a,
                          imm=int(args[1].value))
                self.finish_write(instr.result, rd)
                self._release_scratch()
                return
        if op is FuOp.SUB and isinstance(args[1], Const):
            a = self.read_operand(args[0])
            rd = self.write_reg(instr.result)
            self.emit(Opcode.ADDI, rd=rd, rs1=a, imm=-int(args[1].value))
            self.finish_write(instr.result, rd)
            self._release_scratch()
            return
        regs = [self.read_operand(a) for a in args]
        rd = self.write_reg(instr.result)
        machine_op = _FU_TO_OP[op]
        if len(regs) == 1:
            self.emit(machine_op, rd=rd, rs1=regs[0])
        elif len(regs) == 2:
            self.emit(machine_op, rd=rd, rs1=regs[0], rs2=regs[1])
        else:
            self.emit(machine_op, rd=rd, rs1=regs[0], rs2=regs[1],
                      rs3=regs[2])
        self.finish_write(instr.result, rd)
        self._release_scratch()

    def emit_load(self, instr: Load) -> None:
        addr = self.read_operand(instr.addr)
        rd = self.write_reg(instr.result)
        op = (Opcode.FLD if instr.result.scalar is Scalar.FLOAT
              else Opcode.LD)
        self.emit(op, rd=rd, rs1=addr, imm=0)
        self.finish_write(instr.result, rd)
        self._release_scratch()

    def emit_store(self, instr: Store) -> None:
        addr = self.read_operand(instr.addr)
        value = self.read_operand(instr.value)
        op = (Opcode.FST if instr.value.scalar is Scalar.FLOAT
              else Opcode.ST)
        self.emit(op, rs2=value, rs1=addr, imm=0)
        self._release_scratch()

    def emit_copy(self, instr: Copy) -> None:
        src = instr.src
        if isinstance(src, Const):
            rd = self.write_reg(instr.result)
            if instr.result.scalar is Scalar.FLOAT:
                self.emit(Opcode.FLI, rd=rd, imm=float(src.value))
            else:
                self.emit(Opcode.LI, rd=rd, imm=int(src.value))
        else:
            reg = self.read_operand(src)
            rd = self.write_reg(instr.result)
            if reg != rd or self.alloc.location(instr.result)[0] == "spill":
                op = (Opcode.FMOV if instr.result.scalar is Scalar.FLOAT
                      else Opcode.MOV)
                if reg != rd:
                    self.emit(op, rd=rd, rs1=reg)
        self.finish_write(instr.result, rd)
        self._release_scratch()

    def emit_dyser(self, instr) -> None:
        if isinstance(instr, dir_.DyserInit):
            self.emit(Opcode.DINIT, imm=instr.config_id)
        elif isinstance(instr, dir_.DyserSend):
            fp = instr.value.scalar is Scalar.FLOAT
            reg = self.read_operand(instr.value)
            self.emit(Opcode.DFSEND if fp else Opcode.DSEND,
                      port=instr.port, rs1=reg)
        elif isinstance(instr, dir_.DyserRecv):
            fp = instr.result.scalar is Scalar.FLOAT
            rd = self.write_reg(instr.result)
            self.emit(Opcode.DFRECV if fp else Opcode.DRECV,
                      rd=rd, port=instr.port)
            self.finish_write(instr.result, rd)
        elif isinstance(instr, dir_.DyserLoad):
            addr = self.read_operand(instr.addr)
            if instr.count == 1:
                op = Opcode.DFLD if instr.fp else Opcode.DLD
                self.emit(op, port=instr.port, rs1=addr, imm=0)
            elif instr.wide:
                op = Opcode.DFLDW if instr.fp else Opcode.DLDW
                self.emit(op, port=instr.port, rs1=addr, imm=instr.count)
            else:
                op = Opcode.DFLDV if instr.fp else Opcode.DLDV
                self.emit(op, port=instr.port, rs1=addr, imm=instr.count)
        elif isinstance(instr, dir_.DyserStore):
            addr = self.read_operand(instr.addr)
            if instr.count == 1:
                op = Opcode.DFST if instr.fp else Opcode.DST
                self.emit(op, port=instr.port, rs1=addr, imm=0)
            elif instr.wide:
                op = Opcode.DFSTW if instr.fp else Opcode.DSTW
                self.emit(op, port=instr.port, rs1=addr, imm=instr.count)
            else:
                op = Opcode.DFSTV if instr.fp else Opcode.DSTV
                self.emit(op, port=instr.port, rs1=addr, imm=instr.count)
        else:  # pragma: no cover
            raise CompilerError(f"unknown DySER instr {instr!r}")
        self._release_scratch()

    # -- function emission ---------------------------------------------------------

    def emit_prologue(self) -> None:
        """Copy argument registers into the allocated homes."""
        int_args = iter(ARG_INT_REGS)
        fp_args = iter(ARG_FP_REGS)
        for param in self.func.params:
            src = next(int_args) if (
                param.is_array or param.scalar is Scalar.INT
            ) else next(fp_args)
            if param.value not in self.alloc.regs \
                    and param.value not in self.alloc.spills:
                continue  # unused parameter
            kind, index = self.alloc.location(param.value)
            fp = (not param.is_array) and param.scalar is Scalar.FLOAT
            if kind == "reg":
                if index != src:
                    self.emit(Opcode.FMOV if fp else Opcode.MOV,
                              rd=index, rs1=src)
            else:
                self.emit(Opcode.FST if fp else Opcode.ST,
                          rs2=src, rs1=SPILL_BASE_REG, imm=index * 8)

    def emit_function(self) -> Program:
        layout = [b for b in self.func.block_order()
                  if b.name in self.func.blocks]
        self.emit_prologue()
        next_block = {
            layout[i].name: layout[i + 1].name if i + 1 < len(layout)
            else None
            for i in range(len(layout))
        }
        for block in layout:
            self.program.add_label(f"{self.func.name}.{block.name}")
            if block.phis:
                raise CompilerError(
                    f"block {block.name} still has phis at emission")
            for instr in block.instrs:
                self.emit_instr(instr)
            self.emit_terminator(block, next_block[block.name])
        self.program.link()
        return self.program

    def emit_instr(self, instr) -> None:
        if isinstance(instr, Compute):
            self.emit_compute(instr)
        elif isinstance(instr, Load):
            self.emit_load(instr)
        elif isinstance(instr, Store):
            self.emit_store(instr)
        elif isinstance(instr, Copy):
            self.emit_copy(instr)
        elif isinstance(instr, dir_.DYSER_INSTRS):
            self.emit_dyser(instr)
        else:  # pragma: no cover
            raise CompilerError(f"cannot emit {instr!r}")

    def emit_terminator(self, block: Block, fallthrough: str | None) -> None:
        term = block.terminator
        label = lambda name: f"{self.func.name}.{name}"  # noqa: E731
        if isinstance(term, Ret):
            self.emit(Opcode.HALT)
        elif isinstance(term, Jump):
            if term.target != fallthrough:
                self.emit(Opcode.J, target=label(term.target))
        elif isinstance(term, CondBr):
            cond = self.read_operand(term.cond)
            if term.if_false == fallthrough:
                self.emit(Opcode.BNE, rs1=cond, rs2=0,
                          target=label(term.if_true))
            elif term.if_true == fallthrough:
                self.emit(Opcode.BEQ, rs1=cond, rs2=0,
                          target=label(term.if_false))
            else:
                self.emit(Opcode.BNE, rs1=cond, rs2=0,
                          target=label(term.if_true))
                self.emit(Opcode.J, target=label(term.if_false))
            self._release_scratch()
        else:  # pragma: no cover
            raise CompilerError(f"bad terminator {term!r}")


def generate(func: Function) -> Program:
    """Lower phis, allocate registers, and emit ``func`` as a Program."""
    lower_phis(func)
    alloc = allocate(func)
    return Emitter(func, alloc).emit_function()
