"""Affine value analysis.

Expresses integer IR values as affine combinations ``sum(coeff_i * base_i)
+ constant`` of opaque base values.  Used to:

- recognize induction updates (``i = i + c``) for unrolling;
- prove two addresses differ by a known constant, which is what the
  transfer vectorizer needs to merge unrolled loads/stores into wide
  (cache-line) port transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Block, Compute, Const, Operand, Value
from repro.compiler.types import Scalar
from repro.dyser.ops import FuOp


@dataclass(frozen=True)
class Affine:
    """``sum(terms[v] * v) + offset`` with Values as opaque bases."""

    terms: tuple[tuple[Value, int], ...] = ()
    offset: int = 0

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), value)

    @staticmethod
    def of(value: Value) -> "Affine":
        return Affine(((value, 1),), 0)

    def _as_dict(self) -> dict[Value, int]:
        return dict(self.terms)

    @staticmethod
    def _from_dict(d: dict[Value, int], offset: int) -> "Affine":
        items = tuple(sorted(
            ((v, c) for v, c in d.items() if c != 0),
            key=lambda vc: vc[0].id))
        return Affine(items, offset)

    def add(self, other: "Affine") -> "Affine":
        d = self._as_dict()
        for v, c in other.terms:
            d[v] = d.get(v, 0) + c
        return self._from_dict(d, self.offset + other.offset)

    def sub(self, other: "Affine") -> "Affine":
        return self.add(other.scale(-1))

    def scale(self, k: int) -> "Affine":
        return self._from_dict(
            {v: c * k for v, c in self.terms}, self.offset * k)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def difference(self, other: "Affine") -> int | None:
        """Return self - other when it is a compile-time constant."""
        delta = self.sub(other)
        return delta.offset if delta.is_constant else None


class AffineAnalysis:
    """Computes affine forms for the int values defined in one block,
    given optional seed forms for values defined elsewhere (e.g. the
    unroller seeds the induction variable's clones)."""

    def __init__(self, seeds: dict[Value, Affine] | None = None) -> None:
        self.forms: dict[Value, Affine] = dict(seeds or {})

    def form_of(self, op: Operand) -> Affine:
        if isinstance(op, Const):
            if op.scalar is Scalar.INT:
                return Affine.constant(int(op.value))
            return Affine.of(_FLOAT_SENTINEL)
        return self.forms.get(op, Affine.of(op))

    def visit_block(self, block: Block) -> None:
        for instr in block.instrs:
            if not isinstance(instr, Compute):
                continue
            if instr.result is None or instr.result.scalar is not Scalar.INT:
                continue
            form = self._eval(instr)
            if form is not None:
                self.forms[instr.result] = form

    def visit_function(self, func) -> None:
        """Visit every block in reverse postorder.

        Needed when LICM has hoisted address arithmetic out of the block
        under analysis — a body-only view would treat those hoisted
        values as opaque and lose no-alias facts.
        """
        for block in func.block_order():
            self.visit_block(block)

    def _eval(self, instr: Compute) -> Affine | None:
        a = self.form_of(instr.args[0])
        b = self.form_of(instr.args[1]) if len(instr.args) > 1 else None
        op = instr.op
        if op is FuOp.ADD:
            return a.add(b)
        if op is FuOp.SUB:
            return a.sub(b)
        if op is FuOp.MUL:
            if b.is_constant:
                return a.scale(b.offset)
            if a.is_constant:
                return b.scale(a.offset)
            return None
        if op is FuOp.SLL and b is not None and b.is_constant \
                and 0 <= b.offset < 63:
            return a.scale(1 << b.offset)
        return None


#: Placeholder base so float-typed operands never look affine.
_FLOAT_SENTINEL = Value(-1, Scalar.FLOAT, "nonaffine")


def induction_step(block_forms: AffineAnalysis, phi_value: Value,
                   latch_value: Operand) -> int | None:
    """If ``latch_value == phi_value + c``, return c, else None."""
    if not isinstance(latch_value, Value):
        return None
    latch_form = block_forms.forms.get(latch_value)
    if latch_form is None:
        return None
    return latch_form.difference(Affine.of(phi_value))
