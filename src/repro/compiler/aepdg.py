"""Access/execute partitioning (the AEPDG of the DySER compiler).

Given an if-converted (and possibly unrolled) loop body, this pass:

1. computes the *access slice* — memory operations, the address
   arithmetic feeding them, and anything else that must stay on the host;
2. computes the *execute slice* — the pure-compute subgraph, which
   becomes the DySER DFG;
3. discovers the interface: loads feeding only the execute slice become
   direct memory-to-port transfers; access values consumed by the slice
   become sends; slice values consumed by the access side become
   receives, or direct port-to-memory stores when a store is the only
   consumer;
4. vectorizes: unrolled lanes whose load/store addresses are provably
   consecutive (affine analysis) merge into wide cache-line transfers on
   adjacent ports;
5. spatially schedules the DFG onto the fabric;
6. rewrites the body block into {address+loads+sends | receives |
   stores+uses}, the ordering the fabric's FIFO protocol requires.

Every infeasibility is a :class:`RegionRejected` with a reason code so
the E1/E7 experiments can report *why* regions fall back to scalar code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.affine import Affine, AffineAnalysis
from repro.compiler.dyser_ir import (
    DyserInit,
    DyserLoad,
    DyserRecv,
    DyserSend,
    DyserStore,
)
from repro.compiler.ir import (
    Block,
    Compute,
    Const,
    Function,
    Instr,
    Load,
    Operand,
    Store,
    Value,
)
from repro.compiler.schedule import schedule
from repro.compiler.types import Scalar
from repro.compiler.unroll import LoopInfo
from repro.dyser.config import DyserConfig
from repro.dyser.dfg import ConstRef, Dfg, NodeRef, PortRef
from repro.dyser.fabric import Fabric
from repro.errors import RegionRejected

#: Widest single transfer (one cache line of 8-byte words).
MAX_WIDE = 8


@dataclass
class Partition:
    """Result of offloading one region."""

    config: DyserConfig
    execute_ops: int
    input_ports: int
    output_ports: int
    vectorized: bool


def offload_body(func: Function, info: LoopInfo, fabric: Fabric,
                 config_id: int, min_ops: int = 2,
                 max_ops: int | None = None,
                 vectorize: bool = True,
                 reassociate: bool = True) -> Partition:
    """Partition and rewrite the loop body in place."""
    body = func.blocks[info.body]
    instrs = list(body.instrs)
    defs_in_body: dict[Value, Instr] = {
        i.result: i for i in instrs if i.result is not None
    }

    # ---- 1. access closure from addresses --------------------------------
    # Roots: memory addresses, plus loop control — induction updates stay
    # on the host core (they drive addresses and the loop branch).
    access_values: set[Value] = set()
    stack = [
        i.addr for i in instrs if isinstance(i, (Load, Store))
        and isinstance(i.addr, Value)
    ]
    for phi in info.inductions:
        latch = info.carried[phi]
        if isinstance(latch, Value):
            stack.append(latch)
    while stack:
        v = stack.pop()
        if v in access_values:
            continue
        access_values.add(v)
        d = defs_in_body.get(v)
        if isinstance(d, Compute):
            stack.extend(u for u in d.uses() if isinstance(u, Value))

    # ---- 2. execute slice --------------------------------------------------
    execute = [
        i for i in instrs
        if isinstance(i, Compute) and i.result not in access_values
    ]
    if len(execute) < min_ops:
        raise RegionRejected(
            f"execute slice too small ({len(execute)} ops)")
    if max_ops is not None and len(execute) > max_ops:
        raise RegionRejected(
            f"execute slice too large ({len(execute)} ops)")
    exec_set = set(execute)
    exec_results = {i.result for i in execute}

    # Use map over the whole function (escapes via header phis matter).
    consumers: dict[Value, list[tuple[str, Instr]]] = {}
    for bname, blk in func.blocks.items():
        for instr in blk.all_instrs():
            for u in instr.uses():
                if isinstance(u, Value):
                    consumers.setdefault(u, []).append((bname, instr))
        term = blk.terminator
        if term is not None:
            for u in term.uses():
                if isinstance(u, Value):
                    consumers.setdefault(u, []).append((bname, term))

    # ---- 3. interface -------------------------------------------------------
    # Inputs: values used by the slice but produced outside it.
    send_values: list[Value] = []
    direct_loads: list[Load] = []
    for instr in execute:
        for u in instr.uses():
            if not isinstance(u, Value) or u in exec_results:
                continue
            d = defs_in_body.get(u)
            if isinstance(d, Load) and all(
                    c in exec_set for _b, c in consumers.get(u, [])):
                if d not in direct_loads:
                    direct_loads.append(d)
            elif u not in send_values:
                send_values.append(u)

    # Redundant-load elimination at the interface: loads with identical
    # affine addresses share one port and one transfer (this is what lets
    # unrolled stencils/convolutions fit the port budget — overlapping
    # taps collapse).
    dedup_analysis = AffineAnalysis()
    dedup_analysis.visit_function(func)
    canonical: dict[tuple, Load] = {}
    load_alias: dict[Value, Value] = {}
    dropped_loads: set[int] = set()
    unique_loads: list[Load] = []
    for load in direct_loads:
        form = dedup_analysis.form_of(load.addr)
        key = (form.terms, form.offset, load.result.scalar)
        rep = canonical.get(key)
        if rep is None:
            canonical[key] = load
            unique_loads.append(load)
        else:
            load_alias[load.result] = rep.result
            dropped_loads.add(id(load))
    direct_loads = unique_loads

    # Outputs: slice values consumed outside the slice.
    recv_values: list[Value] = []
    direct_stores: dict[Value, Store] = {}
    for instr in execute:
        v = instr.result
        outside = [
            (b, c) for b, c in consumers.get(v, []) if c not in exec_set
        ]
        if not outside:
            continue
        # Direct store: the only consumer is a body store's data operand.
        if (len(outside) == 1 and isinstance(outside[0][1], Store)
                and outside[0][0] == info.body
                and outside[0][1].value is v):
            direct_stores[v] = outside[0][1]
        else:
            recv_values.append(v)
    if not recv_values and not direct_stores:
        raise RegionRejected("execute slice has no live outputs")

    # A send value must not itself depend on a slice output (cycle).
    recv_set = set(recv_values)
    tainted = _taint(instrs, exec_set, recv_set | set(direct_stores))
    for v in send_values:
        if v in tainted:
            raise RegionRejected("slice input depends on slice output")
    for load in direct_loads:
        if isinstance(load.addr, Value) and load.addr in tainted:
            raise RegionRejected("load address depends on slice output")
    for instr in instrs:
        if isinstance(instr, Load) and instr not in direct_loads \
                and isinstance(instr.addr, Value) \
                and instr.addr in tainted:
            raise RegionRejected("load address depends on slice output")

    # ---- 4. vector grouping -------------------------------------------------
    load_groups = (_group_transfers(
        func, [(ld, ld.addr) for ld in direct_loads])
        if vectorize else [[ld] for ld in direct_loads])
    store_list = list(direct_stores.values())
    store_groups = (_group_transfers(
        func, [(st, st.addr) for st in store_list])
        if vectorize else [[st] for st in store_list])
    vectorized = any(len(g) > 1 for g in load_groups + store_groups)

    # ---- 5. port assignment ---------------------------------------------------
    # Wide groups need consecutive port numbers (adjacent edge switches);
    # they grow from port 0.  Singleton transfers and scalar sends grow
    # downward from the top so they land on *distant* edge switches —
    # spreading injection points is what keeps big regions routable.
    num_in = fabric.geometry.num_input_ports
    in_port: dict[Value, int] = {}
    load_port: dict[int, int] = {}      # id(load instr) -> first port
    low_in = 0
    high_in = num_in - 1
    for group in load_groups:
        if len(group) > 1:
            load_port[id(group[0])] = low_in
            for k, load in enumerate(group):
                in_port[load.result] = low_in + k
            low_in += len(group)
        else:
            load_port[id(group[0])] = high_in
            in_port[group[0].result] = high_in
            high_in -= 1
    for v in send_values:
        in_port[v] = high_in
        high_in -= 1
    ports_in_use = low_in + (num_in - 1 - high_in)
    if low_in > high_in + 1:
        raise RegionRejected(
            f"needs {ports_in_use} input ports, fabric has {num_in}")

    num_out = fabric.geometry.num_output_ports
    out_port: dict[Value, int] = {}
    store_port: dict[int, int] = {}
    low_out = 0
    high_out = num_out - 1
    for group in store_groups:
        if len(group) > 1:
            store_port[id(group[0])] = low_out
            for k, store in enumerate(group):
                out_port[store.value] = low_out + k
            low_out += len(group)
        else:
            store_port[id(group[0])] = high_out
            out_port[group[0].value] = high_out
            high_out -= 1
    for v in recv_values:
        out_port[v] = high_out
        high_out -= 1
    ports_out_use = low_out + (num_out - 1 - high_out)
    if low_out > high_out + 1:
        raise RegionRejected(
            f"needs {ports_out_use} output ports, fabric has {num_out}")
    next_in, next_out = ports_in_use, ports_out_use

    # ---- 6. DFG construction -----------------------------------------------
    dfg = Dfg(f"{func.name}.r{config_id}")
    node_of: dict[Value, NodeRef] = {}
    for instr in execute:
        inputs = []
        for u in instr.uses():
            if isinstance(u, Const):
                inputs.append(ConstRef(u.value))
                continue
            u = load_alias.get(u, u)
            if u in node_of:
                inputs.append(node_of[u])
            else:
                inputs.append(PortRef(in_port[u]))
        node_of[instr.result] = dfg.add_node(instr.op, inputs)
    for v, port in out_port.items():
        dfg.set_output(port, node_of[v])

    if reassociate:
        from repro.compiler.reassoc import rebalance

        rebalance(dfg)

    # ---- 7. spatial scheduling ---------------------------------------------
    config = schedule(config_id, dfg, fabric)

    # ---- 8. body rewrite -------------------------------------------------------
    _rewrite_body(func, info, body, instrs, exec_set, tainted,
                  direct_loads, load_groups, load_port,
                  store_list, store_groups, store_port,
                  send_values, in_port, recv_values, out_port,
                  config_id, dropped_loads)
    return Partition(
        config=config,
        execute_ops=len(execute),
        input_ports=next_in,
        output_ports=next_out,
        vectorized=vectorized,
    )


def _may_alias(a: Affine, b: Affine, array_bases: set[Value]) -> bool:
    """Conservative alias test under the no-overlapping-arrays rule."""
    diff = a.difference(b)
    if diff is not None:
        return diff == 0
    bases_a = {v for v, _c in a.terms if v in array_bases}
    bases_b = {v for v, _c in b.terms if v in array_bases}
    if len(bases_a) == 1 and len(bases_b) == 1 and bases_a != bases_b:
        return False
    return True


def _taint(instrs: list[Instr], exec_set: set, roots: set[Value]
           ) -> set[Value]:
    """Values (computed on the access side) that depend on slice outputs."""
    tainted = set(roots)
    changed = True
    while changed:
        changed = False
        for instr in instrs:
            if instr in exec_set or instr.result is None:
                continue
            if instr.result in tainted:
                continue
            if any(isinstance(u, Value) and u in tainted
                   for u in instr.uses()):
                tainted.add(instr.result)
                changed = True
    return tainted


def _group_transfers(func: Function, items: list[tuple[Instr, Operand]]
                     ) -> list[list[Instr]]:
    """Group loads/stores whose addresses are affine-consecutive (+8)."""
    if not items:
        return []
    analysis = AffineAnalysis()
    analysis.visit_function(func)
    keyed: list[tuple[Affine, Instr]] = []
    for instr, addr in items:
        keyed.append((analysis.form_of(addr), instr))
    # Bucket by (affine base expression, element type); sort by offset.
    buckets: dict[tuple, list[tuple[int, Instr]]] = {}
    for form, instr in keyed:
        scalar = (instr.result.scalar if isinstance(instr, Load)
                  else instr.value.scalar)
        buckets.setdefault((form.terms, scalar), []).append(
            (form.offset, instr))
    groups: list[list[Instr]] = []
    for bucket in buckets.values():
        bucket.sort(key=lambda of: of[0])
        run: list[Instr] = [bucket[0][1]]
        last_offset = bucket[0][0]
        for offset, instr in bucket[1:]:
            if offset == last_offset + 8 and len(run) < MAX_WIDE:
                run.append(instr)
            else:
                groups.append(run)
                run = [instr]
            last_offset = offset
        groups.append(run)
    return groups


def _rewrite_body(func: Function, info: LoopInfo, body: Block,
                  instrs: list[Instr], exec_set: set, tainted: set[Value],
                  direct_loads: list[Load], load_groups, load_port,
                  store_list, store_groups, store_port,
                  send_values: list[Value], in_port: dict[Value, int],
                  recv_values: list[Value], out_port: dict[Value, int],
                  config_id: int, dropped_loads: set[int]) -> None:
    direct_load_set = set(map(id, direct_loads))
    direct_store_set = set(map(id, store_list))
    group_head_load = {id(g[0]): g for g in load_groups}
    group_head_store = {id(g[0]): g for g in store_groups}
    group_member_load = {
        id(m) for g in load_groups for m in g[1:]
    }
    group_member_store = {
        id(m) for g in store_groups for m in g[1:]
    }

    # Memory-ordering hazard: every load moves to segment A (before all
    # stores, which move to segment C).  A load that originally followed
    # a store may only be hoisted when the two provably never alias.
    # Alias discipline (a documented kernel-language rule, the moral
    # equivalent of C99 restrict): distinct array parameters never
    # overlap; within one array, affine addresses with a nonzero constant
    # difference are disjoint.
    analysis = AffineAnalysis()
    analysis.visit_function(func)
    array_bases = {p.value for p in func.params if p.is_array}
    pending_stores: list[Affine] = []
    for instr in instrs:
        if isinstance(instr, Store):
            pending_stores.append(analysis.form_of(instr.addr))
        elif isinstance(instr, Load):
            form = analysis.form_of(instr.addr)
            for store_form in pending_stores:
                if _may_alias(form, store_form, array_bases):
                    raise RegionRejected(
                        "load after possibly-aliasing store")

    send_defined_in_body = {
        v for v in send_values
        if any(i.result is v for i in instrs)
    }

    seg_a: list[Instr] = []
    seg_c: list[Instr] = []
    # External inputs (phis, invariants) are sent up front.
    for v in send_values:
        if v not in send_defined_in_body:
            seg_a.append(DyserSend(
                port=in_port[v], value=v))
    for instr in instrs:
        if instr in exec_set:
            continue
        if isinstance(instr, Load) and id(instr) in dropped_loads:
            continue  # deduplicated: the representative's transfer covers it
        if isinstance(instr, Load) and id(instr) in direct_load_set:
            if id(instr) in group_member_load:
                continue
            group = group_head_load.get(id(instr), [instr])
            fp = instr.result.scalar is Scalar.FLOAT
            seg_a.append(DyserLoad(
                port=load_port.get(id(instr), in_port[instr.result]),
                addr=instr.addr, fp=fp, count=len(group),
                wide=len(group) > 1))
            continue
        if isinstance(instr, Store) and id(instr) in direct_store_set:
            if id(instr) in group_member_store:
                continue
            group = group_head_store.get(id(instr), [instr])
            fp = group[0].value.scalar is Scalar.FLOAT
            seg_c.append(DyserStore(
                port=store_port.get(id(instr), out_port[instr.value]),
                addr=instr.addr, fp=fp, count=len(group),
                wide=len(group) > 1))
            continue
        if isinstance(instr, Store):
            seg_c.append(instr)
            continue
        # Access compute or indirect load.
        target = seg_c if (
            instr.result is not None and instr.result in tainted
        ) else seg_a
        target.append(instr)
        if instr.result is not None and instr.result in send_defined_in_body:
            target.append(DyserSend(
                port=in_port[instr.result], value=instr.result))

    seg_b = [
        DyserRecv(result=v, port=out_port[v])
        for v in sorted(recv_values, key=lambda v: out_port[v])
    ]
    body.instrs = seg_a + seg_b + seg_c

    # Configuration load goes in the preheader.
    preheader = func.blocks[info.preheader]
    preheader.instrs.append(DyserInit(config_id=config_id))
