"""IR pseudo-instructions for the DySER interface.

The access/execute partitioner replaces a region's execute slice with
these; the code generator lowers each to its extension opcode.  They are
ordinary :class:`~repro.compiler.ir.Instr` subclasses so liveness and
register allocation treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Instr, Operand, Value


@dataclass(eq=False)
class DyserInit(Instr):
    """Activate configuration ``config_id`` (lowers to ``dinit``)."""

    config_id: int = 0

    def uses(self) -> list[Operand]:
        return []

    def replace_uses(self, mapping) -> None:
        pass

    def __repr__(self) -> str:
        return f"dyser_init #{self.config_id}"


@dataclass(eq=False)
class DyserSend(Instr):
    """Send a register value to an input port (``dsend``/``dfsend``)."""

    port: int = 0
    value: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.value]

    def replace_uses(self, mapping) -> None:
        if isinstance(self.value, Value):
            self.value = mapping.get(self.value, self.value)

    def __repr__(self) -> str:
        return f"dyser_send p{self.port} <- {self.value!r}"


@dataclass(eq=False)
class DyserRecv(Instr):
    """Receive an output-port value into ``result`` (``drecv``/``dfrecv``)."""

    port: int = 0

    def uses(self) -> list[Operand]:
        return []

    def replace_uses(self, mapping) -> None:
        pass

    def __repr__(self) -> str:
        return f"{self.result!r} = dyser_recv p{self.port}"


@dataclass(eq=False)
class DyserLoad(Instr):
    """Memory word straight to an input port (``dld``/``dfld``).

    ``count`` > 1 with ``wide=False`` is the temporal vector form
    (``dldv``); with ``wide=True`` the spatial form (``dldw``).
    ``fp`` selects the float path.
    """

    port: int = 0
    addr: Operand = None  # type: ignore[assignment]
    fp: bool = False
    count: int = 1
    wide: bool = False

    def uses(self) -> list[Operand]:
        return [self.addr]

    def replace_uses(self, mapping) -> None:
        if isinstance(self.addr, Value):
            self.addr = mapping.get(self.addr, self.addr)

    def __repr__(self) -> str:
        kind = "w" if self.wide else ("v" if self.count > 1 else "")
        return (f"dyser_load{kind} p{self.port} <- [{self.addr!r}]"
                + (f" x{self.count}" if self.count > 1 else ""))


@dataclass(eq=False)
class DyserStore(Instr):
    """Output port straight to memory (``dst``/``dfst`` and vector forms)."""

    port: int = 0
    addr: Operand = None  # type: ignore[assignment]
    fp: bool = False
    count: int = 1
    wide: bool = False

    def uses(self) -> list[Operand]:
        return [self.addr]

    def replace_uses(self, mapping) -> None:
        if isinstance(self.addr, Value):
            self.addr = mapping.get(self.addr, self.addr)

    def __repr__(self) -> str:
        kind = "w" if self.wide else ("v" if self.count > 1 else "")
        return (f"dyser_store{kind} [{self.addr!r}] <- p{self.port}"
                + (f" x{self.count}" if self.count > 1 else ""))


DYSER_INSTRS = (DyserInit, DyserSend, DyserRecv, DyserLoad, DyserStore)
