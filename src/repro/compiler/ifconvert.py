"""If-conversion: flatten a loop body's internal control flow.

DySER handles control flow inside a region by computing both sides and
selecting — the hardware's predication model.  This pass performs the
matching compiler transform: the body blocks of a candidate loop (a DAG
from the body entry to a unique latch) are merged into a single block,
with

- branch conditions turned into *path predicates*;
- phis at join points turned into select chains;
- loads hoisted to execute unconditionally (safe here: the simulator's
  memory never faults on mapped addresses, mirroring the DySER compiler's
  speculative-load hoisting);
- stores made unconditional via the load-select-store rewrite.

The result is the hyperblock the access/execute partitioner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.cfg import Loop
from repro.compiler.ir import (
    Block,
    Compute,
    CondBr,
    Const,
    Function,
    Jump,
    Load,
    Operand,
    Phi,
    Store,
    Value,
    const_int,
)
from repro.compiler.types import Scalar
from repro.dyser.ops import FuOp
from repro.errors import RegionRejected


@dataclass
class FlattenResult:
    """Outcome of if-converting one loop body."""

    flat: Block
    #: Values of the predicates introduced (useful for reporting).
    predicates: int


def flatten_body(func: Function, loop: Loop) -> FlattenResult:
    """Merge ``loop``'s body blocks into one block; rewrites the CFG.

    Raises :class:`RegionRejected` when the body is not if-convertible
    (side exits, multiple latches, or — impossible for an innermost
    natural loop — internal cycles).
    """
    header = func.blocks[loop.header]
    body_names = loop.body_blocks()
    if not body_names:
        raise RegionRejected("loop has an empty body")

    # The loop must exit only through its header.
    for name in body_names:
        for succ in func.blocks[name].terminator.successors():
            if succ not in loop.blocks:
                raise RegionRejected("side exit from loop body")

    latches = [
        name for name in body_names
        if loop.header in func.blocks[name].terminator.successors()
    ]
    if len(latches) != 1:
        raise RegionRejected(f"{len(latches)} latch blocks (need 1)")
    latch = latches[0]

    if not isinstance(header.terminator, CondBr):
        raise RegionRejected("header does not end in a conditional branch")
    body_entry = (header.terminator.if_true
                  if header.terminator.if_true in body_names
                  else header.terminator.if_false)
    if body_entry not in body_names:
        raise RegionRejected("cannot identify the body entry block")

    order = _topo_body(func, body_names, body_entry)
    if order is None:
        raise RegionRejected("body is not a DAG")  # pragma: no cover

    flat = func.new_block("hyper")
    predicates_made = 0

    def emit(op: FuOp, args: list[Operand], scalar: Scalar,
             hint: str = "") -> Value:
        result = func.new_value(scalar, hint)
        flat.instrs.append(Compute(result=result, op=op, args=args))
        return result

    # Path predicate per block (None == always executes).
    block_pred: dict[str, Operand | None] = {body_entry: None}
    # Edge predicates, filled in as each block's terminator is processed.
    edge_pred: dict[tuple[str, str], Operand | None] = {}

    def conjoin(a: Operand | None, b: Operand | None) -> Operand | None:
        if a is None:
            return b
        if b is None:
            return a
        return emit(FuOp.AND, [a, b], Scalar.INT, "pred")

    def disjoin(preds: list[Operand | None]) -> Operand | None:
        if any(p is None for p in preds):
            return None
        result = preds[0]
        for p in preds[1:]:
            result = emit(FuOp.OR, [result, p], Scalar.INT, "pred")
        return result

    for name in order:
        block = func.blocks[name]
        if name == body_entry:
            pred: Operand | None = None
        else:
            incoming = [
                (src, edge_pred[(src, name)])
                for src in func.predecessors()[name]
                if src in body_names
            ]
            pred = disjoin([p for _s, p in incoming])
            block_pred[name] = pred
            # Phis become select chains over the incoming edges.
            for phi in block.phis:
                srcs = [(s, phi.incomings[s]) for s, _p in incoming]
                value = srcs[0][1]
                for src, inc_value in srcs[1:]:
                    ep = edge_pred[(src, name)]
                    if ep is None:
                        value = inc_value
                        continue
                    is_fp = phi.result.scalar is Scalar.FLOAT
                    value = emit(
                        FuOp.FSEL if is_fp else FuOp.SEL,
                        [ep, inc_value, value], phi.result.scalar,
                        phi.result.name)
                    predicates_made += 1
                _replace_value(func, phi.result, value,
                               extra_blocks=[flat])
        # Body instructions, stores predicated.
        for instr in block.instrs:
            if isinstance(instr, Store) and pred is not None:
                old = func.new_value(
                    instr.value.scalar if isinstance(instr.value, Value)
                    else instr.value.scalar, "old")
                flat.instrs.append(Load(result=old, addr=instr.addr))
                is_fp = old.scalar is Scalar.FLOAT
                guarded = emit(
                    FuOp.FSEL if is_fp else FuOp.SEL,
                    [pred, instr.value, old], old.scalar, "guard")
                flat.instrs.append(Store(addr=instr.addr, value=guarded))
                predicates_made += 1
            else:
                flat.instrs.append(instr)
        # Terminator -> edge predicates.
        term = block.terminator
        if isinstance(term, Jump):
            edge_pred[(name, term.target)] = pred
        else:
            assert isinstance(term, CondBr)
            cond = term.cond
            not_cond: Operand
            if isinstance(cond, Const):
                taken = bool(cond.value)
                edge_pred[(name, term.if_true)] = (
                    pred if taken else conjoin(pred, const_int(0)))
                edge_pred[(name, term.if_false)] = (
                    pred if not taken else conjoin(pred, const_int(0)))
            else:
                not_cond = emit(FuOp.XOR, [cond, const_int(1)],
                                Scalar.INT, "not")
                edge_pred[(name, term.if_true)] = conjoin(pred, cond)
                edge_pred[(name, term.if_false)] = conjoin(pred, not_cond)
                predicates_made += 1

    flat.terminator = Jump(loop.header)

    # Rewire the CFG: header -> flat -> header.
    if header.terminator.if_true == body_entry:
        header.terminator.if_true = flat.name
    else:
        header.terminator.if_false = flat.name
    for phi in header.phis:
        if latch in phi.incomings:
            phi.incomings[flat.name] = phi.incomings.pop(latch)
    for name in body_names:
        del func.blocks[name]
    loop.blocks = {loop.header, flat.name}
    return FlattenResult(flat=flat, predicates=predicates_made)


def _topo_body(func: Function, body: set[str], entry: str
               ) -> list[str] | None:
    """Topological order of the body DAG (edges to the header ignored)."""
    indeg = {name: 0 for name in body}
    for name in body:
        for succ in func.blocks[name].terminator.successors():
            if succ in body:
                indeg[succ] += 1
    ready = [entry] if indeg.get(entry, 0) == 0 else []
    order: list[str] = []
    while ready:
        name = ready.pop()
        order.append(name)
        for succ in func.blocks[name].terminator.successors():
            if succ in body:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
    if len(order) != len(body):
        return None
    return order


def _replace_value(func: Function, old: Value, new: Operand,
                   extra_blocks: list[Block] = ()) -> None:
    mapping = {old: new}
    blocks = list(func.blocks.values()) + list(extra_blocks)
    for block in blocks:
        for instr in block.all_instrs():
            instr.replace_uses(mapping)
        term = block.terminator
        if isinstance(term, CondBr) and term.cond is old:
            term.cond = new
