"""The co-designed DySER compiler: kernel language to SPARC-DySER code."""

from repro.compiler.driver import (
    CompileResult,
    CompilerOptions,
    RegionReport,
    compile_dyser,
    compile_scalar,
    frontend,
)
from repro.compiler.parser import parse_kernel, parse_kernels

__all__ = [
    "CompileResult",
    "CompilerOptions",
    "RegionReport",
    "compile_dyser",
    "compile_scalar",
    "frontend",
    "parse_kernel",
    "parse_kernels",
]
