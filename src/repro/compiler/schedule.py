"""Spatial scheduler: place a DFG onto the fabric and route its signals.

Two phases, mirroring the prototype toolchain:

1. **Placement** — greedy constructive placement in topological order
   (each node goes to the legal FU minimizing wirelength to its already-
   placed producers and its ports), followed by a deterministic
   improvement loop of relocations/swaps.
2. **Routing** — per-signal BFS trees over the directed switch graph
   under the circuit-switched exclusivity constraint (a switch output
   link carries exactly one signal, with free fan-out of the same
   signal).  Failed routes trigger rip-up-and-retry with a different
   signal order.

Raises :class:`SchedulingError` when the DFG cannot be mapped, which the
region selector turns into a scalar fallback (exactly what the paper's
compiler does for oversized regions).
"""

from __future__ import annotations

import random

from repro.dyser.config import DyserConfig, SinkKey, SourceKey, source_key
from repro.dyser.dfg import Dfg, NodeRef, PortRef
from repro.dyser.fabric import Coord, Fabric
from repro.dyser.ops import capability_of
from repro.errors import SchedulingError

#: Improvement iterations for the placement refiner.
_REFINE_ITERS = 300
#: Negotiated-congestion routing iterations.
_ROUTE_ROUNDS = 48


#: Placement attempts (fresh seed each) before giving up on routing.
_PLACE_ATTEMPTS = 8


def schedule(config_id: int, dfg: Dfg, fabric: Fabric,
             refine: bool = True, seed: int = 0xD75E2) -> DyserConfig:
    """Place and route ``dfg``; returns a validated config.

    Routing failures trigger re-placement with a different seed — the
    cheap version of the rip-up-and-reroute loop a production spatial
    scheduler runs.
    """
    dfg.validate()
    if len(dfg.nodes) > fabric.geometry.num_fus:
        raise SchedulingError(
            f"{dfg.name}: {len(dfg.nodes)} ops exceed "
            f"{fabric.geometry.num_fus} FUs",
            code="RPR213", dfg=dfg.name, ops=len(dfg.nodes),
            fus=fabric.geometry.num_fus)
    if dfg.input_ports and max(dfg.input_ports) >= \
            fabric.geometry.num_input_ports:
        raise SchedulingError(
            f"{dfg.name}: not enough input ports",
            code="RPR206", dfg=dfg.name, direction="in",
            port=max(dfg.input_ports),
            limit=fabric.geometry.num_input_ports)
    if dfg.output_ports and max(dfg.output_ports) >= \
            fabric.geometry.num_output_ports:
        raise SchedulingError(
            f"{dfg.name}: not enough output ports",
            code="RPR206", dfg=dfg.name, direction="out",
            port=max(dfg.output_ports),
            limit=fabric.geometry.num_output_ports)
    last_error: SchedulingError | None = None
    for attempt in range(_PLACE_ATTEMPTS):
        rng = random.Random(seed + attempt * 7919)
        placement = _place(dfg, fabric, rng, refine, jitter=2 * attempt)
        try:
            # Alternate the congestion-history pressure across attempts:
            # different DFG shapes converge under different schedules.
            routes = _route(dfg, fabric, placement, rng,
                            history_increment=1.5 + 0.75 * (attempt % 3))
        except SchedulingError as exc:
            last_error = exc
            continue
        config = DyserConfig(config_id, dfg, fabric, placement=placement,
                             routes=routes)
        config.validate()
        return config
    raise last_error if last_error is not None else SchedulingError(
        f"{dfg.name}: unroutable")


# -- placement -------------------------------------------------------------


def _place(dfg: Dfg, fabric: Fabric, rng: random.Random,
           refine: bool, jitter: int = 0) -> dict[int, Coord]:
    geometry = fabric.geometry
    in_switches = geometry.input_port_switches()
    out_switches = geometry.output_port_switches()
    out_port_of: dict[int, list[int]] = {}
    for port, src in dfg.outputs.items():
        if isinstance(src, NodeRef):
            out_port_of.setdefault(src.node, []).append(port)

    placement: dict[int, Coord] = {}
    occupied: set[Coord] = set()

    def node_cost(nid: int, fu: Coord) -> int:
        node = dfg.nodes[nid]
        cost = 0
        targets = geometry.fu_input_switches(fu)
        for src in node.inputs:
            if isinstance(src, NodeRef) and src.node in placement:
                start = geometry.fu_output_switch(placement[src.node])
            elif isinstance(src, PortRef):
                start = in_switches[src.port]
            else:
                continue
            cost += min(_dist(start, t) for t in targets)
        source = geometry.fu_output_switch(fu)
        for port in out_port_of.get(nid, ()):
            cost += _dist(source, out_switches[port])
        # Consumers placed already (refinement path).
        for other in dfg.nodes.values():
            if other.id == nid or other.id not in placement:
                continue
            if any(isinstance(s, NodeRef) and s.node == nid
                   for s in other.inputs):
                cost += min(
                    _dist(source, t)
                    for t in geometry.fu_input_switches(placement[other.id])
                )
        return cost

    # Placement cost carries a scarcity penalty (3 per extra capability)
    # so cheap ops avoid parking on rare FP/divide-capable FUs.
    for node in dfg.topo_order():
        candidates = [
            fu for fu in fabric.fus_with(capability_of(node.op))
            if fu not in occupied
        ]
        if not candidates:
            raise SchedulingError(
                f"{dfg.name}: no free FU supports {node.op.value}",
                code="RPR216", dfg=dfg.name, node=node.id,
                op=node.op.value,
                capability=capability_of(node.op).value)
        best = min(
            candidates,
            key=lambda fu: (
                node_cost(node.id, fu)
                + 3 * (len(fabric.capabilities[fu]) - 1)
                # Retry attempts explore different placements: a little
                # cost noise is what un-sticks congestion hotspots.
                + (rng.randint(0, jitter) if jitter else 0),
                fu,
            ),
        )
        placement[node.id] = best
        occupied.add(best)

    if refine and len(dfg.nodes) > 1:
        _refine(dfg, fabric, placement, occupied, rng, node_cost)
    return placement


def _refine(dfg, fabric, placement, occupied, rng, node_cost) -> None:
    geometry = fabric.geometry
    node_ids = list(placement)
    all_fus = geometry.fus()
    for _ in range(_REFINE_ITERS):
        nid = rng.choice(node_ids)
        cap = capability_of(dfg.nodes[nid].op)
        target = rng.choice(all_fus)
        if target == placement[nid] or not fabric.supports(target, cap):
            continue
        old = placement[nid]
        before = node_cost(nid, old)
        other = next((n for n, fu in placement.items() if fu == target),
                     None)
        if other is not None:
            if not fabric.supports(old, capability_of(dfg.nodes[other].op)):
                continue
            before += node_cost(other, target)
            # Tentatively swap.
            placement[nid], placement[other] = target, old
            after = node_cost(nid, target) + node_cost(other, old)
            if after > before:
                placement[nid], placement[other] = old, target
        else:
            placement[nid] = target
            after = node_cost(nid, target)
            if after > before:
                placement[nid] = old
            else:
                occupied.discard(old)
                occupied.add(target)


def _dist(a: Coord, b: Coord) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


# -- routing ------------------------------------------------------------------


def _route(dfg: Dfg, fabric: Fabric, placement: dict[int, Coord],
           rng: random.Random, history_increment: float = 1.5
           ) -> dict[tuple[SourceKey, SinkKey], list[Coord]]:
    geometry = fabric.geometry
    in_switches = geometry.input_port_switches()
    out_switches = geometry.output_port_switches()

    # Collect (source key, sink key, target switches) triples.
    jobs: list[tuple[SourceKey, SinkKey, list[Coord], Coord]] = []
    for node in dfg.nodes.values():
        targets = geometry.fu_input_switches(placement[node.id])
        for slot, src in enumerate(node.inputs):
            skey = source_key(src)
            if skey is None:
                continue
            start = (in_switches[skey[1]] if skey[0] == "port"
                     else geometry.fu_output_switch(placement[skey[1]]))
            jobs.append((skey, ("node", node.id, slot), targets, start))
    for port, src in dfg.outputs.items():
        skey = source_key(src)
        if skey is None:
            raise SchedulingError(
                f"{dfg.name}: output port {port} driven by a constant",
                code="RPR214", dfg=dfg.name, port=port)
        start = (in_switches[skey[1]] if skey[0] == "port"
                 else geometry.fu_output_switch(placement[skey[1]]))
        jobs.append((skey, ("out", port, 0), [out_switches[port]], start))

    # Route each signal's whole fan-out tree contiguously (compact trees)
    # and route edge-port signals before internal node signals: ports
    # enter at corner/edge switches with few outgoing links.
    jobs.sort(key=lambda j: (j[0][0] != "port", j[0], j[1]))

    # PathFinder-style negotiated congestion routing: sharing a link is
    # allowed during search but priced; shared links accumulate history
    # cost between iterations until every link has one owner.
    history: dict[tuple[Coord, Coord], float] = {}
    present_penalty = 2.0
    for _iteration in range(_ROUTE_ROUNDS):
        usage: dict[tuple[Coord, Coord], set[SourceKey]] = {}
        signal_parent: dict[SourceKey, dict[Coord, Coord | None]] = {}
        routes: dict[tuple[SourceKey, SinkKey], list[Coord]] = {}
        for skey, sink, targets, start in jobs:
            tree = signal_parent.setdefault(skey, {start: None})
            target = _grow_tree_negotiated(
                geometry, tree, set(targets), usage, history,
                present_penalty, skey)
            if target is None:
                raise SchedulingError(
                    f"{dfg.name}: signal {skey} -> {sink} has no path",
                    code="RPR210", dfg=dfg.name, signal=skey, sink=sink)
            path = _backtrack(tree, target)
            routes[(skey, sink)] = path
            for a, b in zip(path, path[1:], strict=False):
                usage.setdefault((a, b), set()).add(skey)
        shared = [link for link, users in usage.items() if len(users) > 1]
        if not shared:
            return routes
        for link in shared:
            history[link] = history.get(link, 0.0) + history_increment
        # Uncapped: late iterations effectively forbid sharing, which is
        # what finally shakes the last contested link loose.
        present_penalty *= 1.6
    raise SchedulingError(
        f"{dfg.name}: congestion did not resolve in {_ROUTE_ROUNDS} "
        f"routing iterations ({len(shared)} links still shared)",
        code="RPR217", dfg=dfg.name, rounds=_ROUTE_ROUNDS,
        shared=len(shared))


def _grow_tree_negotiated(geometry, tree: dict[Coord, Coord | None],
                          targets: set[Coord],
                          usage: dict[tuple[Coord, Coord], set[SourceKey]],
                          history: dict[tuple[Coord, Coord], float],
                          present_penalty: float,
                          skey: SourceKey) -> Coord | None:
    """Dijkstra from the signal's current tree to any target.

    Link cost = 1 + history + present-sharing penalty; links already in
    this signal's tree fan out for free.  Commits the found branch into
    the tree and returns the target switch.
    """
    import heapq

    already = sorted(set(tree) & targets)
    if already:
        return already[0]
    dist: dict[Coord, float] = {sw: 0.0 for sw in tree}
    parent: dict[Coord, Coord] = {}
    heap = [(0.0, sw) for sw in sorted(tree)]
    heapq.heapify(heap)
    visited: set[Coord] = set()
    while heap:
        d, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        if current in targets:
            node = current
            while node not in tree:
                tree[node] = parent[node]
                node = parent[node]
            return current
        for nxt in geometry.switch_neighbors(current):
            if nxt in visited:
                continue
            link = (current, nxt)
            users = usage.get(link, ())
            sharing = sum(1 for u in users if u != skey)
            cost = 1.0 + history.get(link, 0.0) \
                + sharing * present_penalty
            nd = d + cost
            if nd < dist.get(nxt, float("inf")):
                dist[nxt] = nd
                parent[nxt] = current
                heapq.heappush(heap, (nd, nxt))
    return None


def _backtrack(tree: dict[Coord, Coord | None], target: Coord
               ) -> list[Coord]:
    path = [target]
    node = tree[target]
    while node is not None:
        path.append(node)
        node = tree[node]
    path.reverse()
    return path
