"""Abstract syntax tree of the kernel language.

Grammar sketch (see :mod:`repro.compiler.parser` for the full grammar)::

    kernel mm(out float C[], float A[], float B[], int n) {
        for (int i = 0; i < n; i = i + 1) { ... }
    }

Every node carries its source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.types import Type


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# -- expressions -----------------------------------------------------------


@dataclass
class Expr(Node):
    #: Filled in by the type checker during IR generation.
    type: Type | None = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Index(Expr):
    """Array element read/write target: base[index]."""

    base: str = ""
    index: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = ""            # "-", "!"
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""            # + - * / % << >> & | ^ < <= > >= == != && ||
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Call(Expr):
    """Intrinsic call: sqrt, abs, min, max, float, int."""

    func: str = ""
    args: list[Expr] = field(default_factory=list)


# -- statements --------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Decl(Stmt):
    """Local declaration with mandatory initializer: ``int x = e;``"""

    type: Type | None = None
    name: str = ""
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    """Assignment to a scalar or an array element."""

    target: Name | Index | None = None
    value: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """C-style for with a declared induction variable."""

    init: Decl | Assign | None = None
    cond: Expr | None = None
    step: Assign | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level -----------------------------------------------------------------


@dataclass
class Param(Node):
    type: Type | None = None
    name: str = ""
    is_out: bool = False


@dataclass
class Kernel(Node):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
