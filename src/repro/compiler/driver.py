"""One-call compilation pipelines.

``compile_scalar`` produces baseline host-only code (the OpenSPARC-alone
configuration); ``compile_dyser`` additionally runs region selection,
if-conversion, access/execute partitioning, vectorization and spatial
scheduling to produce SPARC-DySER code with attached configurations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.compiler.codegen import generate
from repro.compiler.irgen import lower_kernel
from repro.compiler.parser import parse_kernel
from repro.compiler.passes import optimize
from repro.dyser.fabric import Fabric, FabricGeometry
from repro.isa.program import Program


@dataclass
class CompilerOptions:
    """Knobs of the DySER compilation pipeline."""

    fabric: Fabric = field(default_factory=lambda: Fabric(FabricGeometry(8, 8)))
    #: Minimum execute-slice ops for a region to be profitable.
    min_region_ops: int = 2
    #: Maximum unroll factor for vectorizable loops (1 disables); the
    #: selector halves it until the region fits and routes.
    unroll: int = 8
    #: Use wide (spatial) port transfers when accesses are contiguous.
    vectorize: bool = True
    #: Rebalance associative chains (reductions) into trees.  Changes FP
    #: rounding order, like -ffast-math reassociation.
    reassociate: bool = True
    #: Software-pipeline invocations (recv a trip behind the send).
    pipeline_invocations: bool = True
    #: Allow if-conversion of region-internal control flow.
    if_convert: bool = True
    #: Maximum region size in execute ops (fabric capacity guard).
    max_region_ops: int | None = None


@dataclass
class RegionReport:
    """What happened to one candidate region (drives E1/E7)."""

    loop_header: str
    accepted: bool
    reason: str
    execute_ops: int = 0
    input_ports: int = 0
    output_ports: int = 0
    unrolled: int = 1
    vectorized: bool = False
    shape: str = ""


@dataclass
class CompileResult:
    """A compiled kernel plus compilation metadata."""

    program: Program
    ir_dump: str = ""
    regions: list[RegionReport] = field(default_factory=list)

    @property
    def accepted_regions(self) -> int:
        return sum(1 for r in self.regions if r.accepted)


def frontend(source: str):
    """Parse + lower + clean one kernel; returns optimized SSA."""
    from repro.compiler.passes import licm

    kernel = parse_kernel(source)
    func = lower_kernel(kernel)
    func = optimize(func)
    if licm(func):
        func = optimize(func)
    return func


def compile_scalar(source: str) -> CompileResult:
    """Compile for the baseline core (no DySER)."""
    func = frontend(source)
    ir_dump = func.dump()
    program = generate(func)
    return CompileResult(program=program, ir_dump=ir_dump)


def compile_dyser(source: str,
                  options: CompilerOptions | None = None) -> CompileResult:
    """Compile with DySER offload.

    Falls back to scalar code for every region that is rejected (too
    small, unmappable, or a curtailing control-flow shape) — mirroring
    the paper's compiler, which only offloads profitable regions.
    """
    from repro.compiler.region import offload_regions

    options = options or CompilerOptions()
    func = frontend(source)
    func, reports = offload_regions(func, options)
    func = optimize(func)
    ir_dump = func.dump()
    program = generate(func)
    for config in getattr(func, "dyser_configs", {}).values():
        program.dyser_configs[config.config_id] = config
    return CompileResult(program=program, ir_dump=ir_dump, regions=reports)
