"""One-call compilation pipelines.

``compile_scalar`` produces baseline host-only code (the OpenSPARC-alone
configuration); ``compile_dyser`` additionally runs region selection,
if-conversion, access/execute partitioning, vectorization and spatial
scheduling to produce SPARC-DySER code with attached configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.codegen import generate
from repro.compiler.irgen import lower_kernel
from repro.compiler.parser import parse_kernel
from repro.compiler.passes import optimize
from repro.dyser.fabric import Fabric, FabricGeometry
from repro.isa.program import Program
from repro.obs.events import maybe_span


def _ir_size(func) -> int:
    """Instruction count of an SSA function (span size metadata)."""
    return sum(len(b.all_instrs()) for b in func.blocks.values())


@dataclass
class CompilerOptions:
    """Knobs of the DySER compilation pipeline."""

    fabric: Fabric = field(default_factory=lambda: Fabric(FabricGeometry(8, 8)))
    #: Minimum execute-slice ops for a region to be profitable.
    min_region_ops: int = 2
    #: Maximum unroll factor for vectorizable loops (1 disables); the
    #: selector halves it until the region fits and routes.
    unroll: int = 8
    #: Use wide (spatial) port transfers when accesses are contiguous.
    vectorize: bool = True
    #: Rebalance associative chains (reductions) into trees.  Changes FP
    #: rounding order, like -ffast-math reassociation.
    reassociate: bool = True
    #: Software-pipeline invocations (recv a trip behind the send).
    pipeline_invocations: bool = True
    #: Allow if-conversion of region-internal control flow.
    if_convert: bool = True
    #: Maximum region size in execute ops (fabric capacity guard).
    max_region_ops: int | None = None
    #: Run the IR verifier (:mod:`repro.analysis.verifier`) after every
    #: pipeline pass; a broken invariant raises
    #: :class:`repro.errors.PassVerificationError` naming the pass.
    #: Purely diagnostic — never changes the compiled output — and
    #: deliberately excluded from the engine's compile hash.
    verify_passes: bool = False


@dataclass
class RegionReport:
    """What happened to one candidate region (drives E1/E7)."""

    loop_header: str
    accepted: bool
    reason: str
    execute_ops: int = 0
    input_ports: int = 0
    output_ports: int = 0
    unrolled: int = 1
    vectorized: bool = False
    shape: str = ""

    def to_dict(self) -> dict:
        return {
            "loop_header": self.loop_header, "accepted": self.accepted,
            "reason": self.reason, "execute_ops": self.execute_ops,
            "input_ports": self.input_ports,
            "output_ports": self.output_ports,
            "unrolled": self.unrolled, "vectorized": self.vectorized,
            "shape": self.shape,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegionReport":
        return cls(**data)


@dataclass
class CompileResult:
    """A compiled kernel plus compilation metadata."""

    program: Program
    ir_dump: str = ""
    regions: list[RegionReport] = field(default_factory=list)

    @property
    def accepted_regions(self) -> int:
        return sum(1 for r in self.regions if r.accepted)


def _verify_after(func, pass_name: str, verify: bool) -> None:
    """Pass-sandwich verification: name the pass that broke the IR."""
    if not verify:
        return
    from repro.analysis.verifier import check_function

    check_function(func, pass_name)


def frontend(source: str, events=None, verify: bool = False):
    """Parse + lower + clean one kernel; returns optimized SSA.

    ``events`` (an :class:`repro.obs.events.EventStream` or ``None``)
    records per-pass wall time and IR size deltas when tracing is on.
    ``verify`` runs the IR verifier after each pass (see
    :attr:`CompilerOptions.verify_passes`).
    """
    from repro.compiler.passes import licm

    with maybe_span(events, "parse", "compiler.pass") as info:
        kernel = parse_kernel(source)
        info["source_chars"] = len(source)
    with maybe_span(events, "lower", "compiler.pass") as info:
        func = lower_kernel(kernel)
        info["ir_size"] = _ir_size(func)
    _verify_after(func, "lower", verify)
    with maybe_span(events, "optimize", "compiler.pass") as info:
        before = _ir_size(func)
        func = optimize(func)
        info["ir_size"] = _ir_size(func)
        info["ir_delta"] = _ir_size(func) - before
    _verify_after(func, "optimize", verify)
    with maybe_span(events, "licm", "compiler.pass") as info:
        before = _ir_size(func)
        if licm(func):
            func = optimize(func)
        info["ir_size"] = _ir_size(func)
        info["ir_delta"] = _ir_size(func) - before
    _verify_after(func, "licm", verify)
    return func


def compile_scalar(source: str, events=None,
                   verify: bool = False) -> CompileResult:
    """Compile for the baseline core (no DySER)."""
    func = frontend(source, events=events, verify=verify)
    ir_dump = func.dump()
    with maybe_span(events, "codegen", "compiler.pass") as info:
        program = generate(func)
        info["instructions"] = len(program.instructions)
    return CompileResult(program=program, ir_dump=ir_dump)


def compile_dyser(source: str,
                  options: CompilerOptions | None = None,
                  events=None) -> CompileResult:
    """Compile with DySER offload.

    Falls back to scalar code for every region that is rejected (too
    small, unmappable, or a curtailing control-flow shape) — mirroring
    the paper's compiler, which only offloads profitable regions.
    """
    from repro.compiler.region import offload_regions

    options = options or CompilerOptions()
    verify = options.verify_passes
    func = frontend(source, events=events, verify=verify)
    with maybe_span(events, "offload_regions", "compiler.pass") as info:
        before = _ir_size(func)
        func, reports = offload_regions(func, options)
        info["ir_size"] = _ir_size(func)
        info["ir_delta"] = _ir_size(func) - before
        info["regions"] = len(reports)
        info["accepted"] = sum(1 for r in reports if r.accepted)
    _verify_after(func, "offload_regions", verify)
    with maybe_span(events, "optimize", "compiler.pass") as info:
        before = _ir_size(func)
        func = optimize(func)
        info["ir_size"] = _ir_size(func)
        info["ir_delta"] = _ir_size(func) - before
    _verify_after(func, "optimize", verify)
    ir_dump = func.dump()
    with maybe_span(events, "codegen", "compiler.pass") as info:
        program = generate(func)
        info["instructions"] = len(program.instructions)
    for config in getattr(func, "dyser_configs", {}).values():
        program.dyser_configs[config.config_id] = config
    return CompileResult(program=program, ir_dump=ir_dump, regions=reports)
