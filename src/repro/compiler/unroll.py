"""Loop unrolling for invocation pipelining and transfer vectorization.

CGO 2013's "shackle-breaking" insight: DySER regions get their throughput
from *pipelined invocations* and *wide port transfers*, both of which the
compiler manufactures by unrolling the selected loop.  We implement
unroll-by-U with a scalar remainder loop:

    for (i; i < n; i += c)  body(i)
        ==>
    for (i; i + (U-1)*c < n; i += U*c) { body(i) .. body(i+(U-1)*c) }
    for (;  i < n;           i += c)   body(i)     # remainder (scalar)

Preconditions (checked, not assumed): the loop is in canonical form
(header with phis + a single if-converted body block), the guard is
``slt i, bound`` with ``i`` an affine induction of positive step and
``bound`` loop-invariant.  All other loop-carried values are chained
through the clones, which is exactly what turns a reduction into an
in-fabric tree after partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.affine import AffineAnalysis, induction_step
from repro.compiler.cfg import Loop
from repro.compiler.ir import (
    Block,
    Compute,
    CondBr,
    Const,
    Function,
    Instr,
    Jump,
    Load,
    Operand,
    Phi,
    Store,
    Value,
    const_int,
)
from repro.compiler.types import Scalar
from repro.dyser.ops import FuOp
from repro.errors import RegionRejected


@dataclass
class LoopInfo:
    """Canonical-form facts about an if-converted loop."""

    header: str
    body: str
    preheader: str
    exit: str
    #: header phi -> latch incoming operand
    carried: dict[Phi, Operand] = field(default_factory=dict)
    #: induction phis -> step constant
    inductions: dict[Phi, int] = field(default_factory=dict)
    #: the guard induction phi (cond is slt guard_phi, bound)
    guard_phi: Phi | None = None
    bound: Operand | None = None


def analyze_loop(func: Function, loop: Loop) -> LoopInfo:
    """Extract canonical-form structure; raises RegionRejected otherwise."""
    header = func.blocks[loop.header]
    body_names = loop.body_blocks()
    if len(body_names) != 1:
        raise RegionRejected("loop body not flattened to one block")
    (body_name,) = body_names
    preds = func.predecessors()
    outside = [p for p in preds[loop.header] if p not in loop.blocks]
    if len(outside) != 1:
        raise RegionRejected("loop needs a unique preheader")
    term = header.terminator
    if not isinstance(term, CondBr):
        raise RegionRejected("header terminator is not a branch")
    exit_name = term.if_false if term.if_true == body_name else term.if_true
    info = LoopInfo(header=loop.header, body=body_name,
                    preheader=outside[0], exit=exit_name)
    for phi in header.phis:
        if body_name not in phi.incomings:
            raise RegionRejected("header phi lacks a latch incoming")
        info.carried[phi] = phi.incomings[body_name]
    # Induction recognition over the body block.
    analysis = AffineAnalysis()
    analysis.visit_block(func.blocks[body_name])
    for phi, latch_value in info.carried.items():
        if phi.result.scalar is not Scalar.INT:
            continue
        step = induction_step(analysis, phi.result, latch_value)
        if step is not None:
            info.inductions[phi] = step
    # Guard pattern: cond defined in header as slt(phi, invariant).
    cond = term.cond
    if isinstance(cond, Value):
        defs = {i.result: i for i in header.instrs if i.result is not None}
        cond_def = defs.get(cond)
        if (isinstance(cond_def, Compute) and cond_def.op is FuOp.SLT):
            lhs, rhs = cond_def.args
            for phi, step in info.inductions.items():
                if lhs is phi.result and step > 0 \
                        and _is_invariant(func, loop, rhs):
                    info.guard_phi = phi
                    info.bound = rhs
                    break
    return info


def _is_invariant(func: Function, loop: Loop, op: Operand) -> bool:
    if isinstance(op, Const):
        return True
    return not any(
        instr.result is op
        for name in loop.blocks
        for instr in func.blocks[name].all_instrs())


def can_unroll(info: LoopInfo) -> bool:
    return info.guard_phi is not None


def unroll_loop(func: Function, loop: Loop, info: LoopInfo,
                factor: int) -> None:
    """Unroll in place by ``factor``; appends a scalar remainder loop."""
    if factor < 2:
        return
    if not can_unroll(info):
        raise RegionRejected("guard is not a recognized affine induction")
    header = func.blocks[info.header]
    body = func.blocks[info.body]
    step = info.inductions[info.guard_phi]

    remainder = _clone_remainder(func, info, body, header)

    # 1. Replicate the body factor-1 more times, chaining carried values.
    original_instrs = list(body.instrs)
    current: dict[Value, Operand] = {
        phi.result: phi.incomings[info.body] for phi in header.phis
    }
    for _k in range(1, factor):
        mapping: dict[Value, Operand] = dict(current)
        for instr in original_instrs:
            clone = _clone_instr(func, instr, mapping)
            body.instrs.append(clone)
        current = {
            phi.result: _mapped(mapping, phi.incomings[info.body])
            for phi in header.phis
        }
    for phi in header.phis:
        phi.incomings[info.body] = current[phi.result]

    # 2. Strengthen the guard: i + (factor-1)*step < bound.
    lookahead = func.new_value(Scalar.INT, "ahead")
    guard = func.new_value(Scalar.INT, "guard")
    header.instrs.append(Compute(
        result=lookahead, op=FuOp.ADD,
        args=[info.guard_phi.result, const_int((factor - 1) * step)]))
    header.instrs.append(Compute(
        result=guard, op=FuOp.SLT, args=[lookahead, info.bound]))
    term = header.terminator
    assert isinstance(term, CondBr)
    term.cond = guard

    # 3. Route the unrolled loop's exit through the remainder loop.
    rem_header, value_map = remainder
    if term.if_true == info.body:
        term.if_false = rem_header
    else:
        term.if_true = rem_header
    # Uses of the original phi results outside the loop now see the
    # remainder loop's phis instead.
    loop_blocks = {info.header, info.body}
    rem_blocks = set(value_map["blocks"])
    for name, block in func.blocks.items():
        if name in loop_blocks or name in rem_blocks:
            continue
        for instr in block.all_instrs():
            instr.replace_uses(value_map["escapes"])
        t = block.terminator
        if isinstance(t, CondBr) and t.cond in value_map["escapes"]:
            t.cond = value_map["escapes"][t.cond]


def _mapped(mapping: dict[Value, Operand], op: Operand) -> Operand:
    if isinstance(op, Value):
        return mapping.get(op, op)
    return op


def _clone_instr(func: Function, instr: Instr,
                 mapping: dict[Value, Operand]) -> Instr:
    """Clone one instruction, remapping uses and freshening the def."""
    if isinstance(instr, Compute):
        clone = Compute(
            result=None, op=instr.op,
            args=[_mapped(mapping, a) for a in instr.args])
    elif isinstance(instr, Load):
        clone = Load(result=None, addr=_mapped(mapping, instr.addr))
    elif isinstance(instr, Store):
        clone = Store(result=None, addr=_mapped(mapping, instr.addr),
                      value=_mapped(mapping, instr.value))
    else:
        raise RegionRejected(
            f"cannot unroll body containing {type(instr).__name__}")
    if instr.result is not None:
        fresh = func.new_value(instr.result.scalar, instr.result.name)
        clone.result = fresh
        mapping[instr.result] = fresh
    return clone


def _clone_remainder(func: Function, info: LoopInfo, body: Block,
                     header: Block):
    """Clone the original (pre-unroll) loop as the remainder loop.

    Returns (remainder header name, {"blocks": [...], "escapes": {...}}).
    """
    rem_header = func.new_block("remh")
    rem_body = func.new_block("remb")
    mapping: dict[Value, Operand] = {}
    escapes: dict[Value, Operand] = {}
    # Phis: incoming from the unrolled header (its phi results) and from
    # the cloned body.
    for phi in header.phis:
        fresh = func.new_value(phi.result.scalar, phi.result.name)
        mapping[phi.result] = fresh
        escapes[phi.result] = fresh
        rem_header.phis.append(Phi(
            result=fresh,
            incomings={header.name: phi.result,
                       rem_body.name: phi.incomings[info.body]}))
    for instr in header.instrs:
        rem_header.instrs.append(_clone_instr(func, instr, mapping))
    term = header.terminator
    assert isinstance(term, CondBr)
    cond = _mapped(mapping, term.cond)
    rem_header.terminator = CondBr(cond, rem_body.name, info.exit)
    for instr in body.instrs:
        rem_body.instrs.append(_clone_instr(func, instr, mapping))
    rem_body.terminator = Jump(rem_header.name)
    # Fix the cloned phis' body incomings: they were captured before the
    # body was cloned, so remap them now that the mapping is complete.
    for phi in rem_header.phis:
        phi.incomings[rem_body.name] = _mapped(
            mapping, phi.incomings[rem_body.name])
    # Exit-block phis: the exit's predecessor changes from header to
    # remainder header.
    exit_block = func.blocks[info.exit]
    for phi in exit_block.phis:
        if header.name in phi.incomings:
            phi.incomings[rem_header.name] = _mapped(
                mapping, phi.incomings.pop(header.name))
    # Remainder loops are never themselves offload candidates: offloading
    # one would unroll it and spawn yet another remainder, ad infinitum.
    tagged = getattr(func, "remainder_headers", set())
    tagged.add(rem_header.name)
    func.remainder_headers = tagged
    return rem_header.name, {
        "blocks": [rem_header.name, rem_body.name], "escapes": escapes}
