"""SSA intermediate representation.

Compute instructions reuse :class:`repro.dyser.ops.FuOp` for their opcodes
— deliberately: the execute slice of a region becomes a DySER DFG by a
direct op-for-op mapping, which is the essence of the co-design.  Memory
access, phis and copies are IR-only and always stay on the host core.

A function is a CFG of basic blocks.  Operands are either :class:`Value`
(virtual registers, defined exactly once) or :class:`Const`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.types import Scalar
from repro.dyser.ops import FU_OP_INFO, FuOp
from repro.errors import CompilerError


@dataclass(frozen=True, eq=False)
class Value:
    """An SSA virtual register."""

    id: int
    scalar: Scalar
    name: str = ""

    def __repr__(self) -> str:
        prefix = "%f" if self.scalar is Scalar.FLOAT else "%i"
        suffix = f".{self.name}" if self.name else ""
        return f"{prefix}{self.id}{suffix}"


@dataclass(frozen=True)
class Const:
    """A compile-time constant operand."""

    value: int | float
    scalar: Scalar

    def __repr__(self) -> str:
        return repr(self.value)


Operand = Value | Const


def const_int(v: int) -> Const:
    return Const(int(v), Scalar.INT)


def const_float(v: float) -> Const:
    return Const(float(v), Scalar.FLOAT)


# -- instructions ------------------------------------------------------------


@dataclass(eq=False)
class Instr:
    """Base class; ``result`` is None for instructions with no def."""

    result: Value | None = None

    def uses(self) -> list[Operand]:
        raise NotImplementedError

    def replace_uses(self, mapping: dict[Value, Operand]) -> None:
        raise NotImplementedError


@dataclass(eq=False)
class Compute(Instr):
    """Pure computation; directly mappable onto a DySER FU."""

    op: FuOp = FuOp.ADD
    args: list[Operand] = field(default_factory=list)

    def __post_init__(self) -> None:
        arity = FU_OP_INFO[self.op].arity
        if len(self.args) != arity:
            raise CompilerError(
                f"{self.op.value}: expected {arity} args, got "
                f"{len(self.args)}")

    def uses(self) -> list[Operand]:
        return list(self.args)

    def replace_uses(self, mapping: dict[Value, Operand]) -> None:
        self.args = [mapping.get(a, a) if isinstance(a, Value) else a
                     for a in self.args]

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.result!r} = {self.op.value} {args}"


@dataclass(eq=False)
class Load(Instr):
    """result = mem[addr]; addr is a byte address (int-typed operand)."""

    addr: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.addr]

    def replace_uses(self, mapping: dict[Value, Operand]) -> None:
        if isinstance(self.addr, Value):
            self.addr = mapping.get(self.addr, self.addr)

    def __repr__(self) -> str:
        return f"{self.result!r} = load [{self.addr!r}]"


@dataclass(eq=False)
class Store(Instr):
    """mem[addr] = value."""

    addr: Operand = None  # type: ignore[assignment]
    value: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.addr, self.value]

    def replace_uses(self, mapping: dict[Value, Operand]) -> None:
        if isinstance(self.addr, Value):
            self.addr = mapping.get(self.addr, self.addr)
        if isinstance(self.value, Value):
            self.value = mapping.get(self.value, self.value)

    def __repr__(self) -> str:
        return f"store [{self.addr!r}] = {self.value!r}"


@dataclass(eq=False)
class Copy(Instr):
    """result = src (introduced by out-of-SSA lowering)."""

    src: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.src]

    def replace_uses(self, mapping: dict[Value, Operand]) -> None:
        if isinstance(self.src, Value):
            self.src = mapping.get(self.src, self.src)

    def __repr__(self) -> str:
        return f"{self.result!r} = copy {self.src!r}"


@dataclass(eq=False)
class Phi(Instr):
    """SSA phi: result = phi [pred_block -> operand]."""

    incomings: dict[str, Operand] = field(default_factory=dict)

    def uses(self) -> list[Operand]:
        return list(self.incomings.values())

    def replace_uses(self, mapping: dict[Value, Operand]) -> None:
        self.incomings = {
            b: (mapping.get(v, v) if isinstance(v, Value) else v)
            for b, v in self.incomings.items()
        }

    def __repr__(self) -> str:
        inc = ", ".join(f"[{b}: {v!r}]" for b, v in self.incomings.items())
        return f"{self.result!r} = phi {inc}"


# -- terminators -----------------------------------------------------------------


@dataclass(eq=False)
class Jump:
    target: str

    def successors(self) -> list[str]:
        return [self.target]

    def uses(self) -> list[Operand]:
        return []

    def __repr__(self) -> str:
        return f"jump {self.target}"


@dataclass(eq=False)
class CondBr:
    cond: Operand
    if_true: str
    if_false: str

    def successors(self) -> list[str]:
        return [self.if_true, self.if_false]

    def uses(self) -> list[Operand]:
        return [self.cond]

    def __repr__(self) -> str:
        return f"br {self.cond!r} ? {self.if_true} : {self.if_false}"


@dataclass(eq=False)
class Ret:
    def successors(self) -> list[str]:
        return []

    def uses(self) -> list[Operand]:
        return []

    def __repr__(self) -> str:
        return "ret"


Terminator = Jump | CondBr | Ret


# -- blocks and functions ------------------------------------------------------------


@dataclass(eq=False)
class Block:
    name: str
    phis: list[Phi] = field(default_factory=list)
    instrs: list[Instr] = field(default_factory=list)
    terminator: Terminator | None = None

    def all_instrs(self) -> list[Instr]:
        return [*self.phis, *self.instrs]

    def __repr__(self) -> str:
        return f"<block {self.name}>"


@dataclass
class Param:
    """Kernel parameter: arrays arrive as base addresses (int values)."""

    name: str
    scalar: Scalar
    is_array: bool
    is_out: bool
    value: Value = None  # type: ignore[assignment]


class Function:
    """A kernel lowered to SSA form."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: list[Param] = []
        self.blocks: dict[str, Block] = {}
        self.entry = "entry"
        # Plain ints (not itertools.count) so Functions deep-copy cleanly;
        # the region selector clones the function per offload attempt.
        self._next_value_id = 0
        self._next_block_id = 0

    # -- construction helpers -------------------------------------------

    def new_value(self, scalar: Scalar, name: str = "") -> Value:
        value = Value(self._next_value_id, scalar, name)
        self._next_value_id += 1
        return value

    def new_block(self, hint: str = "bb") -> Block:
        name = f"{hint}{self._next_block_id}"
        self._next_block_id += 1
        block = Block(name)
        self.blocks[name] = block
        return block

    def add_entry(self) -> Block:
        block = Block(self.entry)
        self.blocks[self.entry] = block
        return block

    # -- queries --------------------------------------------------------

    def block_order(self) -> list[Block]:
        """Blocks in reverse-postorder from the entry."""
        seen: set[str] = set()
        order: list[Block] = []

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            block = self.blocks[name]
            for succ in (block.terminator.successors()
                         if block.terminator else []):
                visit(succ)
            order.append(block)

        visit(self.entry)
        order.reverse()
        # Unreachable blocks go last (and are candidates for removal).
        for block in self.blocks.values():
            if block.name not in seen:
                order.append(block)
        return order

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {name: [] for name in self.blocks}
        for block in self.blocks.values():
            if block.terminator is None:
                continue
            for succ in block.terminator.successors():
                preds[succ].append(block.name)
        return preds

    def defs(self) -> dict[Value, tuple[Block, Instr]]:
        table: dict[Value, tuple[Block, Instr]] = {}
        for block in self.blocks.values():
            for instr in block.all_instrs():
                if instr.result is not None:
                    table[instr.result] = (block, instr)
        return table

    # -- verification ------------------------------------------------------

    def verify(self) -> None:
        """Structural SSA checks (cheap; run after every pass in tests)."""
        defined: set[Value] = {p.value for p in self.params}
        for block in self.blocks.values():
            if block.terminator is None:
                raise CompilerError(f"{self.name}: {block.name} has no "
                                    f"terminator")
            for succ in block.terminator.successors():
                if succ not in self.blocks:
                    raise CompilerError(
                        f"{self.name}: edge to unknown block {succ}")
            for instr in block.all_instrs():
                if instr.result is not None:
                    if instr.result in defined:
                        raise CompilerError(
                            f"{self.name}: {instr.result!r} defined twice")
                    defined.add(instr.result)
        preds = self.predecessors()
        for block in self.blocks.values():
            for phi in block.phis:
                if set(phi.incomings) != set(preds[block.name]):
                    raise CompilerError(
                        f"{self.name}: phi in {block.name} has incomings "
                        f"{sorted(phi.incomings)} but predecessors are "
                        f"{sorted(preds[block.name])}")
            for instr in block.all_instrs():
                for use in instr.uses():
                    if isinstance(use, Value) and use not in defined:
                        raise CompilerError(
                            f"{self.name}: use of undefined {use!r} in "
                            f"{block.name}")
            for use in block.terminator.uses():
                if isinstance(use, Value) and use not in defined:
                    raise CompilerError(
                        f"{self.name}: terminator uses undefined {use!r}")

    # -- printing -------------------------------------------------------------

    def dump(self) -> str:
        lines = [f"function {self.name}("
                 + ", ".join(f"{p.value!r}:{p.name}" for p in self.params)
                 + ")"]
        for block in self.block_order():
            lines.append(f"{block.name}:")
            for instr in block.all_instrs():
                lines.append(f"    {instr!r}")
            lines.append(f"    {block.terminator!r}")
        return "\n".join(lines)
