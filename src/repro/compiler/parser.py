"""Recursive-descent parser for the kernel language.

Grammar::

    program   := kernel*
    kernel    := "kernel" IDENT "(" params? ")" block
    params    := param ("," param)*
    param     := "out"? type IDENT ("[" "]")?
    type      := "int" | "float"
    block     := "{" stmt* "}"
    stmt      := decl | assign ";" | if | for | while
               | "break" ";" | "continue" ";"
    decl      := type IDENT "=" expr ";"
    assign    := lvalue "=" expr
    lvalue    := IDENT | IDENT "[" expr "]"
    if        := "if" "(" expr ")" block ("else" (block | if))?
    for       := "for" "(" (decl | assign ";") expr ";" assign ")" block
    while     := "while" "(" expr ")" block
    expr      := precedence-climbing over
                 ||  &&  (== !=)  (< <= > >=)  (| ^ &)  (<< >>)
                 (+ -)  (* / %)  unary  primary
    primary   := literal | IDENT | IDENT "[" expr "]"
               | IDENT "(" args ")" | "(" expr ")"
"""

from __future__ import annotations

from repro.compiler import ast_nodes as ast
from repro.compiler.lexer import TokKind, Token, tokenize
from repro.compiler.types import FLOAT, INT, Type
from repro.errors import ParseError

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "|": 5, "^": 6, "&": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

#: Recognized intrinsic functions.
INTRINSICS = frozenset({"sqrt", "abs", "min", "max", "float", "int"})


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind is not TokKind.EOF:
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (
            TokKind.OP, TokKind.KEYWORD)

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            self.fail(f"expected {text!r}, found {self.cur.text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.kind is not TokKind.IDENT:
            self.fail(f"expected identifier, found {self.cur.text!r}")
        return self.advance()

    def fail(self, message: str) -> None:
        raise ParseError(message, self.cur.line, self.cur.column)

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> list[ast.Kernel]:
        kernels = []
        while self.cur.kind is not TokKind.EOF:
            kernels.append(self.parse_kernel())
        if not kernels:
            self.fail("empty program")
        return kernels

    def parse_kernel(self) -> ast.Kernel:
        line = self.cur.line
        self.expect("kernel")
        name = self.expect_ident().text
        self.expect("(")
        params: list[ast.Param] = []
        if not self.check(")"):
            params.append(self.parse_param())
            while self.accept(","):
                params.append(self.parse_param())
        self.expect(")")
        body = self.parse_block()
        return ast.Kernel(name=name, params=params, body=body, line=line)

    def parse_param(self) -> ast.Param:
        line = self.cur.line
        is_out = self.accept("out")
        base = self.parse_scalar_type()
        name = self.expect_ident().text
        is_array = False
        if self.accept("["):
            self.expect("]")
            is_array = True
        return ast.Param(
            type=Type(base.scalar, is_array=is_array),
            name=name, is_out=is_out, line=line,
        )

    def parse_scalar_type(self) -> Type:
        if self.accept("int"):
            return INT
        if self.accept("float"):
            return FLOAT
        self.fail(f"expected a type, found {self.cur.text!r}")
        raise AssertionError  # pragma: no cover

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("{")
        body: list[ast.Stmt] = []
        while not self.check("}"):
            if self.cur.kind is TokKind.EOF:
                self.fail("unterminated block")
            body.append(self.parse_stmt())
        self.expect("}")
        return body

    def parse_stmt(self) -> ast.Stmt:
        if self.check("int") or self.check("float"):
            return self.parse_decl()
        if self.check("if"):
            return self.parse_if()
        if self.check("for"):
            return self.parse_for()
        if self.check("while"):
            return self.parse_while()
        if self.check("break"):
            line = self.advance().line
            self.expect(";")
            return ast.Break(line=line)
        if self.check("continue"):
            line = self.advance().line
            self.expect(";")
            return ast.Continue(line=line)
        stmt = self.parse_assign()
        self.expect(";")
        return stmt

    def parse_decl(self) -> ast.Decl:
        line = self.cur.line
        base = self.parse_scalar_type()
        name = self.expect_ident().text
        self.expect("=")
        init = self.parse_expr()
        self.expect(";")
        return ast.Decl(type=base, name=name, init=init, line=line)

    def parse_assign(self) -> ast.Assign:
        line = self.cur.line
        name = self.expect_ident().text
        if self.accept("["):
            index = self.parse_expr()
            self.expect("]")
            target: ast.Name | ast.Index = ast.Index(
                base=name, index=index, line=line)
        else:
            target = ast.Name(ident=name, line=line)
        self.expect("=")
        value = self.parse_expr()
        return ast.Assign(target=target, value=value, line=line)

    def parse_if(self) -> ast.If:
        line = self.cur.line
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_block()
        else_body: list[ast.Stmt] = []
        if self.accept("else"):
            else_body = ([self.parse_if()] if self.check("if")
                         else self.parse_block())
        return ast.If(cond=cond, then_body=then_body, else_body=else_body,
                      line=line)

    def parse_for(self) -> ast.For:
        line = self.cur.line
        self.expect("for")
        self.expect("(")
        if self.check("int") or self.check("float"):
            init: ast.Decl | ast.Assign = self.parse_decl()  # eats ";"
        else:
            init = self.parse_assign()
            self.expect(";")
        cond = self.parse_expr()
        self.expect(";")
        step = self.parse_assign()
        self.expect(")")
        body = self.parse_block()
        return ast.For(init=init, cond=cond, step=step, body=body, line=line)

    def parse_while(self) -> ast.While:
        line = self.cur.line
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_block()
        return ast.While(cond=cond, body=body, line=line)

    # -- expressions -----------------------------------------------------------------

    def parse_expr(self, min_prec: int = 1) -> ast.Expr:
        left = self.parse_unary()
        while (self.cur.kind is TokKind.OP
               and self.cur.text in _PRECEDENCE
               and _PRECEDENCE[self.cur.text] >= min_prec):
            op = self.advance()
            right = self.parse_expr(_PRECEDENCE[op.text] + 1)
            left = ast.Binary(op=op.text, left=left, right=right,
                              line=op.line)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.check("-"):
            tok = self.advance()
            return ast.Unary(op="-", operand=self.parse_unary(),
                             line=tok.line)
        if self.check("!"):
            tok = self.advance()
            return ast.Unary(op="!", operand=self.parse_unary(),
                             line=tok.line)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind is TokKind.INT:
            self.advance()
            return ast.IntLit(value=int(tok.text, 0), line=tok.line)
        if tok.kind is TokKind.FLOAT:
            self.advance()
            return ast.FloatLit(value=float(tok.text), line=tok.line)
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind is TokKind.KEYWORD and tok.text in ("int", "float"):
            # Cast syntax: int(e), float(e).
            self.advance()
            self.expect("(")
            arg = self.parse_expr()
            self.expect(")")
            return ast.Call(func=tok.text, args=[arg], line=tok.line)
        if tok.kind is TokKind.IDENT:
            self.advance()
            if self.accept("["):
                index = self.parse_expr()
                self.expect("]")
                return ast.Index(base=tok.text, index=index, line=tok.line)
            if self.accept("("):
                if tok.text not in INTRINSICS:
                    raise ParseError(
                        f"unknown function {tok.text!r} (intrinsics: "
                        f"{sorted(INTRINSICS)})", tok.line, tok.column)
                args = []
                if not self.check(")"):
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return ast.Call(func=tok.text, args=args, line=tok.line)
            return ast.Name(ident=tok.text, line=tok.line)
        self.fail(f"expected expression, found {tok.text!r}")
        raise AssertionError  # pragma: no cover


def parse_kernels(source: str) -> list[ast.Kernel]:
    """Parse every kernel in ``source``."""
    return Parser(source).parse_program()


def parse_kernel(source: str) -> ast.Kernel:
    """Parse a source expected to contain exactly one kernel."""
    kernels = parse_kernels(source)
    if len(kernels) != 1:
        raise ParseError(
            f"expected one kernel, found {len(kernels)}", 1, 1)
    return kernels[0]
