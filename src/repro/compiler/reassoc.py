"""Associative-chain rebalancing on DySER DFGs.

Unrolling a reduction produces a *serial* accumulation chain
(``a1 = t1 + acc; a2 = a1 + t2; ...``) whose fabric path delay grows
linearly in the unroll factor — and the recv that closes the loop waits
for all of it.  The DySER compiler's reassociation rewrites such chains
into balanced trees, cutting the critical path to ``O(log n)``.

We rebalance maximal single-consumer chains of one associative op.  For
floating point this changes rounding order (exactly as ``-ffast-math``
reassociation does); the workload reference checks use tolerances
accordingly, and the transform can be disabled via
``CompilerOptions.reassociate``.
"""

from __future__ import annotations

from repro.dyser.dfg import Dfg, NodeRef, Source
from repro.dyser.ops import FuOp

#: Ops that are associative and commutative in our semantics (integer
#: ops exactly; FP ops up to rounding).
ASSOCIATIVE_OPS = frozenset({
    FuOp.ADD, FuOp.MUL, FuOp.AND, FuOp.OR, FuOp.XOR,
    FuOp.MIN, FuOp.MAX,
    FuOp.FADD, FuOp.FMUL, FuOp.FMIN, FuOp.FMAX,
})


def rebalance(dfg: Dfg) -> bool:
    """Rebalance every maximal associative chain in place.

    Chain roots keep their node ids, so output-port mappings survive.
    Returns True when anything changed.
    """
    changed = False
    consumer_count = _consumer_counts(dfg)
    # Visit potential roots in topological order so nested chains
    # (a tree of chains) rebalance bottom-up.
    for node in list(dfg.topo_order()):
        if node.id not in dfg.nodes:
            continue  # absorbed into an earlier rebuild
        if node.op not in ASSOCIATIVE_OPS:
            continue
        is_root = consumer_count.get(node.id, 0) != 1 or any(
            isinstance(src, NodeRef) and src.node == node.id
            for src in dfg.outputs.values()
        )
        if not is_root:
            continue
        leaves = _collect_chain(dfg, node.id, node.op, consumer_count)
        if len(leaves) < 4:
            continue
        _rebuild_balanced(dfg, node.id, node.op, leaves)
        changed = True
        consumer_count = _consumer_counts(dfg)
    return changed


def _consumer_counts(dfg: Dfg) -> dict[int, int]:
    counts: dict[int, int] = {}
    for node in dfg.nodes.values():
        for src in node.inputs:
            if isinstance(src, NodeRef):
                counts[src.node] = counts.get(src.node, 0) + 1
    for src in dfg.outputs.values():
        if isinstance(src, NodeRef):
            counts[src.node] = counts.get(src.node, 0) + 1
    return counts


def _collect_chain(dfg: Dfg, root: int, op: FuOp,
                   consumer_count: dict[int, int]) -> list[Source]:
    """Leaves of the maximal same-op, single-consumer subtree under
    ``root``; interior nodes are deleted (the rebuild re-creates them)."""
    leaves: list[Source] = []
    interior: list[int] = []

    def walk(source: Source) -> None:
        if (isinstance(source, NodeRef)
                and source.node in dfg.nodes
                and dfg.nodes[source.node].op is op
                and consumer_count.get(source.node, 0) == 1
                and not _drives_output(dfg, source.node)):
            interior.append(source.node)
            for child in dfg.nodes[source.node].inputs:
                walk(child)
        else:
            leaves.append(source)

    for child in dfg.nodes[root].inputs:
        walk(child)
    if len(leaves) >= 4:
        for nid in interior:
            del dfg.nodes[nid]
    return leaves if len(leaves) >= 4 else []


def _drives_output(dfg: Dfg, node_id: int) -> bool:
    return any(
        isinstance(src, NodeRef) and src.node == node_id
        for src in dfg.outputs.values()
    )


def _rebuild_balanced(dfg: Dfg, root: int, op: FuOp,
                      leaves: list[Source]) -> None:
    """Combine ``leaves`` pairwise into a balanced tree whose final
    combine is the existing ``root`` node."""
    level = list(leaves)
    while len(level) > 2:
        nxt: list[Source] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(dfg.add_node(op, [level[i], level[i + 1]]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    dfg.nodes[root].inputs = list(level)
