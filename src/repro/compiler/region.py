"""Region selection and offload orchestration.

Candidate regions are innermost natural loops.  For each candidate the
selector:

1. classifies its control-flow shape (:mod:`repro.compiler.shapes`);
2. attempts the full offload pipeline — if-convert, unroll+vectorize,
   partition, spatially schedule — on a *clone* of the function, retrying
   with unrolling disabled when the aggressive attempt is rejected
   (e.g. cross-iteration memory dependences surface as load-after-store
   hazards only once unrolled);
3. adopts the clone on success, or leaves the loop as scalar code on
   failure, recording the rejection reason.

This mirrors the paper's compiler behaviour: profitable regions are
offloaded, everything else silently stays on the OpenSPARC side.
"""

from __future__ import annotations

import copy

from repro.compiler.aepdg import Partition, offload_body
from repro.compiler.affine import AffineAnalysis, induction_step
from repro.compiler.cfg import Loop, innermost_loops, natural_loops
from repro.compiler.ifconvert import flatten_body
from repro.compiler.ir import Function, Value
from repro.compiler.shapes import Shape, classify_region
from repro.compiler.unroll import analyze_loop, can_unroll, unroll_loop
from repro.errors import RegionRejected, SchedulingError


def offload_regions(func: Function, options):
    """Offload every profitable innermost loop.

    Returns ``(new_function, [RegionReport])``; the input function is not
    mutated on rejection paths.
    """
    from repro.compiler.driver import RegionReport

    reports: list[RegionReport] = []
    next_config = 0
    processed: set[str] = set()
    while True:
        remainder_headers = getattr(func, "remainder_headers", set())
        candidates = [
            lp for lp in innermost_loops(func)
            if lp.header not in processed
            and lp.header not in remainder_headers
        ]
        if not candidates:
            break
        loop = min(candidates, key=lambda lp: lp.header)
        processed.add(loop.header)
        shape_report = classify_region(
            func, loop, _loop_inductions(func, loop))
        report = RegionReport(
            loop_header=loop.header, accepted=False, reason="",
            shape=shape_report.shape.value)
        if shape_report.shape is Shape.MULTI_EXIT:
            report.reason = "multi-exit loop is not if-convertible"
            reports.append(report)
            continue

        # Halving ladder: 8 -> 4 -> 2 -> 1.  Oversized or unroutable
        # attempts fall to the next factor, so e.g. a 9-tap convolution
        # that cannot unroll 4x still gets 2x.
        factors = []
        factor = options.unroll
        while factor > 1:
            factors.append(factor)
            factor //= 2
        factors.append(1)
        # Pipelining a loop whose control consumes carried data gains
        # nothing; skip unrolling there (the invocations serialize anyway).
        if shape_report.shape is Shape.LOOP_CARRIED_CONTROL:
            factors = [1]
        for factor in factors:
            work = copy.deepcopy(func)
            try:
                partition = _attempt(work, loop.header, options,
                                     next_config, factor)
            except (RegionRejected, SchedulingError) as exc:
                report.reason = str(exc)
                continue
            func = work
            if getattr(options, "verify_passes", False):
                from repro.analysis.verifier import check_function

                check_function(func, f"offload:{loop.header}")
            report.accepted = True
            report.reason = "offloaded"
            report.execute_ops = partition.execute_ops
            report.input_ports = partition.input_ports
            report.output_ports = partition.output_ports
            report.unrolled = factor
            report.vectorized = partition.vectorized
            next_config += 1
            break
        reports.append(report)
    return func, reports


def _attempt(work: Function, header: str, options, config_id: int,
             unroll_factor: int) -> Partition:
    """Run the offload pipeline for one loop on ``work`` (mutating it)."""
    matches = [lp for lp in natural_loops(work) if lp.header == header]
    if not matches:
        raise RegionRejected("loop vanished during cloning")  # pragma: no cover
    loop = matches[0]
    flatten_body(work, loop)
    info = analyze_loop(work, loop)
    if unroll_factor > 1:
        if not can_unroll(info):
            raise RegionRejected("guard is not an affine induction")
        unroll_loop(work, loop, info, unroll_factor)
        # Refresh: carried values and induction chains changed.
        info = analyze_loop(work, loop)
    partition = offload_body(
        work, info, options.fabric, config_id,
        min_ops=options.min_region_ops,
        max_ops=options.max_region_ops,
        vectorize=options.vectorize and unroll_factor > 1,
        reassociate=options.reassociate,
    )
    _check_profitable(partition, unroll_factor)
    if not hasattr(work, "dyser_configs"):
        work.dyser_configs = {}
    work.dyser_configs[config_id] = partition.config
    work.verify()
    return partition


def _check_profitable(partition: Partition, unroll_factor: int) -> None:
    """Reject regions that cannot beat the host core.

    A small all-integer slice that could not be unrolled runs one
    serialized invocation per iteration; the fabric round trip dwarfs the
    cost of a handful of 1-cycle host ALU ops.  FP regions always win
    (the prototype's shared FPU is an order of magnitude slower per op),
    as do larger or pipelined (unrolled) regions.
    """
    from repro.dyser.ops import FuCapability, capability_of

    if unroll_factor > 1:
        return
    caps = {
        capability_of(node.op)
        for node in partition.config.dfg.nodes.values()
    }
    expensive = {FuCapability.FP, FuCapability.FPDIV, FuCapability.MUL}
    if partition.execute_ops < 8 and not (caps & expensive):
        raise RegionRejected(
            "unprofitable: small integer-only slice, one invocation "
            "per iteration")


def _loop_inductions(func: Function, loop: Loop) -> set[Value]:
    """Header phis recognized as affine inductions (pre-flattening)."""
    analysis = AffineAnalysis()
    for block in func.block_order():
        if block.name in loop.blocks:
            analysis.visit_block(block)
    header = func.blocks[loop.header]
    preds_in_loop = [
        p for p in func.predecessors()[loop.header] if p in loop.blocks
    ]
    inductions: set[Value] = set()
    for phi in header.phis:
        latch_values = {
            phi.incomings[p] for p in preds_in_loop if p in phi.incomings
        }
        if len(latch_values) != 1:
            continue
        (latch_value,) = latch_values
        if induction_step(analysis, phi.result, latch_value) is not None:
            inductions.add(phi.result)
    return inductions
