"""Control-flow shape classification for candidate regions.

The paper's second key finding: the compiler extracts computationally
intensive regular *and* irregular code well, but for non-computationally-
intense irregular code **two control-flow shapes curtail its
effectiveness**.  Following the DySER literature we reconstruct these as:

- ``LOOP_CARRIED_CONTROL`` — a loop whose *control decision* depends on a
  loop-carried, non-induction value (convergence loops, pointer chasing):
  invocations cannot be pipelined because iteration i+1's control waits on
  iteration i's data.
- ``DEEP_DIAMONDS`` — long chains / deep nests of data-dependent diamonds:
  if-conversion must execute all paths, so the fabric computes mostly
  discarded work and the region's useful-op density collapses.

Plus the supporting shapes the selector needs:

- ``STRAIGHT`` — single-block body (regular code);
- ``DIAMOND`` — modest internal control flow, profitable to if-convert;
- ``MULTI_EXIT`` — side exits (break): not if-convertible, rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.compiler.cfg import Loop, loop_exits
from repro.compiler.ir import CondBr, Function, Phi, Value


class Shape(enum.Enum):
    STRAIGHT = "straight"
    DIAMOND = "diamond"
    DEEP_DIAMONDS = "deep_diamonds"
    LOOP_CARRIED_CONTROL = "loop_carried_control"
    MULTI_EXIT = "multi_exit"


#: Diamonds beyond this count classify as DEEP_DIAMONDS.
DEEP_DIAMOND_THRESHOLD = 3


@dataclass
class ShapeReport:
    shape: Shape
    diamonds: int
    exits: int
    #: True when the loop's continue-condition consumes loop-carried,
    #: non-induction data.
    carried_control: bool

    @property
    def curtails_compiler(self) -> bool:
        """The paper's two problematic shapes."""
        return self.shape in (
            Shape.LOOP_CARRIED_CONTROL, Shape.DEEP_DIAMONDS)


def classify_region(func: Function, loop: Loop,
                    induction_phis: set[Value] | None = None
                    ) -> ShapeReport:
    """Classify a natural loop's control-flow shape.

    Args:
        func: the function (pre-if-conversion).
        loop: the candidate loop.
        induction_phis: header phi results known to be affine inductions;
            loop-carried control through *only* these is normal loop
            structure, not the pathological shape.
    """
    induction_phis = induction_phis or set()
    exits = loop_exits(func, loop)
    diamonds = sum(
        1 for name in loop.body_blocks()
        if isinstance(func.blocks[name].terminator, CondBr)
    )
    carried = _carried_control(func, loop, induction_phis)

    if len(exits) > 1:
        shape = Shape.MULTI_EXIT
    elif carried:
        shape = Shape.LOOP_CARRIED_CONTROL
    elif diamonds == 0:
        shape = Shape.STRAIGHT
    elif diamonds <= DEEP_DIAMOND_THRESHOLD:
        shape = Shape.DIAMOND
    else:
        shape = Shape.DEEP_DIAMONDS
    return ShapeReport(shape=shape, diamonds=diamonds,
                       exits=len(exits), carried_control=carried)


#: Shape -> (diagnostic code, why the shape curtails the compiler).
#: The paper's E7 finding, reconstructed as stable tool output.
SHAPE_ADVISORY_CODES = {
    Shape.MULTI_EXIT: (
        "RPR301",
        "a side exit (break) leaves no single reconvergence point, so "
        "the region is not if-convertible"),
    Shape.LOOP_CARRIED_CONTROL: (
        "RPR302",
        "the continue-condition consumes loop-carried non-induction "
        "data, so invocation i+1 cannot issue until invocation i "
        "retires — pipelining collapses"),
    Shape.DEEP_DIAMONDS: (
        "RPR303",
        "if-conversion executes every arm of every diamond, so useful-"
        "op density collapses with nesting depth"),
}


def region_advisories(regions, report=None):
    """Lift driver :class:`~repro.compiler.driver.RegionReport` rows
    into ``RPR3xx`` advisory diagnostics.

    Accepted regions get an ``RPR300`` note; any region — accepted or
    not — whose shape is one of the curtailing shapes *also* gets the
    matching ``RPR301..RPR303`` warning (the E7 story as tool output:
    offloading such a region still works, but pipelining or useful-op
    density collapses).  Rejections for other causes get an ``RPR304``
    note carrying the selector's reason.
    """
    from repro.analysis.diagnostics import DiagnosticReport

    report = report if report is not None else DiagnosticReport()
    by_value = {shape.value: entry
                for shape, entry in SHAPE_ADVISORY_CODES.items()}
    for region in regions:
        where = f"loop {region.loop_header}"
        if region.accepted:
            report.emit(
                "RPR300",
                f"region at {region.loop_header} offloaded: "
                f"{region.execute_ops} execute ops, "
                f"{region.input_ports} in / {region.output_ports} out "
                f"ports, unroll x{region.unrolled}"
                + (", vectorized" if region.vectorized else ""),
                location=where, source="shapes",
                loop=region.loop_header, execute_ops=region.execute_ops,
                unrolled=region.unrolled, vectorized=region.vectorized,
                shape=region.shape)
        advisory = by_value.get(region.shape)
        if advisory is not None:
            code, why = advisory
            verb = "offloaded" if region.accepted else "rejected"
            report.emit(
                code,
                f"region at {region.loop_header} {verb} with "
                f"curtailing shape {region.shape}: {why}",
                location=where, source="shapes",
                loop=region.loop_header, shape=region.shape,
                accepted=region.accepted, reason=region.reason)
        elif not region.accepted:
            report.emit(
                "RPR304",
                f"region at {region.loop_header} rejected: "
                f"{region.reason}",
                location=where, source="shapes",
                loop=region.loop_header, shape=region.shape,
                reason=region.reason)
    return report


def _carried_control(func: Function, loop: Loop,
                     induction_phis: set[Value]) -> bool:
    """Does any branch in the loop depend on a loop-carried value that is
    not a recognized induction?

    We take the transitive closure of values flowing into header phis'
    non-induction results and check whether any CondBr condition (header
    or body) uses them.
    """
    header = func.blocks[loop.header]
    carried_roots = {
        phi.result for phi in header.phis
        if phi.result not in induction_phis
    }
    if not carried_roots:
        return False
    # Forward closure within the loop: values computed from carried roots.
    tainted: set[Value] = set(carried_roots)
    changed = True
    while changed:
        changed = False
        for name in loop.blocks:
            for instr in func.blocks[name].all_instrs():
                if instr.result is None or instr.result in tainted:
                    continue
                if isinstance(instr, Phi) and name == loop.header:
                    continue
                if any(isinstance(u, Value) and u in tainted
                       for u in instr.uses()):
                    tainted.add(instr.result)
                    changed = True
    for name in loop.blocks:
        term = func.blocks[name].terminator
        if isinstance(term, CondBr) and isinstance(term.cond, Value) \
                and term.cond in tainted:
            return True
    return False
