"""Control-flow shape classification for candidate regions.

The paper's second key finding: the compiler extracts computationally
intensive regular *and* irregular code well, but for non-computationally-
intense irregular code **two control-flow shapes curtail its
effectiveness**.  Following the DySER literature we reconstruct these as:

- ``LOOP_CARRIED_CONTROL`` — a loop whose *control decision* depends on a
  loop-carried, non-induction value (convergence loops, pointer chasing):
  invocations cannot be pipelined because iteration i+1's control waits on
  iteration i's data.
- ``DEEP_DIAMONDS`` — long chains / deep nests of data-dependent diamonds:
  if-conversion must execute all paths, so the fabric computes mostly
  discarded work and the region's useful-op density collapses.

Plus the supporting shapes the selector needs:

- ``STRAIGHT`` — single-block body (regular code);
- ``DIAMOND`` — modest internal control flow, profitable to if-convert;
- ``MULTI_EXIT`` — side exits (break): not if-convertible, rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.compiler.cfg import Loop, loop_exits
from repro.compiler.ir import CondBr, Function, Phi, Value


class Shape(enum.Enum):
    STRAIGHT = "straight"
    DIAMOND = "diamond"
    DEEP_DIAMONDS = "deep_diamonds"
    LOOP_CARRIED_CONTROL = "loop_carried_control"
    MULTI_EXIT = "multi_exit"


#: Diamonds beyond this count classify as DEEP_DIAMONDS.
DEEP_DIAMOND_THRESHOLD = 3


@dataclass
class ShapeReport:
    shape: Shape
    diamonds: int
    exits: int
    #: True when the loop's continue-condition consumes loop-carried,
    #: non-induction data.
    carried_control: bool

    @property
    def curtails_compiler(self) -> bool:
        """The paper's two problematic shapes."""
        return self.shape in (
            Shape.LOOP_CARRIED_CONTROL, Shape.DEEP_DIAMONDS)


def classify_region(func: Function, loop: Loop,
                    induction_phis: set[Value] | None = None
                    ) -> ShapeReport:
    """Classify a natural loop's control-flow shape.

    Args:
        func: the function (pre-if-conversion).
        loop: the candidate loop.
        induction_phis: header phi results known to be affine inductions;
            loop-carried control through *only* these is normal loop
            structure, not the pathological shape.
    """
    induction_phis = induction_phis or set()
    exits = loop_exits(func, loop)
    diamonds = sum(
        1 for name in loop.body_blocks()
        if isinstance(func.blocks[name].terminator, CondBr)
    )
    carried = _carried_control(func, loop, induction_phis)

    if len(exits) > 1:
        shape = Shape.MULTI_EXIT
    elif carried:
        shape = Shape.LOOP_CARRIED_CONTROL
    elif diamonds == 0:
        shape = Shape.STRAIGHT
    elif diamonds <= DEEP_DIAMOND_THRESHOLD:
        shape = Shape.DIAMOND
    else:
        shape = Shape.DEEP_DIAMONDS
    return ShapeReport(shape=shape, diamonds=diamonds,
                       exits=len(exits), carried_control=carried)


def _carried_control(func: Function, loop: Loop,
                     induction_phis: set[Value]) -> bool:
    """Does any branch in the loop depend on a loop-carried value that is
    not a recognized induction?

    We take the transitive closure of values flowing into header phis'
    non-induction results and check whether any CondBr condition (header
    or body) uses them.
    """
    header = func.blocks[loop.header]
    carried_roots = {
        phi.result for phi in header.phis
        if phi.result not in induction_phis
    }
    if not carried_roots:
        return False
    # Forward closure within the loop: values computed from carried roots.
    tainted: set[Value] = set(carried_roots)
    changed = True
    while changed:
        changed = False
        for name in loop.blocks:
            for instr in func.blocks[name].all_instrs():
                if instr.result is None or instr.result in tainted:
                    continue
                if isinstance(instr, Phi) and name == loop.header:
                    continue
                if any(isinstance(u, Value) and u in tainted
                       for u in instr.uses()):
                    tainted.add(instr.result)
                    changed = True
    for name in loop.blocks:
        term = func.blocks[name].terminator
        if isinstance(term, CondBr) and isinstance(term.cond, Value) \
                and term.cond in tainted:
            return True
    return False
