"""Out-of-SSA lowering and linear-scan register allocation.

Pipeline:

1. :func:`split_critical_edges` — so phi-copies have a safe home;
2. :func:`lower_phis` — phis become parallel copies on predecessor edges,
   sequentialized with a scratch register for cycles;
3. liveness analysis (iterative, per block);
4. :func:`allocate` — Poletto-style linear scan over the block layout
   order, with furthest-end spilling.  Spilled values live in a spill
   area whose base address the core installs in r28 before running.

Register conventions (see :mod:`repro.isa.instruction` for args):

- r0 zero; r8..r15 / f8..f15 arguments;
- r16..r27, r1..r7 / f16..f27, f1..f7 allocatable;
- r28 spill-area base; r30, r31 / f30, f31 codegen scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import (
    Block,
    CondBr,
    Const,
    Copy,
    Function,
    Jump,
    Operand,
    Phi,
    Value,
)
from repro.compiler.types import Scalar
from repro.errors import CompilerError

SPILL_BASE_REG = 28
SCRATCH_INT = (30, 31)
SCRATCH_FP = (30, 31)
ALLOCATABLE_INT = tuple(range(16, 28)) + tuple(range(1, 8))
ALLOCATABLE_FP = tuple(range(16, 28)) + tuple(range(1, 8))


# -- out-of-SSA ---------------------------------------------------------------


def split_critical_edges(func: Function) -> None:
    """Insert an empty block on every edge A->B where A has multiple
    successors and B has multiple predecessors."""
    preds = func.predecessors()
    for block in list(func.blocks.values()):
        term = block.terminator
        if not isinstance(term, CondBr):
            continue
        for attr in ("if_true", "if_false"):
            succ = getattr(term, attr)
            if len(preds[succ]) <= 1:
                continue
            middle = func.new_block("crit")
            middle.terminator = Jump(succ)
            setattr(term, attr, middle.name)
            for phi in func.blocks[succ].phis:
                if block.name in phi.incomings:
                    phi.incomings[middle.name] = phi.incomings.pop(
                        block.name)
            # keep preds in sync for subsequent edges of the same block
            preds[succ] = [p if p != block.name else middle.name
                           for p in preds[succ]]
            preds[middle.name] = [block.name]


def lower_phis(func: Function) -> None:
    """Replace phis with copies in predecessors (parallel-copy aware)."""
    split_critical_edges(func)
    for block in func.blocks.values():
        if not block.phis:
            continue
        preds = func.predecessors()[block.name]
        for pred_name in preds:
            pred = func.blocks[pred_name]
            moves = [
                (phi.result, phi.incomings[pred_name])
                for phi in block.phis
                if phi.incomings[pred_name] is not phi.result
            ]
            for dst, src in _sequentialize(func, moves):
                pred.instrs.append(Copy(result=dst, src=src))
        block.phis = []


def _sequentialize(func: Function, moves: list[tuple[Value, Operand]]
                   ) -> list[tuple[Value, Operand]]:
    """Order parallel moves; break cycles with a fresh temporary."""
    ordered: list[tuple[Value, Operand]] = []
    pending = [(d, s) for d, s in moves if not (
        isinstance(s, Value) and s is d)]
    while pending:
        progressed = False
        for i, (dst, src) in enumerate(pending):
            # Safe to emit when no other pending move still reads dst.
            if not any(isinstance(s, Value) and s is dst
                       for d2, s in pending if d2 is not dst):
                ordered.append((dst, src))
                pending.pop(i)
                progressed = True
                break
        if not progressed:
            # Cycle: save the first destination in a temp, then redirect
            # every pending reader of that destination to the temp.
            dst, _src = pending[0]
            temp = func.new_value(dst.scalar, "swap")
            ordered.append((temp, dst))
            pending = [
                (d, temp if (isinstance(s, Value) and s is dst) else s)
                for d, s in pending
            ]
        if len(ordered) > 10000:  # pragma: no cover - safety valve
            raise CompilerError("phi copy sequentialization diverged")
    return ordered


# -- liveness -------------------------------------------------------------------


def block_liveness(func: Function) -> dict[str, set[Value]]:
    """live-out set per block (post-phi-lowering IR)."""
    use_sets: dict[str, set[Value]] = {}
    def_sets: dict[str, set[Value]] = {}
    for block in func.blocks.values():
        uses: set[Value] = set()
        defs: set[Value] = set()
        for instr in block.instrs:
            for op in instr.uses():
                if isinstance(op, Value) and op not in defs:
                    uses.add(op)
            if instr.result is not None:
                defs.add(instr.result)
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Value) and op not in defs:
                    uses.add(op)
        use_sets[block.name] = uses
        def_sets[block.name] = defs
    live_in: dict[str, set[Value]] = {n: set() for n in func.blocks}
    live_out: dict[str, set[Value]] = {n: set() for n in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in func.blocks.values():
            name = block.name
            out: set[Value] = set()
            if block.terminator is not None:
                for succ in block.terminator.successors():
                    out |= live_in[succ]
            inn = use_sets[name] | (out - def_sets[name])
            if out != live_out[name] or inn != live_in[name]:
                live_out[name] = out
                live_in[name] = inn
                changed = True
    return live_out


# -- linear scan -------------------------------------------------------------------


@dataclass
class Interval:
    value: Value
    start: int
    end: int


@dataclass
class Allocation:
    """Result of register allocation."""

    #: Value -> physical register index (within its file).
    regs: dict[Value, int] = field(default_factory=dict)
    #: Value -> spill slot index (word offset in the spill area).
    spills: dict[Value, int] = field(default_factory=dict)
    spill_words: int = 0

    def location(self, value: Value) -> tuple[str, int]:
        if value in self.regs:
            return ("reg", self.regs[value])
        return ("spill", self.spills[value])


def build_intervals(func: Function) -> tuple[list[Interval], list[Block]]:
    """Single-interval-per-value live ranges over the layout order."""
    layout = [b for b in func.block_order() if b.name in func.blocks]
    live_out = block_liveness(func)
    position: dict[int, int] = {}
    pos = 0
    starts: dict[Value, int] = {}
    ends: dict[Value, int] = {}

    def touch(value: Value, p: int) -> None:
        starts.setdefault(value, p)
        ends[value] = max(ends.get(value, p), p)

    block_bounds: dict[str, tuple[int, int]] = {}
    for block in layout:
        begin = pos
        for instr in block.instrs:
            for op in instr.uses():
                if isinstance(op, Value):
                    touch(op, pos)
            if instr.result is not None:
                touch(instr.result, pos)
            pos += 1
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Value):
                    touch(op, pos)
        pos += 1
        block_bounds[block.name] = (begin, pos - 1)
    # Params are defined at position -1 (the prologue), regardless of
    # where their first use falls.
    for param in func.params:
        starts[param.value] = -1
        ends.setdefault(param.value, -1)
    # Extend values live across a block's exit to that block's end: a
    # value in live_out of B must survive the whole of B's successors'
    # iterations (covers loop back edges).
    changed = True
    while changed:
        changed = False
        for block in layout:
            _begin, end_pos = block_bounds[block.name]
            for value in live_out[block.name]:
                if value not in starts:
                    continue
                if ends[value] < end_pos:
                    ends[value] = end_pos
                    changed = True
    intervals = [
        Interval(v, starts[v], ends[v]) for v in starts
    ]
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, layout


def allocate(func: Function) -> Allocation:
    """Linear-scan allocation with furthest-end spilling."""
    intervals, _layout = build_intervals(func)
    alloc = Allocation()
    active: dict[Scalar, list[Interval]] = {
        Scalar.INT: [], Scalar.FLOAT: []}
    free: dict[Scalar, list[int]] = {
        Scalar.INT: list(ALLOCATABLE_INT),
        Scalar.FLOAT: list(ALLOCATABLE_FP),
    }
    next_slot = 0
    for interval in intervals:
        scalar = interval.value.scalar
        pool = active[scalar]
        # Expire finished intervals.
        for old in list(pool):
            if old.end < interval.start:
                pool.remove(old)
                free[scalar].append(alloc.regs[old.value])
        if free[scalar]:
            alloc.regs[interval.value] = free[scalar].pop(0)
            pool.append(interval)
            continue
        # Spill the interval (active or current) that ends furthest away.
        victim = max(pool, key=lambda iv: iv.end)
        if victim.end > interval.end:
            alloc.regs[interval.value] = alloc.regs.pop(victim.value)
            alloc.spills[victim.value] = next_slot
            pool.remove(victim)
            pool.append(interval)
        else:
            alloc.spills[interval.value] = next_slot
        next_slot += 1
    alloc.spill_words = next_slot
    return alloc
