"""AST -> SSA lowering with on-the-fly SSA construction.

Uses the Braun et al. (CC 2013) algorithm: variables are written to a
per-block definition table; reads recurse through predecessors, creating
phis lazily and removing the trivial ones.  This avoids a separate
dominance-frontier pass and produces minimal-ish SSA directly.

Type rules: int and float scalars; mixed arithmetic promotes to float;
assigning float to an int variable requires an explicit ``int()`` cast;
array indices must be int; conditions are int (floats must be compared).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import ast_nodes as ast
from repro.compiler.ir import (
    Block,
    Compute,
    CondBr,
    Const,
    Function,
    Jump,
    Load,
    Operand,
    Param,
    Phi,
    Ret,
    Store,
    Value,
    const_int,
)
from repro.compiler.types import Scalar
from repro.dyser.ops import FuOp
from repro.errors import TypeCheckError

_WORD_SHIFT = 3  # 8-byte words


@dataclass
class VarInfo:
    key: str                    # unique key into the SSA definition table
    scalar: Scalar
    is_array: bool = False
    base: Value | None = None   # array base address (arrays only)


class IrGen:
    """Lowers one kernel to a :class:`Function`."""

    def __init__(self, kernel: ast.Kernel) -> None:
        self.kernel = kernel
        self.func = Function(kernel.name)
        # SSA bookkeeping (Braun et al.).
        self.current_defs: dict[tuple[str, str], Operand] = {}
        self.sealed: set[str] = set()
        self.incomplete: dict[str, dict[str, Phi]] = {}
        self.var_scalars: dict[str, Scalar] = {}
        # Lexical scoping.
        self.scopes: list[dict[str, VarInfo]] = [{}]
        self._unique = 0
        # Loop context for break/continue: (continue_target, break_target).
        self.loop_stack: list[tuple[str, str]] = []

    # ---------------- scoping -------------------------------------------

    def declare(self, name: str, scalar: Scalar, line: int,
                is_array: bool = False, base: Value | None = None) -> VarInfo:
        if name in self.scopes[-1]:
            raise TypeCheckError(
                f"line {line}: redeclaration of {name!r} in the same scope")
        self._unique += 1
        info = VarInfo(f"{name}${self._unique}", scalar, is_array, base)
        self.scopes[-1][name] = info
        self.var_scalars[info.key] = scalar
        return info

    def lookup(self, name: str, line: int) -> VarInfo:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise TypeCheckError(f"line {line}: undefined variable {name!r}")

    # ---------------- SSA definition table (Braun et al.) -----------------

    def write_var(self, key: str, block: str, value: Operand) -> None:
        self.current_defs[(key, block)] = value

    def read_var(self, key: str, block: str) -> Operand:
        if (key, block) in self.current_defs:
            return self.current_defs[(key, block)]
        return self._read_var_recursive(key, block)

    def _read_var_recursive(self, key: str, block: str) -> Operand:
        preds = self.func.predecessors()[block]
        if block not in self.sealed:
            phi = Phi(result=self.func.new_value(
                self.var_scalars[key], key.split("$")[0]))
            self.func.blocks[block].phis.append(phi)
            self.incomplete.setdefault(block, {})[key] = phi
            value: Operand = phi.result
        elif len(preds) == 1:
            value = self.read_var(key, preds[0])
        else:
            phi = Phi(result=self.func.new_value(
                self.var_scalars[key], key.split("$")[0]))
            self.func.blocks[block].phis.append(phi)
            self.write_var(key, block, phi.result)
            value = self._add_phi_operands(key, phi, block)
        self.write_var(key, block, value)
        return value

    def _add_phi_operands(self, key: str, phi: Phi, block: str) -> Operand:
        for pred in self.func.predecessors()[block]:
            phi.incomings[pred] = self.read_var(key, pred)
        return self._try_remove_trivial(phi, block)

    def _try_remove_trivial(self, phi: Phi, block: str) -> Operand:
        uniques = {
            op for op in phi.incomings.values() if op is not phi.result
        }
        if len(uniques) != 1:
            return phi.result
        (replacement,) = uniques
        # Remove the phi and rewrite every use of its result.
        self.func.blocks[block].phis.remove(phi)
        mapping = {phi.result: replacement}
        dependents: list[tuple[Phi, str]] = []
        for bname, blk in self.func.blocks.items():
            for other in blk.all_instrs():
                if other is phi:
                    continue
                if phi.result in other.uses():
                    other.replace_uses(mapping)
                    if isinstance(other, Phi):
                        dependents.append((other, bname))
            term = blk.terminator
            if isinstance(term, CondBr) and term.cond is phi.result:
                term.cond = replacement
        for (k, b), v in list(self.current_defs.items()):
            if v is phi.result:
                self.current_defs[(k, b)] = replacement
        for dep, bname in dependents:
            if dep in self.func.blocks[bname].phis:
                self._try_remove_trivial(dep, bname)
        return replacement

    def seal(self, block: str) -> None:
        for key, phi in self.incomplete.pop(block, {}).items():
            self._add_phi_operands(key, phi, block)
        self.sealed.add(block)

    # ---------------- expression lowering --------------------------------

    def emit(self, block: Block, instr) -> None:
        block.instrs.append(instr)

    def compute(self, block: Block, op: FuOp, args: list[Operand],
                scalar: Scalar, hint: str = "") -> Value:
        result = self.func.new_value(scalar, hint)
        self.emit(block, Compute(result=result, op=op, args=args))
        return result

    def to_float(self, block: Block, op: Operand) -> Operand:
        if isinstance(op, Const):
            return Const(float(op.value), Scalar.FLOAT)
        if op.scalar is Scalar.FLOAT:
            return op
        return self.compute(block, FuOp.I2F, [op], Scalar.FLOAT)

    def coerce_pair(self, block: Block, a: Operand, b: Operand
                    ) -> tuple[Operand, Operand, Scalar]:
        sa = a.scalar
        sb = b.scalar
        if Scalar.FLOAT in (sa, sb):
            return self.to_float(block, a), self.to_float(block, b), \
                Scalar.FLOAT
        return a, b, Scalar.INT

    _INT_ARITH = {
        "+": FuOp.ADD, "-": FuOp.SUB, "*": FuOp.MUL, "/": FuOp.DIV,
        "%": FuOp.REM, "<<": FuOp.SLL, ">>": FuOp.SRA,
        "&": FuOp.AND, "|": FuOp.OR, "^": FuOp.XOR,
    }
    _FLOAT_ARITH = {
        "+": FuOp.FADD, "-": FuOp.FSUB, "*": FuOp.FMUL, "/": FuOp.FDIV,
    }

    def gen_expr(self, block: Block, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLit):
            return const_int(expr.value)
        if isinstance(expr, ast.FloatLit):
            return Const(expr.value, Scalar.FLOAT)
        if isinstance(expr, ast.Name):
            info = self.lookup(expr.ident, expr.line)
            if info.is_array:
                raise TypeCheckError(
                    f"line {expr.line}: array {expr.ident!r} used as a "
                    f"scalar")
            return self.read_var(info.key, block.name)
        if isinstance(expr, ast.Index):
            addr = self.gen_address(block, expr)
            info = self.lookup(expr.base, expr.line)
            result = self.func.new_value(info.scalar, expr.base)
            self.emit(block, Load(result=result, addr=addr))
            return result
        if isinstance(expr, ast.Unary):
            return self.gen_unary(block, expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(block, expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(block, expr)
        raise TypeCheckError(f"line {expr.line}: cannot lower {expr!r}")

    def gen_address(self, block: Block, expr: ast.Index) -> Operand:
        info = self.lookup(expr.base, expr.line)
        if not info.is_array:
            raise TypeCheckError(
                f"line {expr.line}: {expr.base!r} is not an array")
        index = self.gen_expr(block, expr.index)
        if index.scalar is not Scalar.INT:
            raise TypeCheckError(
                f"line {expr.line}: array index must be int")
        offset = self.compute(
            block, FuOp.SLL, [index, const_int(_WORD_SHIFT)], Scalar.INT)
        return self.compute(
            block, FuOp.ADD, [info.base, offset], Scalar.INT, "addr")

    def gen_unary(self, block: Block, expr: ast.Unary) -> Operand:
        operand = self.gen_expr(block, expr.operand)
        if expr.op == "-":
            if isinstance(operand, Const):
                return Const(-operand.value, operand.scalar)
            if operand.scalar is Scalar.FLOAT:
                return self.compute(block, FuOp.FNEG, [operand],
                                    Scalar.FLOAT)
            return self.compute(block, FuOp.SUB, [const_int(0), operand],
                                Scalar.INT)
        # "!" — logical negation of an int condition.
        operand = self._as_bool(block, operand, expr.line)
        return self.compute(block, FuOp.SEQ, [operand, const_int(0)],
                            Scalar.INT)

    def _as_bool(self, block: Block, op: Operand, line: int) -> Operand:
        if op.scalar is Scalar.FLOAT:
            raise TypeCheckError(
                f"line {line}: float used as a condition; compare it "
                f"explicitly")
        return op

    def gen_binary(self, block: Block, expr: ast.Binary) -> Operand:
        op = expr.op
        left = self.gen_expr(block, expr.left)
        right = self.gen_expr(block, expr.right)

        if op in ("&&", "||"):
            left = self._normalize_bool(block, left, expr.line)
            right = self._normalize_bool(block, right, expr.line)
            fu = FuOp.AND if op == "&&" else FuOp.OR
            return self.compute(block, fu, [left, right], Scalar.INT)

        if op in ("<", "<=", ">", ">=", "==", "!="):
            return self.gen_compare(block, op, left, right)

        if op in ("<<", ">>", "&", "|", "^", "%"):
            if Scalar.FLOAT in (left.scalar, right.scalar):
                raise TypeCheckError(
                    f"line {expr.line}: {op!r} requires int operands")
            return self.compute(block, self._INT_ARITH[op], [left, right],
                                Scalar.INT)

        left, right, scalar = self.coerce_pair(block, left, right)
        table = self._FLOAT_ARITH if scalar is Scalar.FLOAT \
            else self._INT_ARITH
        return self.compute(block, table[op], [left, right], scalar)

    def gen_compare(self, block: Block, op: str, left: Operand,
                    right: Operand) -> Operand:
        left, right, scalar = self.coerce_pair(block, left, right)
        is_fp = scalar is Scalar.FLOAT
        if op == ">":
            op, left, right = "<", right, left
        elif op == ">=":
            op, left, right = "<=", right, left
        if op == "<":
            fu = FuOp.FLT if is_fp else FuOp.SLT
            return self.compute(block, fu, [left, right], Scalar.INT)
        if op == "<=":
            if is_fp:
                return self.compute(block, FuOp.FLE, [left, right],
                                    Scalar.INT)
            # a <= b  <=>  !(b < a)
            lt = self.compute(block, FuOp.SLT, [right, left], Scalar.INT)
            return self.compute(block, FuOp.XOR, [lt, const_int(1)],
                                Scalar.INT)
        eq = self.compute(block, FuOp.FEQ if is_fp else FuOp.SEQ,
                          [left, right], Scalar.INT)
        if op == "==":
            return eq
        return self.compute(block, FuOp.XOR, [eq, const_int(1)], Scalar.INT)

    def _normalize_bool(self, block: Block, op: Operand, line: int
                        ) -> Operand:
        op = self._as_bool(block, op, line)
        # Normalize to 0/1: x != 0.
        ne = self.compute(block, FuOp.SEQ, [op, const_int(0)], Scalar.INT)
        return self.compute(block, FuOp.XOR, [ne, const_int(1)], Scalar.INT)

    def gen_call(self, block: Block, expr: ast.Call) -> Operand:
        name = expr.func
        args = [self.gen_expr(block, a) for a in expr.args]

        def need(n: int) -> None:
            if len(args) != n:
                raise TypeCheckError(
                    f"line {expr.line}: {name} takes {n} argument(s)")

        if name == "sqrt":
            need(1)
            return self.compute(block, FuOp.FSQRT,
                                [self.to_float(block, args[0])],
                                Scalar.FLOAT)
        if name == "float":
            need(1)
            return self.to_float(block, args[0])
        if name == "int":
            need(1)
            if args[0].scalar is Scalar.INT:
                return args[0]
            return self.compute(block, FuOp.F2I, [args[0]], Scalar.INT)
        if name == "abs":
            need(1)
            (a,) = args
            if a.scalar is Scalar.FLOAT:
                return self.compute(block, FuOp.FABS, [a], Scalar.FLOAT)
            neg = self.compute(block, FuOp.SUB, [const_int(0), a],
                               Scalar.INT)
            is_neg = self.compute(block, FuOp.SLT, [a, const_int(0)],
                                  Scalar.INT)
            return self.compute(block, FuOp.SEL, [is_neg, neg, a],
                                Scalar.INT)
        if name in ("min", "max"):
            need(2)
            a, b, scalar = self.coerce_pair(block, args[0], args[1])
            table = {
                ("min", Scalar.INT): FuOp.MIN,
                ("max", Scalar.INT): FuOp.MAX,
                ("min", Scalar.FLOAT): FuOp.FMIN,
                ("max", Scalar.FLOAT): FuOp.FMAX,
            }
            return self.compute(block, table[(name, scalar)], [a, b],
                                scalar)
        raise TypeCheckError(
            f"line {expr.line}: unknown intrinsic {name!r}")

    # ---------------- statement lowering -----------------------------------

    def gen_stmts(self, block: Block, stmts: list[ast.Stmt]) -> Block | None:
        """Lower a statement list; returns the live exit block or None if
        control never falls through (break/continue)."""
        current: Block | None = block
        for stmt in stmts:
            if current is None:
                # Unreachable code after break/continue: skip silently,
                # matching C compilers' permissiveness.
                break
            current = self.gen_stmt(current, stmt)
        return current

    def gen_stmt(self, block: Block, stmt: ast.Stmt) -> Block | None:
        if isinstance(stmt, ast.Decl):
            value = self.gen_expr(block, stmt.init)
            value = self._coerce_assign(block, value, stmt.type.scalar,
                                        stmt.line)
            info = self.declare(stmt.name, stmt.type.scalar, stmt.line)
            self.write_var(info.key, block.name, value)
            return block
        if isinstance(stmt, ast.Assign):
            return self.gen_assign(block, stmt)
        if isinstance(stmt, ast.If):
            return self.gen_if(block, stmt)
        if isinstance(stmt, ast.For):
            return self.gen_for(block, stmt)
        if isinstance(stmt, ast.While):
            return self.gen_while(block, stmt)
        if isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise TypeCheckError(
                    f"line {stmt.line}: break outside a loop")
            block.terminator = Jump(self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise TypeCheckError(
                    f"line {stmt.line}: continue outside a loop")
            block.terminator = Jump(self.loop_stack[-1][0])
            return None
        raise TypeCheckError(f"line {stmt.line}: cannot lower {stmt!r}")

    def _coerce_assign(self, block: Block, value: Operand, target: Scalar,
                       line: int) -> Operand:
        if value.scalar is target:
            return value
        if target is Scalar.FLOAT:
            return self.to_float(block, value)
        raise TypeCheckError(
            f"line {line}: cannot assign float to int without int()")

    def gen_assign(self, block: Block, stmt: ast.Assign) -> Block:
        value = self.gen_expr(block, stmt.value)
        if isinstance(stmt.target, ast.Name):
            info = self.lookup(stmt.target.ident, stmt.line)
            if info.is_array:
                raise TypeCheckError(
                    f"line {stmt.line}: cannot assign to array "
                    f"{stmt.target.ident!r}")
            value = self._coerce_assign(block, value, info.scalar,
                                        stmt.line)
            self.write_var(info.key, block.name, value)
            return block
        info = self.lookup(stmt.target.base, stmt.line)
        value = self._coerce_assign(block, value, info.scalar, stmt.line)
        addr = self.gen_address(block, stmt.target)
        self.emit(block, Store(addr=addr, value=value))
        return block

    def gen_if(self, block: Block, stmt: ast.If) -> Block | None:
        cond = self._as_bool(block, self.gen_expr(block, stmt.cond),
                             stmt.line)
        then_block = self.func.new_block("then")
        merge_block = self.func.new_block("endif")
        if stmt.else_body:
            else_block = self.func.new_block("else")
            block.terminator = CondBr(cond, then_block.name,
                                      else_block.name)
        else:
            else_block = None
            block.terminator = CondBr(cond, then_block.name,
                                      merge_block.name)
        self.seal(then_block.name)
        self.scopes.append({})
        then_exit = self.gen_stmts(then_block, stmt.then_body)
        self.scopes.pop()
        if then_exit is not None:
            then_exit.terminator = Jump(merge_block.name)
        else_exit: Block | None = None
        if else_block is not None:
            self.seal(else_block.name)
            self.scopes.append({})
            else_exit = self.gen_stmts(else_block, stmt.else_body)
            self.scopes.pop()
            if else_exit is not None:
                else_exit.terminator = Jump(merge_block.name)
        self.seal(merge_block.name)
        if not self.func.predecessors()[merge_block.name]:
            # Both arms broke out: merge is unreachable.
            del self.func.blocks[merge_block.name]
            self.sealed.discard(merge_block.name)
            return None
        return merge_block

    def gen_for(self, block: Block, stmt: ast.For) -> Block:
        self.scopes.append({})
        after_init = self.gen_stmt(block, stmt.init)
        assert after_init is block
        header = self.func.new_block("for")
        body = self.func.new_block("body")
        step = self.func.new_block("step")
        exit_block = self.func.new_block("endfor")
        block.terminator = Jump(header.name)
        # Header gains a back edge later; leave it unsealed.
        cond = self._as_bool(header, self.gen_expr(header, stmt.cond),
                             stmt.line)
        header.terminator = CondBr(cond, body.name, exit_block.name)
        self.seal(body.name)
        self.loop_stack.append((step.name, exit_block.name))
        self.scopes.append({})
        body_exit = self.gen_stmts(body, stmt.body)
        self.scopes.pop()
        self.loop_stack.pop()
        if body_exit is not None:
            body_exit.terminator = Jump(step.name)
        self.seal(step.name)
        if self.func.predecessors()[step.name]:
            step_exit = self.gen_stmt(step, stmt.step)
            step_exit.terminator = Jump(header.name)
        else:
            del self.func.blocks[step.name]
            self.sealed.discard(step.name)
        self.seal(header.name)
        self.seal(exit_block.name)
        self.scopes.pop()
        return exit_block

    def gen_while(self, block: Block, stmt: ast.While) -> Block:
        header = self.func.new_block("while")
        body = self.func.new_block("body")
        exit_block = self.func.new_block("endwhile")
        block.terminator = Jump(header.name)
        cond = self._as_bool(header, self.gen_expr(header, stmt.cond),
                             stmt.line)
        header.terminator = CondBr(cond, body.name, exit_block.name)
        self.seal(body.name)
        self.loop_stack.append((header.name, exit_block.name))
        self.scopes.append({})
        body_exit = self.gen_stmts(body, stmt.body)
        self.scopes.pop()
        self.loop_stack.pop()
        if body_exit is not None:
            body_exit.terminator = Jump(header.name)
        self.seal(header.name)
        self.seal(exit_block.name)
        return exit_block

    # ---------------- entry point -----------------------------------------

    def build(self) -> Function:
        entry = self.func.add_entry()
        self.seal(entry.name)
        for p in self.kernel.params:
            scalar = p.type.scalar
            value = self.func.new_value(
                Scalar.INT if p.type.is_array else scalar, p.name)
            param = Param(p.name, scalar, p.type.is_array, p.is_out,
                          value)
            self.func.params.append(param)
            if p.type.is_array:
                self.declare(p.name, scalar, p.line, is_array=True,
                             base=value)
            else:
                info = self.declare(p.name, scalar, p.line)
                self.write_var(info.key, entry.name, value)
        exit_block = self.gen_stmts(entry, self.kernel.body)
        if exit_block is not None:
            exit_block.terminator = Ret()
        if self.incomplete:
            raise TypeCheckError(
                f"internal: unsealed blocks remain: "
                f"{sorted(self.incomplete)}")
        self.func.verify()
        return self.func


def lower_kernel(kernel: ast.Kernel) -> Function:
    """Lower a parsed kernel to verified SSA."""
    return IrGen(kernel).build()
