"""Types of the kernel language: int, float, and arrays of each.

The language is deliberately small — it models the C subset the DySER
LLVM compiler consumed for its kernel regions: 64-bit integers, doubles,
flat arrays, loops, conditionals and a few math intrinsics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Scalar(enum.Enum):
    INT = "int"
    FLOAT = "float"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


@dataclass(frozen=True)
class Type:
    """A scalar or array type."""

    scalar: Scalar
    is_array: bool = False

    def element(self) -> "Type":
        if not self.is_array:
            raise ValueError(f"{self} is not an array")
        return Type(self.scalar)

    def __str__(self) -> str:
        return f"{self.scalar.value}[]" if self.is_array else self.scalar.value


INT = Type(Scalar.INT)
FLOAT = Type(Scalar.FLOAT)
INT_ARRAY = Type(Scalar.INT, is_array=True)
FLOAT_ARRAY = Type(Scalar.FLOAT, is_array=True)


def unify(a: Type, b: Type) -> Type:
    """Result type of a binary arithmetic op: float wins, arrays illegal."""
    if a.is_array or b.is_array:
        raise ValueError("arithmetic on array values")
    if Scalar.FLOAT in (a.scalar, b.scalar):
        return FLOAT
    return INT
