"""CFG analyses: dominators, natural loops, loop nesting.

These feed region selection: DySER candidate regions are innermost natural
loop bodies (plus their if-convertible internal control flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import Function


def dominators(func: Function) -> dict[str, set[str]]:
    """Classic iterative dominator sets (functions here are small)."""
    names = [b.name for b in func.block_order()
             if b.name in _reachable(func)]
    preds = func.predecessors()
    dom: dict[str, set[str]] = {n: set(names) for n in names}
    dom[func.entry] = {func.entry}
    changed = True
    while changed:
        changed = False
        for name in names:
            if name == func.entry:
                continue
            incoming = [dom[p] for p in preds[name] if p in dom]
            new = set.intersection(*incoming) if incoming else set()
            new = new | {name}
            if new != dom[name]:
                dom[name] = new
                changed = True
    return dom


def _reachable(func: Function) -> set[str]:
    seen: set[str] = set()
    stack = [func.entry]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        term = func.blocks[name].terminator
        if term is not None:
            stack.extend(term.successors())
    return seen


@dataclass
class Loop:
    """A natural loop: header plus the body blocks of its back edges."""

    header: str
    blocks: set[str] = field(default_factory=set)
    #: Loops strictly nested inside this one.
    children: list["Loop"] = field(default_factory=list)
    parent: "Loop | None" = None

    @property
    def depth(self) -> int:
        d, loop = 1, self.parent
        while loop is not None:
            d += 1
            loop = loop.parent
        return d

    def is_innermost(self) -> bool:
        return not self.children

    def body_blocks(self) -> set[str]:
        """Blocks excluding the header (the region candidate)."""
        return self.blocks - {self.header}

    def __repr__(self) -> str:
        return (f"Loop(header={self.header}, blocks={sorted(self.blocks)}, "
                f"depth={self.depth})")


def natural_loops(func: Function) -> list[Loop]:
    """Find natural loops via back edges, merge per header, build nesting.

    Returns all loops, outermost first.
    """
    dom = dominators(func)
    preds = func.predecessors()
    reachable = set(dom)
    per_header: dict[str, set[str]] = {}
    for block in func.blocks.values():
        if block.name not in reachable or block.terminator is None:
            continue
        for succ in block.terminator.successors():
            if succ in dom.get(block.name, set()):
                # back edge block.name -> succ (succ dominates source)
                body = _loop_body(succ, block.name, preds)
                per_header.setdefault(succ, set()).update(body)
    loops = [Loop(header=h, blocks=b) for h, b in per_header.items()]
    loops.sort(key=lambda lp: len(lp.blocks), reverse=True)
    # Nesting: a loop is a child of the smallest loop strictly containing it.
    for inner in loops:
        best: Loop | None = None
        for outer in loops:
            if outer is inner:
                continue
            contains = inner.blocks < outer.blocks or (
                inner.blocks <= outer.blocks
                and inner.header != outer.header)
            if contains and (best is None
                             or len(outer.blocks) < len(best.blocks)):
                best = outer
        if best is not None:
            inner.parent = best
            best.children.append(inner)
    return loops


def _loop_body(header: str, latch: str, preds: dict[str, list[str]]
               ) -> set[str]:
    body = {header, latch}
    stack = [latch]
    while stack:
        name = stack.pop()
        if name == header:
            continue
        for pred in preds[name]:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def innermost_loops(func: Function) -> list[Loop]:
    return [lp for lp in natural_loops(func) if lp.is_innermost()]


def loop_exits(func: Function, loop: Loop) -> list[tuple[str, str]]:
    """Edges (from_block, to_block) leaving the loop."""
    exits = []
    for name in loop.blocks:
        term = func.blocks[name].terminator
        if term is None:
            continue
        for succ in term.successors():
            if succ not in loop.blocks:
                exits.append((name, succ))
    return exits
