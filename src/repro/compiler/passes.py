"""Generic IR cleanup passes: constant folding, copy propagation, dead
code elimination, and unreachable-block removal.

Each pass takes a :class:`Function`, mutates it, and returns True when it
changed anything, so :func:`optimize` can iterate to a fixed point.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Compute,
    CondBr,
    Const,
    Copy,
    Function,
    Jump,
    Load,
    Operand,
    Phi,
    Store,
    Value,
)
from repro.compiler.types import Scalar
from repro.dyser.ops import evaluate


def fold_constants(func: Function) -> bool:
    """Evaluate Compute instructions whose operands are all constants and
    propagate the results."""
    changed = False
    for block in func.blocks.values():
        mapping: dict[Value, Operand] = {}
        kept = []
        for instr in block.instrs:
            if mapping:
                instr.replace_uses(mapping)
            if (isinstance(instr, Compute)
                    and all(isinstance(a, Const) for a in instr.args)):
                raw = evaluate(instr.op, *(a.value for a in instr.args))
                scalar = instr.result.scalar
                folded = Const(
                    float(raw) if scalar is Scalar.FLOAT else int(raw),
                    scalar)
                mapping[instr.result] = folded
                changed = True
            else:
                kept.append(instr)
        block.instrs = kept
        if mapping:
            _rewrite_uses(func, mapping)
    return changed


def propagate_copies(func: Function) -> bool:
    """Replace uses of Copy results with their sources; drop the copies."""
    mapping: dict[Value, Operand] = {}
    for block in func.blocks.values():
        for instr in block.instrs:
            if isinstance(instr, Copy):
                mapping[instr.result] = instr.src
    if not mapping:
        return False
    # Resolve chains (a = copy b; c = copy a).
    def resolve(v: Operand) -> Operand:
        while isinstance(v, Value) and v in mapping:
            v = mapping[v]
        return v

    mapping = {k: resolve(v) for k, v in mapping.items()}
    for block in func.blocks.values():
        block.instrs = [
            i for i in block.instrs if not isinstance(i, Copy)]
    _rewrite_uses(func, mapping)
    return True


def eliminate_dead_code(func: Function) -> bool:
    """Remove instructions whose results are never used (stores and loads
    kept: loads may fault / stores are side effects; loads with unused
    results are still dropped since the simulator's memory cannot fault on
    a mapped address — they are dead weight)."""
    used: set[Value] = set()
    for block in func.blocks.values():
        for instr in block.all_instrs():
            for op in instr.uses():
                if isinstance(op, Value):
                    used.add(op)
        if block.terminator is not None:
            for op in block.terminator.uses():
                if isinstance(op, Value):
                    used.add(op)
    changed = False
    for block in func.blocks.values():
        kept = []
        for instr in block.instrs:
            removable = isinstance(instr, (Compute, Copy, Load))
            if removable and instr.result not in used:
                changed = True
                continue
            kept.append(instr)
        block.instrs = kept
        new_phis = []
        for phi in block.phis:
            if phi.result not in used:
                changed = True
                continue
            new_phis.append(phi)
        block.phis = new_phis
    return changed


def remove_unreachable(func: Function) -> bool:
    """Drop blocks unreachable from the entry; fix phi incomings."""
    reachable: set[str] = set()
    stack = [func.entry]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        term = func.blocks[name].terminator
        if term is not None:
            stack.extend(term.successors())
    dead = set(func.blocks) - reachable
    if not dead:
        return False
    for name in dead:
        del func.blocks[name]
    for block in func.blocks.values():
        for phi in block.phis:
            phi.incomings = {
                b: v for b, v in phi.incomings.items() if b in reachable
            }
    return True


def simplify_branches(func: Function) -> bool:
    """Turn CondBr on a constant into Jump."""
    changed = False
    for block in func.blocks.values():
        term = block.terminator
        if isinstance(term, CondBr) and isinstance(term.cond, Const):
            target = term.if_true if term.cond.value else term.if_false
            dropped = term.if_false if term.cond.value else term.if_true
            block.terminator = Jump(target)
            changed = True
            if dropped != target:
                dropped_block = func.blocks.get(dropped)
                if dropped_block is not None:
                    for phi in dropped_block.phis:
                        phi.incomings.pop(block.name, None)
    return changed


def simplify_trivial_phis(func: Function) -> bool:
    """Remove phis whose incomings are all the same operand."""
    mapping: dict[Value, Operand] = {}
    for block in func.blocks.values():
        kept = []
        for phi in block.phis:
            uniques = {v for v in phi.incomings.values()
                       if v is not phi.result}
            if len(uniques) == 1:
                mapping[phi.result] = next(iter(uniques))
            else:
                kept.append(phi)
        block.phis = kept
    if not mapping:
        return False

    def resolve(v: Operand) -> Operand:
        seen = set()
        while isinstance(v, Value) and v in mapping and v not in seen:
            seen.add(v)
            v = mapping[v]
        return v

    mapping = {k: resolve(v) for k, v in mapping.items()}
    _rewrite_uses(func, mapping)
    return True


def _writes_memory(instr) -> bool:
    from repro.compiler.dyser_ir import DyserStore

    return isinstance(instr, (Store, DyserStore))


def local_cse(func: Function) -> bool:
    """Per-block value numbering: reuse identical pure computations and
    identical loads (until a store, which conservatively invalidates all
    remembered loads)."""
    changed = False
    for block in func.blocks.values():
        available: dict[tuple, Value] = {}
        loads: dict[Operand, Value] = {}
        mapping: dict[Value, Operand] = {}
        kept = []
        for instr in block.instrs:
            if mapping:
                instr.replace_uses(mapping)
            if isinstance(instr, Compute):
                key = (instr.op, tuple(
                    a if isinstance(a, Const) else id(a)
                    for a in instr.args))
                prior = available.get(key)
                if prior is not None:
                    mapping[instr.result] = prior
                    changed = True
                    continue
                available[key] = instr.result
            elif isinstance(instr, Load):
                prior = loads.get(instr.addr)
                if prior is not None:
                    mapping[instr.result] = prior
                    changed = True
                    continue
                loads[instr.addr] = instr.result
            elif _writes_memory(instr):
                loads.clear()
            kept.append(instr)
        block.instrs = kept
        if mapping:
            _rewrite_uses(func, mapping)
    return changed


def licm(func: Function) -> bool:
    """Loop-invariant code motion for pure computations.

    Moves a Compute whose operands are all constants or defined outside
    the loop into the loop's preheader.  Safe unconditionally in this IR:
    compute ops never trap (division by zero is defined).  Runs to a
    local fixed point so chains (``n-1`` feeding a compare) hoist fully.
    Besides speeding the host code, this is what lets the unroller see
    ``i < n-1`` bounds as loop-invariant guards.
    """
    from repro.compiler.cfg import natural_loops

    changed = False
    for loop in natural_loops(func):
        preds = func.predecessors()
        outside = [p for p in preds[loop.header] if p not in loop.blocks]
        if len(outside) != 1:
            continue
        preheader = func.blocks[outside[0]]
        defined_in_loop: set[Value] = set()
        for name in loop.blocks:
            for instr in func.blocks[name].all_instrs():
                if instr.result is not None:
                    defined_in_loop.add(instr.result)
        moved = True
        while moved:
            moved = False
            for name in sorted(loop.blocks):
                block = func.blocks[name]
                kept = []
                for instr in block.instrs:
                    hoistable = isinstance(instr, Compute) and all(
                        isinstance(u, Const) or u not in defined_in_loop
                        for u in instr.uses()
                    )
                    if hoistable:
                        preheader.instrs.append(instr)
                        defined_in_loop.discard(instr.result)
                        moved = changed = True
                    else:
                        kept.append(instr)
                block.instrs = kept
    return changed


def _rewrite_uses(func: Function, mapping: dict[Value, Operand]) -> None:
    for block in func.blocks.values():
        for instr in block.all_instrs():
            instr.replace_uses(mapping)
        term = block.terminator
        if isinstance(term, CondBr) and isinstance(term.cond, Value):
            term.cond = mapping.get(term.cond, term.cond)


#: The standard cleanup pipeline, in application order.
DEFAULT_PASSES = (
    fold_constants,
    propagate_copies,
    simplify_branches,
    remove_unreachable,
    simplify_trivial_phis,
    local_cse,
    eliminate_dead_code,
)


def optimize(func: Function, max_iterations: int = 10) -> Function:
    """Run the cleanup pipeline to a fixed point; verify afterwards."""
    for _ in range(max_iterations):
        changed = False
        for pass_fn in DEFAULT_PASSES:
            changed |= pass_fn(func)
        if not changed:
            break
    func.verify()
    return func
