"""FPGA resource and frequency model.

The prototype synthesizes SPARC-DySER onto a Virtex-5-class FPGA; its
paper reports per-block LUT/FF/BRAM/DSP utilization and the achieved
clock.  We model that with per-component cost tables so E8 can regenerate
the utilization table for any fabric geometry and compare DySER's area to
the OpenSPARC core's.

All numbers are calibrated constants in the spirit of the published
OpenSPARC-on-FPGA and DySER prototype reports: a T1 core is tens of
thousands of LUTs; a 64-FU DySER is comparable to (slightly smaller than)
one core; frequency is limited by the core, with DySER's switch-local
paths closing faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dyser.fabric import Fabric
from repro.dyser.ops import FuCapability


@dataclass(frozen=True)
class ResourceVector:
    """LUTs, flip-flops, BRAM blocks, DSP slices."""

    luts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts, self.ffs + other.ffs,
            self.brams + other.brams, self.dsps + other.dsps)

    def scale(self, k: int) -> "ResourceVector":
        return ResourceVector(
            self.luts * k, self.ffs * k, self.brams * k, self.dsps * k)


@dataclass
class FpgaCostTable:
    """Per-component costs (calibrated constants)."""

    # Host side.
    sparc_core: ResourceVector = field(
        default_factory=lambda: ResourceVector(37500, 23000, 66, 8))
    sparc_fpu: ResourceVector = field(
        default_factory=lambda: ResourceVector(6400, 3100, 2, 12))
    dyser_interface: ResourceVector = field(
        default_factory=lambda: ResourceVector(1450, 1800, 2, 0))

    # DySER fabric, per unit.
    fu_base: ResourceVector = field(
        default_factory=lambda: ResourceVector(240, 190, 0, 0))
    fu_mul_extra: ResourceVector = field(
        default_factory=lambda: ResourceVector(120, 60, 0, 4))
    fu_fp_extra: ResourceVector = field(
        default_factory=lambda: ResourceVector(410, 300, 0, 2))
    fu_fpdiv_extra: ResourceVector = field(
        default_factory=lambda: ResourceVector(1100, 700, 0, 4))
    switch: ResourceVector = field(
        default_factory=lambda: ResourceVector(155, 120, 0, 0))
    port: ResourceVector = field(
        default_factory=lambda: ResourceVector(45, 90, 0, 0))
    config_store_per_kword: ResourceVector = field(
        default_factory=lambda: ResourceVector(0, 0, 2, 0))

    # Frequency model (MHz).
    core_fmax_mhz: float = 50.0
    dyser_base_fmax_mhz: float = 72.0
    #: fmax degrades gently with fabric diameter (longer config/credit
    #: distribution nets).
    dyser_fmax_per_diameter_mhz: float = 0.9


@dataclass
class BlockReport:
    name: str
    resources: ResourceVector
    fmax_mhz: float


def dyser_resources(fabric: Fabric,
                    table: FpgaCostTable | None = None) -> BlockReport:
    """Resource estimate for one DySER fabric instance."""
    table = table or FpgaCostTable()
    geometry = fabric.geometry
    total = ResourceVector()
    for fu in geometry.fus():
        cost = table.fu_base
        caps = fabric.capabilities[fu]
        if FuCapability.MUL in caps:
            cost = cost + table.fu_mul_extra
        if FuCapability.FP in caps:
            cost = cost + table.fu_fp_extra
        if FuCapability.FPDIV in caps:
            cost = cost + table.fu_fpdiv_extra
        total = total + cost
    total = total + table.switch.scale(geometry.num_switches)
    total = total + table.port.scale(
        geometry.num_input_ports + geometry.num_output_ports)
    # Config storage: ~8 words per FU plus routing state per switch.
    config_words = 8 * geometry.num_fus + 4 * geometry.num_switches
    total = total + table.config_store_per_kword.scale(
        max(1, config_words // 1024 + 1))
    diameter = geometry.width + geometry.height
    fmax = table.dyser_base_fmax_mhz - table.dyser_fmax_per_diameter_mhz \
        * diameter
    return BlockReport(
        name=f"dyser_{geometry.width}x{geometry.height}",
        resources=total, fmax_mhz=fmax)


def sparc_core_resources(table: FpgaCostTable | None = None,
                         with_dyser_interface: bool = True) -> BlockReport:
    table = table or FpgaCostTable()
    total = table.sparc_core + table.sparc_fpu
    if with_dyser_interface:
        total = total + table.dyser_interface
    return BlockReport(name="sparc_core", resources=total,
                       fmax_mhz=table.core_fmax_mhz)


def system_report(fabric: Fabric,
                  table: FpgaCostTable | None = None) -> list[BlockReport]:
    """Per-block utilization for the integrated SPARC-DySER system."""
    table = table or FpgaCostTable()
    core = sparc_core_resources(table)
    dyser = dyser_resources(fabric, table)
    system = BlockReport(
        name="sparc_dyser_system",
        resources=core.resources + dyser.resources,
        fmax_mhz=min(core.fmax_mhz, dyser.fmax_mhz))
    return [core, dyser, system]


def utilization_table(fabric: Fabric,
                      table: FpgaCostTable | None = None) -> str:
    """Formatted E8-style table."""
    rows = system_report(fabric, table)
    header = (f"{'block':<22}{'LUTs':>9}{'FFs':>9}{'BRAM':>6}"
              f"{'DSP':>5}{'fmax':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        r = row.resources
        lines.append(
            f"{row.name:<22}{r.luts:>9}{r.ffs:>9}{r.brams:>6}"
            f"{r.dsps:>5}{row.fmax_mhz:>7.1f}M")
    return "\n".join(lines)
