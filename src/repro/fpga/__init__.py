"""FPGA resource and frequency model."""

from repro.fpga.resources import (
    BlockReport,
    FpgaCostTable,
    ResourceVector,
    dyser_resources,
    sparc_core_resources,
    system_report,
    utilization_table,
)

__all__ = [
    "BlockReport",
    "FpgaCostTable",
    "ResourceVector",
    "dyser_resources",
    "sparc_core_resources",
    "system_report",
    "utilization_table",
]
