"""Wire format for the simulation service: JSON over HTTP/1.1.

The service speaks a small, versioned JSON protocol.  Request bodies
carry a ``spec`` object whose keys are :class:`repro.engine.jobs.
JobSpec` field names (``geometry`` as a ``[width, height]`` pair,
``energy_overrides`` as ``[[field, value], ...]``); everything else a
run needs — compiler options, fabric timing, energy model — derives
from the spec exactly as it does in the engine, so a request names the
same design point a :class:`JobSpec` does and shares its content hash.

Endpoints (all responses are JSON envelopes with an ``ok`` bool):

==============================  ====================================
``POST /v1/run``                execute one spec (admission-controlled)
``POST /v1/compile``            compile one spec, report regions
``POST /v1/sweep``              expand a cartesian grid server-side
``POST /v1/lint``               pre-flight lint only, no execution
``POST /v2/jobs``               submit a durable async job (run/sweep)
``GET  /v2/jobs``               list jobs (``?state=`` / ``?tenant=``)
``GET  /v2/jobs/{id}``          poll one job: state, progress, results
``POST /v2/jobs/{id}/cancel``   cancel a queued/running job
``POST /v2/kernels``            register a DSL kernel (422 on reject)
``GET  /v2/kernels``            list registered DSL kernels
``GET  /healthz``               readiness + queue/inflight gauges
``GET  /metrics``               Prometheus text exposition
``GET  /v1/stats``              the metrics registry as JSON
==============================  ====================================

Status codes: ``200`` served, ``400`` malformed request, ``403``
tenant denied, ``404`` unknown endpoint or job, ``413`` oversized
body, ``422`` rejected by pre-flight lint (body carries structured
diagnostics), ``429`` queue full or tenant over quota (``Retry-After``
header set), ``500`` execution failed, ``503`` draining or no live
workers, ``504`` deadline expired while queued.

**Error envelope (v2).**  Every non-200 response from a ``/v2``
endpoint carries one normalized error object::

    {"protocol": "repro-service-v2", "ok": false,
     "error": {"code": "...", "message": "...",
               "diagnostics": [...], "retry_after_s": null}}

``code`` is a stable machine-readable slug (:data:`ERROR_CODES`),
``diagnostics`` carries structured RPR diagnostics when the lint gate
produced them, and ``retry_after_s`` mirrors the ``Retry-After``
header for backpressure errors.  ``/v1`` endpoints keep their
historical loose shapes for compatibility (string ``error``, optional
top-level ``diagnostics``) but attach the same normalized object under
``error_detail`` so clients can migrate field-by-field.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from repro.errors import ReproError
from repro.engine.jobs import JobSpec

#: Protocol version tag carried in every v1 response envelope.
PROTOCOL = "repro-service-v1"

#: Protocol version tag carried in every v2 response envelope.
PROTOCOL_V2 = "repro-service-v2"

#: Default TCP port for ``repro serve`` / ``repro submit``.
DEFAULT_PORT = 8787

#: Largest accepted request body (a sweep grid fits comfortably).
MAX_BODY_BYTES = 1 << 20

#: Terminal per-request statuses reported in response envelopes.
STATUS_EXECUTED = "executed"    # ran on the engine this request
STATUS_HIT = "hit"              # answered from the artifact cache
STATUS_COALESCED = "coalesced"  # shared an identical in-flight request
STATUS_REJECTED = "rejected"    # failed pre-flight lint (422)
STATUS_THROTTLED = "throttled"  # queue full (429)
STATUS_FAILED = "failed"        # engine exhausted retries (500)
STATUS_EXPIRED = "expired"      # deadline passed while queued (504)
STATUS_DRAINING = "draining"    # server shutting down (503)
STATUS_DENIED = "denied"        # tenant not allowed (403, v2 era)

_SPEC_FIELDS = frozenset(f.name for f in dataclass_fields(JobSpec))


class ProtocolError(ReproError):
    """Malformed request body (HTTP 400)."""

    def __init__(self, message: str, **context) -> None:
        super().__init__(message, **context)
        self.http_status = 400


def spec_from_payload(data: object) -> JobSpec:
    """Validate a JSON ``spec`` object into a :class:`JobSpec`.

    Unknown keys are rejected by name (a misspelled knob must never be
    silently dropped — the resulting spec would hash to a *different*
    design point than the caller asked for).  Value errors surface as
    :class:`ProtocolError` with the library's message.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            f"spec must be a JSON object, got {type(data).__name__}")
    unknown = sorted(set(data) - _SPEC_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown spec field(s) {unknown}; "
            f"known fields: {sorted(_SPEC_FIELDS)}",
            unknown=unknown)
    if "workload" not in data:
        raise ProtocolError("spec.workload is required")
    kwargs = dict(data)
    if "geometry" in kwargs:
        geometry = kwargs["geometry"]
        if (not isinstance(geometry, (list, tuple)) or len(geometry) != 2):
            raise ProtocolError(
                f"spec.geometry must be a [width, height] pair, "
                f"got {geometry!r}")
        kwargs["geometry"] = tuple(geometry)
    if "energy_overrides" in kwargs:
        overrides = kwargs["energy_overrides"]
        try:
            kwargs["energy_overrides"] = tuple(
                (str(name), value) for name, value in overrides)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"spec.energy_overrides must be [[field, value], ...], "
                f"got {overrides!r}") from None
    try:
        return JobSpec(**kwargs)
    except ReproError as exc:
        raise ProtocolError(f"bad spec: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad spec: {exc}") from exc


def spec_to_payload(spec: JobSpec) -> dict:
    """The JSON ``spec`` object for a :class:`JobSpec` (round-trips)."""
    payload = {}
    for f in dataclass_fields(JobSpec):
        payload[f.name] = getattr(spec, f.name)
    payload["geometry"] = list(spec.geometry)
    payload["energy_overrides"] = [list(p) for p in spec.energy_overrides]
    return payload


def parse_request_body(body: dict, *, want_spec: bool = True):
    """Split a request envelope into ``(spec, priority, timeout_s)``."""
    if not isinstance(body, dict):
        raise ProtocolError(
            f"request body must be a JSON object, "
            f"got {type(body).__name__}")
    priority = body.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError(f"priority must be an integer, "
                            f"got {priority!r}")
    timeout_s = body.get("timeout_s")
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"timeout_s must be a number, got {timeout_s!r}") from None
        if timeout_s <= 0:
            raise ProtocolError(f"timeout_s must be > 0, got {timeout_s}")
    spec = None
    if want_spec:
        spec = spec_from_payload(body.get("spec"))
    return spec, priority, timeout_s


# -- response envelopes ------------------------------------------------


def envelope(ok: bool, **fields) -> dict:
    """The common response envelope all endpoints return."""
    return {"protocol": PROTOCOL, "ok": ok, **fields}


def run_response(status: str, payload: dict | None, *,
                 job_hash: str, latency_ms: float,
                 error: str | None = None,
                 diagnostics: list | None = None) -> dict:
    """Envelope for one run outcome (also used per-job inside sweeps)."""
    body = envelope(
        ok=status in (STATUS_EXECUTED, STATUS_HIT, STATUS_COALESCED),
        status=status,
        job_hash=job_hash,
        latency_ms=round(latency_ms, 3),
    )
    if payload is not None:
        body["result"] = payload
    if error is not None:
        body["error"] = error
    if diagnostics is not None:
        body["diagnostics"] = diagnostics
    return body


#: HTTP status per terminal request status.
HTTP_STATUS = {
    STATUS_EXECUTED: 200,
    STATUS_HIT: 200,
    STATUS_COALESCED: 200,
    STATUS_REJECTED: 422,
    STATUS_THROTTLED: 429,
    STATUS_FAILED: 500,
    STATUS_EXPIRED: 504,
    STATUS_DRAINING: 503,
}

#: Statuses added after v1; kept out of :data:`HTTP_STATUS` so the v1
#: status table stays frozen (it is part of the v1 contract).
_HTTP_STATUS_EXTRA = {
    STATUS_DENIED: 403,
}


def http_status(status: str) -> int:
    """HTTP code for any terminal request status (v1 and later)."""
    code = HTTP_STATUS.get(status)
    if code is None:
        code = _HTTP_STATUS_EXTRA.get(status, 500)
    return code


# -- normalized error envelope (v2) ------------------------------------

#: Stable machine-readable error codes, one per failure class.
ERR_BAD_REQUEST = "bad-request"          # 400: malformed body/spec
ERR_TENANT_DENIED = "tenant-denied"      # 403: tenant not allowed
ERR_NOT_FOUND = "not-found"              # 404: unknown endpoint/job
ERR_METHOD = "method-not-allowed"        # 405
ERR_TOO_LARGE = "payload-too-large"      # 413
ERR_LINT_REJECTED = "lint-rejected"      # 422: pre-flight diagnostics
ERR_THROTTLED = "throttled"              # 429: queue/tenant quota
ERR_INTERNAL = "internal"                # 500: engine failure
ERR_UNAVAILABLE = "unavailable"          # 503: draining / no workers
ERR_EXPIRED = "deadline-expired"         # 504: queue-wait deadline
ERR_CANCELLED = "cancelled"              # job cancelled by the caller
ERR_UPSTREAM = "upstream-failed"         # gateway: worker misbehaved

#: Every error code with its canonical HTTP status.
ERROR_CODES = {
    ERR_BAD_REQUEST: 400,
    ERR_TENANT_DENIED: 403,
    ERR_NOT_FOUND: 404,
    ERR_METHOD: 405,
    ERR_TOO_LARGE: 413,
    ERR_LINT_REJECTED: 422,
    ERR_THROTTLED: 429,
    ERR_INTERNAL: 500,
    ERR_UNAVAILABLE: 503,
    ERR_EXPIRED: 504,
    ERR_CANCELLED: 409,
    ERR_UPSTREAM: 502,
}

#: Terminal request status -> normalized error code.
_STATUS_ERROR_CODES = {
    STATUS_REJECTED: ERR_LINT_REJECTED,
    STATUS_THROTTLED: ERR_THROTTLED,
    STATUS_FAILED: ERR_INTERNAL,
    STATUS_EXPIRED: ERR_EXPIRED,
    STATUS_DRAINING: ERR_UNAVAILABLE,
    STATUS_DENIED: ERR_TENANT_DENIED,
}


def error_object(code: str, message: str, *,
                 diagnostics: list | None = None,
                 retry_after_s: float | None = None) -> dict:
    """The normalized error object every non-200 response carries.

    All four keys are always present so consumers never need
    existence checks; ``diagnostics`` defaults to an empty list and
    ``retry_after_s`` to ``null``.
    """
    if code not in ERROR_CODES:
        code = ERR_INTERNAL
    return {
        "code": code,
        "message": message,
        "diagnostics": diagnostics or [],
        "retry_after_s": (round(float(retry_after_s), 3)
                          if retry_after_s is not None else None),
    }


def error_for_status(status: str, message: str, *,
                     diagnostics: list | None = None,
                     retry_after_s: float | None = None) -> dict:
    """Normalized error object for a terminal request status."""
    return error_object(_STATUS_ERROR_CODES.get(status, ERR_INTERNAL),
                        message, diagnostics=diagnostics,
                        retry_after_s=retry_after_s)


def envelope_v2(ok: bool, **fields) -> dict:
    """The v2 response envelope (``protocol: repro-service-v2``)."""
    return {"protocol": PROTOCOL_V2, "ok": ok, **fields}


def error_envelope(code: str, message: str, *,
                   diagnostics: list | None = None,
                   retry_after_s: float | None = None) -> tuple[int, dict]:
    """(HTTP status, v2 error body) for one normalized error."""
    err = error_object(code, message, diagnostics=diagnostics,
                       retry_after_s=retry_after_s)
    return ERROR_CODES[err["code"]], envelope_v2(False, error=err)


# -- async job API (v2) ------------------------------------------------

#: Job lifecycle states.  ``queued``/``running`` are live; the rest
#: are terminal.  A job interrupted by a restart replays from the
#: journal and re-enters ``queued`` (its completed points are kept).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_SUCCEEDED = "succeeded"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_SUCCEEDED, JOB_FAILED,
              JOB_CANCELLED)
TERMINAL_JOB_STATES = frozenset(
    (JOB_SUCCEEDED, JOB_FAILED, JOB_CANCELLED))

#: Job kinds accepted by ``POST /v2/jobs``.
JOB_KIND_RUN = "run"
JOB_KIND_SWEEP = "sweep"

#: Request header naming the submitting tenant (defaults to
#: ``anonymous`` when absent).
TENANT_HEADER = "x-repro-tenant"
DEFAULT_TENANT = "anonymous"


#: Largest accepted DSL kernel source (single kernel, not a program).
MAX_KERNEL_SOURCE_BYTES = 64 * 1024


def parse_kernel_submission(body: dict) -> str:
    """Validate a ``POST /v2/kernels`` body; returns the DSL source.

    Only the transport shape is checked here — the language gate
    (:func:`repro.lang.check_source`) runs in the handler so its
    rejection carries structured RPR5xx diagnostics, not a 400.
    """
    if not isinstance(body, dict):
        raise ProtocolError(
            f"request body must be a JSON object, "
            f"got {type(body).__name__}")
    source = body.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError(
            "kernel submission requires a non-empty string 'source' "
            "field carrying the DSL text")
    if len(source.encode("utf-8")) > MAX_KERNEL_SOURCE_BYTES:
        exc = ProtocolError(
            f"kernel source exceeds the {MAX_KERNEL_SOURCE_BYTES}-byte "
            f"limit")
        exc.http_status = 413
        raise exc
    return source


def sweep_from_payload(body: dict):
    """Parse a ``/v1/sweep``-shaped body into a ``SweepSpec``.

    Accepts both the first-class form (``{"sweep": {...}}``) and the
    legacy loose ``workloads``/``modes``/``base``/``axes`` fields.
    Shared by the single-node server and the gateway so both ends of a
    forwarded sweep parse requests identically.
    """
    from repro.engine.sweeps import SweepSpec

    if not isinstance(body, dict):
        raise ProtocolError("sweep body must be a JSON object")
    if "sweep" in body:
        try:
            return SweepSpec.from_dict(body["sweep"])
        except Exception as exc:
            raise ProtocolError(f"bad sweep: {exc}") from exc
    workloads = body.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        raise ProtocolError("sweep.workloads must be a non-empty list")
    modes = tuple(body.get("modes", ["dyser"]))
    base = body.get("base", {})
    axes = body.get("axes", {})
    if not isinstance(base, dict) or not isinstance(axes, dict):
        raise ProtocolError("sweep.base/axes must be JSON objects")
    base = dict(base)
    axes = {name: list(values) for name, values in axes.items()}
    for obj in (base, axes):
        if "geometry" in obj:
            value = obj["geometry"]
            obj["geometry"] = ([tuple(v) for v in value]
                               if isinstance(value, list) and value
                               and isinstance(value[0], (list, tuple))
                               else tuple(value))
    try:
        return SweepSpec(workloads=tuple(workloads), modes=modes,
                         base=base, axes=tuple(axes.items()))
    except Exception as exc:  # bad field names/values
        raise ProtocolError(f"bad sweep: {exc}") from exc


def parse_job_submission(body: dict):
    """Validate a ``POST /v2/jobs`` body.

    Returns ``(kind, spec_payloads, priority, timeout_s, label)``
    where ``spec_payloads`` is the list of serialized spec dicts the
    job expands to (one for a run, N for a sweep) — every spec is
    validated through :func:`spec_from_payload` before the job is
    accepted, so a journaled job can always be re-parsed on replay.
    """
    _, priority, timeout_s = parse_request_body(body, want_spec=False)
    label = body.get("label")
    if label is not None and not isinstance(label, str):
        raise ProtocolError(f"label must be a string, got {label!r}")
    has_spec = "spec" in body
    has_sweep = ("sweep" in body or "workloads" in body)
    if has_spec == has_sweep:
        raise ProtocolError(
            "a job submission carries exactly one of 'spec' "
            "(single run) or 'sweep'/'workloads' (sweep)")
    if has_spec:
        spec = spec_from_payload(body.get("spec"))
        return JOB_KIND_RUN, [spec_to_payload(spec)], priority, \
            timeout_s, label
    sweep = sweep_from_payload(
        body.get("sweep") is not None and {"sweep": body["sweep"]}
        or {k: body[k] for k in ("workloads", "modes", "base", "axes")
            if k in body})
    try:
        specs = sweep.jobs()
    except Exception as exc:
        raise ProtocolError(f"bad sweep: {exc}") from exc
    if not specs:
        raise ProtocolError("sweep expands to zero specs")
    return JOB_KIND_SWEEP, [spec_to_payload(s) for s in specs], \
        priority, timeout_s, label
