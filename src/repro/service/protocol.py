"""Wire format for the simulation service: JSON over HTTP/1.1.

The service speaks a small, versioned JSON protocol.  Request bodies
carry a ``spec`` object whose keys are :class:`repro.engine.jobs.
JobSpec` field names (``geometry`` as a ``[width, height]`` pair,
``energy_overrides`` as ``[[field, value], ...]``); everything else a
run needs — compiler options, fabric timing, energy model — derives
from the spec exactly as it does in the engine, so a request names the
same design point a :class:`JobSpec` does and shares its content hash.

Endpoints (all responses are JSON envelopes with an ``ok`` bool):

========================  ====================================
``POST /v1/run``          execute one spec (admission-controlled)
``POST /v1/compile``      compile one spec, report regions
``POST /v1/sweep``        expand a cartesian grid server-side
``POST /v1/lint``         pre-flight lint only, no execution
``GET  /healthz``         readiness + queue/inflight gauges
``GET  /metrics``         Prometheus text exposition
``GET  /v1/stats``        the metrics registry as JSON
========================  ====================================

Status codes: ``200`` served, ``400`` malformed request, ``404``
unknown endpoint, ``413`` oversized body, ``422`` rejected by
pre-flight lint (body carries structured diagnostics), ``429`` queue
full (``Retry-After`` header set), ``500`` execution failed, ``503``
draining, ``504`` deadline expired while queued.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from repro.errors import ReproError
from repro.engine.jobs import JobSpec

#: Protocol version tag carried in every response envelope.
PROTOCOL = "repro-service-v1"

#: Default TCP port for ``repro serve`` / ``repro submit``.
DEFAULT_PORT = 8787

#: Largest accepted request body (a sweep grid fits comfortably).
MAX_BODY_BYTES = 1 << 20

#: Terminal per-request statuses reported in response envelopes.
STATUS_EXECUTED = "executed"    # ran on the engine this request
STATUS_HIT = "hit"              # answered from the artifact cache
STATUS_COALESCED = "coalesced"  # shared an identical in-flight request
STATUS_REJECTED = "rejected"    # failed pre-flight lint (422)
STATUS_THROTTLED = "throttled"  # queue full (429)
STATUS_FAILED = "failed"        # engine exhausted retries (500)
STATUS_EXPIRED = "expired"      # deadline passed while queued (504)
STATUS_DRAINING = "draining"    # server shutting down (503)

_SPEC_FIELDS = frozenset(f.name for f in dataclass_fields(JobSpec))


class ProtocolError(ReproError):
    """Malformed request body (HTTP 400)."""

    def __init__(self, message: str, **context) -> None:
        super().__init__(message, **context)
        self.http_status = 400


def spec_from_payload(data: object) -> JobSpec:
    """Validate a JSON ``spec`` object into a :class:`JobSpec`.

    Unknown keys are rejected by name (a misspelled knob must never be
    silently dropped — the resulting spec would hash to a *different*
    design point than the caller asked for).  Value errors surface as
    :class:`ProtocolError` with the library's message.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            f"spec must be a JSON object, got {type(data).__name__}")
    unknown = sorted(set(data) - _SPEC_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown spec field(s) {unknown}; "
            f"known fields: {sorted(_SPEC_FIELDS)}",
            unknown=unknown)
    if "workload" not in data:
        raise ProtocolError("spec.workload is required")
    kwargs = dict(data)
    if "geometry" in kwargs:
        geometry = kwargs["geometry"]
        if (not isinstance(geometry, (list, tuple)) or len(geometry) != 2):
            raise ProtocolError(
                f"spec.geometry must be a [width, height] pair, "
                f"got {geometry!r}")
        kwargs["geometry"] = tuple(geometry)
    if "energy_overrides" in kwargs:
        overrides = kwargs["energy_overrides"]
        try:
            kwargs["energy_overrides"] = tuple(
                (str(name), value) for name, value in overrides)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"spec.energy_overrides must be [[field, value], ...], "
                f"got {overrides!r}") from None
    try:
        return JobSpec(**kwargs)
    except ReproError as exc:
        raise ProtocolError(f"bad spec: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad spec: {exc}") from exc


def spec_to_payload(spec: JobSpec) -> dict:
    """The JSON ``spec`` object for a :class:`JobSpec` (round-trips)."""
    payload = {}
    for f in dataclass_fields(JobSpec):
        payload[f.name] = getattr(spec, f.name)
    payload["geometry"] = list(spec.geometry)
    payload["energy_overrides"] = [list(p) for p in spec.energy_overrides]
    return payload


def parse_request_body(body: dict, *, want_spec: bool = True):
    """Split a request envelope into ``(spec, priority, timeout_s)``."""
    if not isinstance(body, dict):
        raise ProtocolError(
            f"request body must be a JSON object, "
            f"got {type(body).__name__}")
    priority = body.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError(f"priority must be an integer, "
                            f"got {priority!r}")
    timeout_s = body.get("timeout_s")
    if timeout_s is not None:
        try:
            timeout_s = float(timeout_s)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"timeout_s must be a number, got {timeout_s!r}") from None
        if timeout_s <= 0:
            raise ProtocolError(f"timeout_s must be > 0, got {timeout_s}")
    spec = None
    if want_spec:
        spec = spec_from_payload(body.get("spec"))
    return spec, priority, timeout_s


# -- response envelopes ------------------------------------------------


def envelope(ok: bool, **fields) -> dict:
    """The common response envelope all endpoints return."""
    return {"protocol": PROTOCOL, "ok": ok, **fields}


def run_response(status: str, payload: dict | None, *,
                 job_hash: str, latency_ms: float,
                 error: str | None = None,
                 diagnostics: list | None = None) -> dict:
    """Envelope for one run outcome (also used per-job inside sweeps)."""
    body = envelope(
        ok=status in (STATUS_EXECUTED, STATUS_HIT, STATUS_COALESCED),
        status=status,
        job_hash=job_hash,
        latency_ms=round(latency_ms, 3),
    )
    if payload is not None:
        body["result"] = payload
    if error is not None:
        body["error"] = error
    if diagnostics is not None:
        body["diagnostics"] = diagnostics
    return body


#: HTTP status per terminal request status.
HTTP_STATUS = {
    STATUS_EXECUTED: 200,
    STATUS_HIT: 200,
    STATUS_COALESCED: 200,
    STATUS_REJECTED: 422,
    STATUS_THROTTLED: 429,
    STATUS_FAILED: 500,
    STATUS_EXPIRED: 504,
    STATUS_DRAINING: 503,
}
