"""Per-tenant admission control: token buckets, quotas, allowlists.

Tenancy is declared, not authenticated: callers name themselves with
the ``X-Repro-Tenant`` header (absent → ``anonymous``).  That is the
right trust model for a lab-internal simulation farm — the goal is
*fairness and blast-radius control between cooperating users*, not
security.  Three independent knobs, all optional:

- **rate / burst** — a token bucket per tenant (tokens refill at
  ``rate_per_s``, capacity ``burst``).  An empty bucket answers 429
  with a ``Retry-After`` derived from the refill rate, so a chatty
  tenant backs off precisely as long as it takes to earn a token —
  it cannot crowd out the queue for everyone else.
- **max_inflight** — a cap on admitted-but-unanswered work per
  tenant, bounding how much of the shared queue one tenant can own.
- **allowlist** — when set, unknown tenants get 403 (``denied``).

Defaults leave everything disabled so the v1 surface is untouched:
``TenancyController()`` with no arguments admits every request.

The bucket clock is injectable (``clock=``) so tests and the chaos
harness stay deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.service import protocol as P


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant (or the default for all).

    ``rate_per_s=None`` disables rate limiting; ``max_inflight=None``
    disables the inflight cap; ``max_kernels=None`` lets a tenant
    register unlimited DSL kernels (``POST /v2/kernels``).
    """

    rate_per_s: float | None = None
    burst: int = 8
    max_inflight: int | None = None
    max_kernels: int | None = None

    @classmethod
    def from_dict(cls, doc: dict) -> "TenantQuota":
        return cls(rate_per_s=doc.get("rate_per_s"),
                   burst=int(doc.get("burst", 8)),
                   max_inflight=doc.get("max_inflight"),
                   max_kernels=doc.get("max_kernels"))


@dataclass(frozen=True)
class AdmissionVerdict:
    """Outcome of one tenancy check."""

    allowed: bool
    status: str = P.STATUS_EXECUTED      # only meaningful when denied
    reason: str = ""
    retry_after_s: float | None = None


_ALLOW = AdmissionVerdict(True)


class _Bucket:
    """Token bucket on an injectable monotonic clock."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, burst: float, now: float) -> None:
        self.tokens = float(burst)
        self.stamp = now

    def take(self, rate: float, burst: float, now: float) -> float:
        """Consume one token; returns 0.0 on success, else the wait
        (seconds) until the next token exists."""
        self.tokens = min(float(burst),
                          self.tokens + (now - self.stamp) * rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / rate if rate > 0 else 60.0


class TenancyController:
    """Tracks per-tenant buckets and inflight counts.

    ``quotas`` maps tenant name → :class:`TenantQuota`; ``default``
    applies to tenants without an entry.  ``allowed`` is an optional
    allowlist of tenant names (None → everyone welcome).
    """

    def __init__(self, *, quotas: dict[str, TenantQuota] | None = None,
                 default: TenantQuota | None = None,
                 allowed: set[str] | None = None,
                 clock=time.monotonic) -> None:
        self.quotas = dict(quotas or {})
        self.default = default or TenantQuota()
        self.allowed = set(allowed) if allowed is not None else None
        self.clock = clock
        self._buckets: dict[str, _Bucket] = {}
        self.inflight: dict[str, int] = {}
        #: Served-request tally per tenant, for fairness accounting
        #: (exposed through /v1/stats and the bench fairness check).
        self.served: dict[str, int] = {}
        #: Content hashes of DSL kernels each tenant has registered.
        #: Re-submitting an already-owned kernel is idempotent — it
        #: never consumes quota, so retries are always safe.
        self.kernels: dict[str, set[str]] = {}

    @property
    def enabled(self) -> bool:
        """True when any knob can actually reject a request."""
        if self.allowed is not None:
            return True
        quotas = [self.default, *self.quotas.values()]
        return any(q.rate_per_s is not None
                   or q.max_inflight is not None
                   or q.max_kernels is not None
                   for q in quotas)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default)

    # -- admission -----------------------------------------------------

    def admit(self, tenant: str) -> AdmissionVerdict:
        """Check one request; on success the tenant holds one inflight
        slot until :meth:`release`."""
        if self.allowed is not None and tenant not in self.allowed:
            return AdmissionVerdict(
                False, P.STATUS_DENIED,
                f"tenant {tenant!r} is not on the allowlist")
        quota = self.quota_for(tenant)
        if quota.max_inflight is not None \
                and self.inflight.get(tenant, 0) >= quota.max_inflight:
            return AdmissionVerdict(
                False, P.STATUS_THROTTLED,
                f"tenant {tenant!r} at max_inflight="
                f"{quota.max_inflight}", retry_after_s=0.1)
        if quota.rate_per_s is not None:
            now = self.clock()
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = _Bucket(
                    quota.burst, now)
            wait = bucket.take(quota.rate_per_s, quota.burst, now)
            if wait > 0.0:
                return AdmissionVerdict(
                    False, P.STATUS_THROTTLED,
                    f"tenant {tenant!r} over rate limit "
                    f"({quota.rate_per_s:g}/s)",
                    retry_after_s=max(0.05, round(wait, 3)))
        self.inflight[tenant] = self.inflight.get(tenant, 0) + 1
        return _ALLOW

    def admit_kernel(self, tenant: str,
                     kernel_hash: str) -> AdmissionVerdict:
        """Check (and on success charge) one kernel registration.

        The count is per distinct content hash: re-submitting a kernel
        the tenant already owns is admitted without consuming quota,
        so client retries and gateway re-broadcasts stay idempotent.
        """
        if self.allowed is not None and tenant not in self.allowed:
            return AdmissionVerdict(
                False, P.STATUS_DENIED,
                f"tenant {tenant!r} is not on the allowlist")
        owned = self.kernels.setdefault(tenant, set())
        if kernel_hash in owned:
            return _ALLOW
        quota = self.quota_for(tenant)
        if quota.max_kernels is not None \
                and len(owned) >= quota.max_kernels:
            return AdmissionVerdict(
                False, P.STATUS_THROTTLED,
                f"tenant {tenant!r} at max_kernels="
                f"{quota.max_kernels}", retry_after_s=60.0)
        owned.add(kernel_hash)
        return _ALLOW

    def release(self, tenant: str, *, served: bool = False) -> None:
        """Return the inflight slot taken by :meth:`admit`."""
        count = self.inflight.get(tenant, 0)
        if count <= 1:
            self.inflight.pop(tenant, None)
        else:
            self.inflight[tenant] = count - 1
        if served:
            self.served[tenant] = self.served.get(tenant, 0) + 1

    # -- observability -------------------------------------------------

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "inflight": dict(self.inflight),
            "served": dict(self.served),
            "kernels": {tenant: len(hashes)
                        for tenant, hashes in self.kernels.items()},
        }


def controller_from_config(doc: dict | None) -> TenancyController:
    """Build a controller from a JSON config document.

    Shape::

        {"default": {"rate_per_s": 50, "burst": 20},
         "tenants": {"ci": {"rate_per_s": 200, "max_inflight": 32}},
         "allowed": ["ci", "bench"]}

    ``None``/``{}`` → a disabled controller (admit everything).
    """
    if not doc:
        return TenancyController()
    quotas = {name: TenantQuota.from_dict(q)
              for name, q in (doc.get("tenants") or {}).items()}
    default = (TenantQuota.from_dict(doc["default"])
               if isinstance(doc.get("default"), dict) else None)
    allowed = (set(doc["allowed"])
               if isinstance(doc.get("allowed"), list) else None)
    return TenancyController(quotas=quotas, default=default,
                             allowed=allowed)
