"""Simulation-as-a-service: a long-lived daemon over the engine.

After the engine (PR 1), observability (PR 2), static analysis (PR 3)
and the fast backend (PR 4), every entry point was still a one-shot
CLI process — nothing kept the artifact cache, compile/decode caches
or metrics warm across requests.  :mod:`repro.service` is that missing
layer: a stdlib-only asyncio daemon (``repro serve``) accepting JSON
over HTTP (run / compile / sweep / lint) with a matching client
(``repro submit`` / :class:`ServiceClient`).

The pipeline, by module:

- :mod:`repro.service.protocol` — wire format, spec validation,
  response envelopes, status codes;
- :mod:`repro.service.admission` — validate → pre-flight lint (422
  with structured diagnostics) → artifact-cache probe (warm hits are
  answered without touching the pool) → in-flight request coalescing;
- :mod:`repro.service.scheduler` — bounded priority queue with
  backpressure (429 + ``Retry-After``), micro-batching into engine
  :func:`~repro.engine.pool.run_jobs` submissions, queue-wait
  deadlines;
- :mod:`repro.service.server` — asyncio HTTP front end, ``/healthz``,
  ``/metrics`` (Prometheus text exposition of the service registry),
  graceful drain-then-shutdown on SIGTERM;
- :mod:`repro.service.instruments` — the service-scoped
  :class:`~repro.obs.metrics.MetricsRegistry`;
- :mod:`repro.service.client` — retrying synchronous client.

Quick use::

    from repro.service import ServiceThread, ServiceClient

    with ServiceThread() as srv:                # ephemeral port
        client = ServiceClient(port=srv.port)
        reply = client.run({"workload": "mm", "scale": "tiny"})
        print(reply["status"], reply["result"]["stats"]["cycles"])
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.instruments import ServiceInstruments
from repro.service.protocol import (
    DEFAULT_PORT,
    PROTOCOL,
    ProtocolError,
    spec_from_payload,
    spec_to_payload,
)
from repro.service.scheduler import JobOutcome, QueueFull, Scheduler
from repro.service.server import ReproService, ServiceThread

__all__ = [
    "DEFAULT_PORT",
    "JobOutcome",
    "PROTOCOL",
    "ProtocolError",
    "QueueFull",
    "ReproService",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceInstruments",
    "ServiceThread",
    "spec_from_payload",
    "spec_to_payload",
]
