"""Simulation-as-a-service: daemons, sharding gateway, durable jobs.

After the engine (PR 1), observability (PR 2), static analysis (PR 3)
and the fast backend (PR 4), every entry point was still a one-shot
CLI process — nothing kept the artifact cache, compile/decode caches
or metrics warm across requests.  :mod:`repro.service` is that missing
layer: a stdlib-only asyncio daemon (``repro serve``) accepting JSON
over HTTP, and — since the v2 surface — a sharding front end
(``repro serve --workers N``) with a durable async job API.

The pipeline, by module:

- :mod:`repro.service.protocol` — wire format, spec validation,
  response envelopes (v1 legacy + the normalized v2 error schema),
  status codes, job states;
- :mod:`repro.service.admission` — validate → pre-flight lint (422
  with structured diagnostics) → artifact-cache probe (warm hits are
  answered without touching the pool) → in-flight request coalescing;
- :mod:`repro.service.scheduler` — bounded priority queue with
  backpressure (429 + ``Retry-After``), micro-batching into engine
  :func:`~repro.engine.pool.run_jobs` submissions, queue-wait
  deadlines;
- :mod:`repro.service.server` — asyncio HTTP front end, ``/healthz``,
  ``/metrics`` (Prometheus text exposition of the service registry),
  graceful drain-then-shutdown on SIGTERM, the v2 job routes;
- :mod:`repro.service.gateway` — consistent-hash sharding over N
  worker daemons: health checks, ring eviction/rebalance, failover
  re-dispatch, shared-cache fallback;
- :mod:`repro.service.jobstore` — the append-only JSONL job journal
  and the :class:`JobManager` that drives jobs to completion (and
  replays them across restarts);
- :mod:`repro.service.tenancy` — per-tenant token buckets, inflight
  quotas and allowlists at admission;
- :mod:`repro.service.instruments` — the service-scoped
  :class:`~repro.obs.metrics.MetricsRegistry`;
- :mod:`repro.service.client` — retrying synchronous :class:`Client`
  (v2 surface) and the deprecated :class:`ServiceClient` shims.

Quick use::

    from repro.service import ServiceThread, Client

    with ServiceThread() as srv:                # ephemeral port
        client = Client(port=srv.port)
        reply = client.execute({"workload": "mm", "scale": "tiny"})
        print(reply["status"], reply["result"]["stats"]["cycles"])

        handle = client.submit(
            sweep={"workloads": ["mm"], "modes": ["dyser", "scalar"]})
        final = handle.wait()                   # durable async job
        print(final.state, final.done, "/", final.total)
"""

from repro.service.client import (
    Client,
    JobHandle,
    JobStatus,
    ServiceClient,
    ServiceError,
)
from repro.service.gateway import (
    GatewayService,
    GatewayThread,
    HashRing,
)
from repro.service.instruments import ServiceInstruments
from repro.service.jobstore import JobManager, JobRecord, JobStore
from repro.service.protocol import (
    DEFAULT_PORT,
    PROTOCOL,
    PROTOCOL_V2,
    ProtocolError,
    spec_from_payload,
    spec_to_payload,
)
from repro.service.scheduler import JobOutcome, QueueFull, Scheduler
from repro.service.server import ReproService, ServiceThread
from repro.service.tenancy import (
    TenancyController,
    TenantQuota,
    controller_from_config,
)

__all__ = [
    "DEFAULT_PORT",
    "Client",
    "GatewayService",
    "GatewayThread",
    "HashRing",
    "JobHandle",
    "JobManager",
    "JobOutcome",
    "JobRecord",
    "JobStatus",
    "JobStore",
    "PROTOCOL",
    "PROTOCOL_V2",
    "ProtocolError",
    "QueueFull",
    "ReproService",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceInstruments",
    "ServiceThread",
    "TenancyController",
    "TenantQuota",
    "controller_from_config",
    "spec_from_payload",
    "spec_to_payload",
]
