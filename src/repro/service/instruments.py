"""Service-scoped metrics: one registry, named once, scraped live.

The daemon owns a single :class:`repro.obs.metrics.MetricsRegistry`
whose instruments cover the admission → schedule → execute pipeline:

- ``service.requests.*`` counters — every admission verdict
  (admitted / rejected / throttled / coalesced) plus cache hits;
- ``service.jobs.*`` counters — engine-side outcomes (executed,
  failed, expired);
- ``service.queue.depth`` / ``service.inflight`` gauges — scheduler
  occupancy, updated on every enqueue/dequeue;
- ``service.latency.e2e_ms`` histogram — admission-to-response wall
  latency, with sub-millisecond buckets so the warm-cache dispatch
  path (the BENCH_service acceptance criterion) is visible;
- ``service.batch.size`` histogram and ``service.batches`` counter —
  micro-batching effectiveness.

``/metrics`` serves the registry through
:meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`; the
registry's snapshot discipline makes scraping safe while the event
loop and executor threads are updating instruments.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

#: End-to-end latency buckets (milliseconds).  Extends the registry
#: default downwards so sub-10ms warm-cache dispatch resolves cleanly.
LATENCY_BUCKETS_MS = (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256,
                      512, 1024, 2048, 4096, 8192)

#: Micro-batch occupancy buckets.
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class ServiceInstruments:
    """All service instruments, registered once on one registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        r = self.registry
        self.admitted = r.counter(
            "service.requests.admitted",
            "requests accepted into the scheduler queue")
        self.rejected = r.counter(
            "service.requests.rejected",
            "requests rejected by pre-flight lint (HTTP 422)")
        self.throttled = r.counter(
            "service.requests.throttled",
            "requests refused because the queue was full (HTTP 429)")
        self.coalesced = r.counter(
            "service.requests.coalesced",
            "requests that shared an identical in-flight job")
        self.cache_hits = r.counter(
            "service.cache.hits",
            "requests answered from the artifact cache at admission")
        self.executed = r.counter(
            "service.jobs.executed",
            "jobs executed on the engine for this service")
        self.failed = r.counter(
            "service.jobs.failed",
            "jobs that exhausted engine retries")
        self.expired = r.counter(
            "service.jobs.expired",
            "jobs whose deadline passed while queued")
        self.batches = r.counter(
            "service.batches",
            "micro-batches submitted to the engine")
        self.queue_depth = r.gauge(
            "service.queue.depth",
            "jobs waiting in the scheduler queue")
        self.inflight = r.gauge(
            "service.inflight",
            "admitted jobs not yet answered (queued + executing)")
        self.latency_ms = r.histogram(
            "service.latency.e2e_ms",
            "admission-to-response latency in milliseconds",
            buckets=LATENCY_BUCKETS_MS)
        self.batch_size = r.histogram(
            "service.batch.size",
            "specs per engine micro-batch",
            buckets=BATCH_BUCKETS)

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()

    def to_dict(self) -> dict:
        return self.registry.to_dict()
