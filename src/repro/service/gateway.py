"""Sharding front end: consistent hashing over N worker daemons.

``repro serve --workers N`` (or ``repro gateway --worker-addr ...``)
runs a :class:`GatewayService` in front of a fleet of single-node
:class:`~repro.service.server.ReproService` workers.  The gateway owns
no engine — it routes:

- **Sharding.**  Every run is forwarded to the worker chosen by a
  consistent-hash ring over ``JobSpec.job_hash`` (sweeps are expanded
  at the gateway and each point is sharded independently).  The same
  spec always lands on the same worker, so each shard's compile and
  artifact caches stay hot for *its* slice of the design space — the
  whole fleet behaves like one big cache without any coordination.
- **Shared-cache fallback.**  When the gateway is given an
  :class:`~repro.engine.cache.ArtifactCache`, a warm entry answers at
  the gateway without burning a forward; executed results are stored
  back, so a re-sharded spec (after an eviction) still hits.
- **Health + failover.**  A background task probes every worker's
  ``/healthz``; consecutive failures evict the worker from the ring
  (its keys rebalance to the survivors) and recovery re-adds it.  A
  forward that dies mid-request is retried on the next live shard —
  safe because specs are content-addressed and deterministic, so a
  replayed run returns a byte-identical result.
- **Tenancy.**  Per-tenant token buckets / quotas / allowlists
  (:mod:`repro.service.tenancy`) gate admission before any forward,
  answering 429 with a cost-aware ``Retry-After`` or 403.
- **Durable jobs.**  The same v2 job API as the worker
  (``POST /v2/jobs``), journaled at the gateway, with each spec
  forwarded to its shard; a gateway restart replays the journal and
  resumes unfinished jobs.

The ring uses sha1 with 64 virtual nodes per worker, so a 2-worker
fleet splits hot hashes roughly evenly and an eviction moves only the
dead worker's arcs.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import json
import time

from repro.engine.cache import ArtifactCache, result_from_dict
from repro.obs.metrics import MetricsRegistry

from repro.service import protocol as P
from repro.service.instruments import LATENCY_BUCKETS_MS
from repro.service.jobstore import JobManager, JobStore
from repro.service.server import HttpDaemon, ServiceThread, _Request
from repro.service.tenancy import TenancyController


class HashRing:
    """Consistent-hash ring (sha1, virtual nodes).

    ``node_for(key)`` walks clockwise from the key's point;
    ``preference(key)`` yields every node in walk order — the failover
    sequence a request tries when shards die mid-flight.
    """

    def __init__(self, nodes=(), *, replicas: int = 64) -> None:
        self.replicas = max(1, int(replicas))
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha1(value.encode("utf-8")).digest()[:8], "big")

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            self._points.append((self._hash(f"{node}#{i}"), node))
        self._points.sort()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def node_for(self, key: str) -> str | None:
        if not self._points:
            return None
        point = self._hash(key)
        index = bisect.bisect_right(self._points,
                                    (point, "￿"))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str) -> list[str]:
        """All nodes in clockwise walk order from ``key`` (deduped)."""
        if not self._points:
            return []
        point = self._hash(key)
        index = bisect.bisect_right(self._points, (point, "￿"))
        seen: list[str] = []
        for offset in range(len(self._points)):
            node = self._points[(index + offset)
                                % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self._nodes):
                    break
        return seen


class GatewayInstruments:
    """Gateway-scoped metrics, named under ``service.gateway.*``."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        r = self.registry
        self.forwarded = r.counter(
            "service.gateway.forwarded",
            "requests forwarded to a worker shard")
        self.cache_hits = r.counter(
            "service.gateway.cache.hits",
            "requests answered from the gateway's shared cache")
        self.retries = r.counter(
            "service.gateway.retries",
            "forwards retried on another shard after a failure")
        self.evictions = r.counter(
            "service.gateway.evictions",
            "workers evicted from the ring after health failures")
        self.recoveries = r.counter(
            "service.gateway.recoveries",
            "evicted workers re-added after passing health checks")
        self.throttled = r.counter(
            "service.gateway.throttled",
            "requests refused by tenancy rate limits (HTTP 429)")
        self.denied = r.counter(
            "service.gateway.denied",
            "requests refused by the tenant allowlist (HTTP 403)")
        self.unavailable = r.counter(
            "service.gateway.unavailable",
            "requests failed because no live worker remained")
        self.workers_live = r.gauge(
            "service.gateway.workers.live",
            "workers currently in the ring")
        self.latency_ms = r.histogram(
            "service.gateway.latency.e2e_ms",
            "gateway request latency in milliseconds",
            buckets=LATENCY_BUCKETS_MS)

    def to_prometheus(self) -> str:
        return self.registry.to_prometheus()

    def to_dict(self) -> dict:
        return self.registry.to_dict()


class _WorkerState:
    """Gateway-side view of one worker daemon."""

    __slots__ = ("addr", "healthy", "fails", "forwarded", "errors")

    def __init__(self, addr: str) -> None:
        self.addr = addr
        self.healthy = True
        self.fails = 0
        self.forwarded = 0
        self.errors = 0

    def to_dict(self) -> dict:
        return {"addr": self.addr, "healthy": self.healthy,
                "forwarded": self.forwarded, "errors": self.errors}


#: Transport failures that trigger shard failover.
_FORWARD_EXC = (ConnectionError, OSError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, TimeoutError, EOFError)


class GatewayService(HttpDaemon):
    """The sharding front end (no engine of its own)."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = P.DEFAULT_PORT, *,
                 workers: list[str] | tuple[str, ...] = (),
                 cache: ArtifactCache | None = None,
                 tenancy: TenancyController | None = None,
                 journal=None,
                 health_interval_s: float = 0.5,
                 health_fail_threshold: int = 3,
                 forward_timeout_s: float = 120.0,
                 max_sweep_specs: int = 1024,
                 ring_replicas: int = 64) -> None:
        super().__init__(host, port)
        if not workers:
            raise ValueError("a gateway needs at least one worker")
        self.cache = cache
        self.tenancy = tenancy or TenancyController()
        self.health_interval_s = max(0.05, float(health_interval_s))
        self.health_fail_threshold = max(1, int(health_fail_threshold))
        self.forward_timeout_s = float(forward_timeout_s)
        self.max_sweep_specs = max(1, int(max_sweep_specs))
        self.instruments = GatewayInstruments()
        self.workers: dict[str, _WorkerState] = {
            addr: _WorkerState(addr) for addr in workers}
        self.ring = HashRing(workers, replicas=ring_replicas)
        self.instruments.workers_live.set(len(self.ring))
        self.job_store = JobStore(journal)
        self.job_manager = JobManager(self.job_store, self._job_runner)
        self.jobs_recovered = 0
        self._health_task: asyncio.Task | None = None

    # -- lifecycle hooks -----------------------------------------------

    async def _start_tasks(self) -> None:
        self.jobs_recovered = self.job_manager.recover()
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop(), name="repro-gateway-health")

    async def _drain(self) -> None:
        self.job_manager.stopping = True
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        await self.job_manager.quiesce(timeout=10)
        self.job_store.close()

    def _abort_tasks(self) -> None:
        self.job_manager.stopping = True
        self.job_manager.abort()
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None
        self.job_store.close()

    def _banner(self) -> str:
        extra = ""
        if self.jobs_recovered:
            extra = (f", {self.jobs_recovered} journaled job"
                     f"{'s' if self.jobs_recovered != 1 else ''} "
                     f"recovered")
        return (f"repro gateway listening on "
                f"http://{self.host}:{self.port} "
                f"({len(self.workers)} worker"
                f"{'s' if len(self.workers) != 1 else ''}: "
                f"{', '.join(sorted(self.workers))}{extra})")

    def _summary(self) -> str:
        return (f"repro gateway drained: {self.requests_served} "
                f"requests served, "
                f"{int(self.instruments.forwarded.value)} forwarded, "
                f"{int(self.instruments.evictions.value)} evictions")

    # -- worker health -------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval_s)
            await asyncio.gather(*[
                self._probe_worker(worker)
                for worker in self.workers.values()],
                return_exceptions=True)

    async def _probe_worker(self, worker: _WorkerState) -> None:
        try:
            status, _, body = await self._forward_raw(
                worker.addr, "GET", "/healthz", None, timeout=5.0)
            ok = status == 200 and json.loads(body).get("ready", False)
        except (_FORWARD_EXC, ValueError):
            ok = False
        if ok:
            worker.fails = 0
            if not worker.healthy:
                worker.healthy = True
                self.ring.add(worker.addr)
                self.instruments.recoveries.inc()
                self.instruments.workers_live.set(len(self.ring))
        else:
            worker.fails += 1
            if worker.healthy \
                    and worker.fails >= self.health_fail_threshold:
                self._evict(worker)

    def _evict(self, worker: _WorkerState) -> None:
        """Drop a worker from the ring; its keys rebalance."""
        if not worker.healthy:
            return
        worker.healthy = False
        self.ring.remove(worker.addr)
        self.instruments.evictions.inc()
        self.instruments.workers_live.set(len(self.ring))

    # -- forwarding ----------------------------------------------------

    async def _forward_raw(self, addr: str, method: str, path: str,
                           body: bytes | None, *,
                           headers: dict | None = None,
                           timeout: float | None = None):
        """One HTTP exchange with a worker (Connection: close)."""
        host, _, port = addr.rpartition(":")
        timeout = timeout if timeout is not None \
            else self.forward_timeout_s
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, int(port)), timeout)
        try:
            head = [f"{method} {path} HTTP/1.1",
                    f"Host: {addr}",
                    "Connection: close"]
            for name, value in (headers or {}).items():
                head.append(f"{name}: {value}")
            if body:
                head.append("Content-Type: application/json")
                head.append(f"Content-Length: {len(body)}")
            writer.write(("\r\n".join(head) + "\r\n\r\n")
                         .encode("latin-1") + (body or b""))
            await writer.drain()
            status_line = await asyncio.wait_for(reader.readline(),
                                                 timeout)
            parts = status_line.decode("latin-1").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise EOFError(f"bad status line {status_line!r}")
            status = int(parts[1])
            response_headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(),
                                              timeout)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                response_headers[name.strip().lower()] = value.strip()
            length = int(response_headers.get("content-length", "0")
                         or "0")
            data = await asyncio.wait_for(
                reader.readexactly(length), timeout) if length \
                else await asyncio.wait_for(reader.read(), timeout)
            return status, response_headers, data
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _forward_sharded(self, key: str, method: str, path: str,
                               payload: dict | None, *,
                               tenant: str | None = None):
        """Forward to the key's shard, failing over on dead workers.

        Returns ``(http_status, headers, body_dict, worker_addr)``.
        Raises :class:`NoLiveWorker` when every shard is down.
        """
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        headers = ({P.TENANT_HEADER: tenant}
                   if tenant and tenant != P.DEFAULT_TENANT else None)
        attempted: set[str] = set()
        first = True
        while True:
            candidates = [addr for addr in self.ring.preference(key)
                          if addr not in attempted]
            if not candidates:
                self.instruments.unavailable.inc()
                raise NoLiveWorker(
                    f"no live worker for {key[:12]} "
                    f"({len(attempted)} tried)")
            addr = candidates[0]
            worker = self.workers[addr]
            attempted.add(addr)
            if not first:
                self.instruments.retries.inc()
            first = False
            try:
                status, response_headers, data = \
                    await self._forward_raw(addr, method, path, body,
                                            headers=headers)
            except _FORWARD_EXC:
                # Inline failure: evict now (the health loop would
                # take threshold×interval to notice) and re-dispatch.
                worker.errors += 1
                worker.fails = self.health_fail_threshold
                self._evict(worker)
                continue
            worker.forwarded += 1
            self.instruments.forwarded.inc()
            try:
                decoded = json.loads(data) if data else {}
            except ValueError:
                decoded = {"text": data.decode("utf-8", "replace")}
            if not isinstance(decoded, dict):
                decoded = {"body": decoded}
            return status, response_headers, decoded, addr

    # -- routing -------------------------------------------------------

    async def _route(self, request: _Request):
        method, path = request.method, request.path.split("?", 1)[0]
        started = time.perf_counter()
        try:
            result = await self._route_inner(request, method, path)
        finally:
            self.instruments.latency_ms.observe(
                (time.perf_counter() - started) * 1e3)
        return result

    async def _route_inner(self, request: _Request, method: str,
                           path: str):
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._health_body(), None
            if path == "/metrics" and method == "GET":
                return 200, self.instruments.to_prometheus(), None
            if path == "/v1/stats" and method == "GET":
                return 200, P.envelope(
                    True, metrics=self.instruments.to_dict(),
                    tenancy=self.tenancy.stats(),
                    workers=[w.to_dict()
                             for w in self.workers.values()]), None
            if path == "/v1/run" and method == "POST":
                return await self._handle_run(request)
            if path == "/v1/sweep" and method == "POST":
                return await self._handle_sweep(request)
            if path in ("/v1/compile", "/v1/lint") and method == "POST":
                return await self._handle_forward_simple(request, path)
            if path == "/v2/jobs" and method == "POST":
                return self._handle_job_submit(request)
            if path == "/v2/jobs" and method == "GET":
                return self._handle_job_list(request)
            if path == "/v2/kernels" and method == "POST":
                return await self._handle_kernel_submit(request)
            if path == "/v2/kernels" and method == "GET":
                return await self._handle_kernel_list(request)
            parts = path.strip("/").split("/")
            if len(parts) == 3 and parts[:2] == ["v2", "jobs"] \
                    and method == "GET":
                return self._handle_job_get(request, parts[2])
            if len(parts) == 4 and parts[:2] == ["v2", "jobs"] \
                    and parts[3] == "cancel" and method == "POST":
                return self._handle_job_cancel(parts[2])
            message = f"no such endpoint {method} {path}"
            if path.startswith("/v2/"):
                status, body = P.error_envelope(P.ERR_NOT_FOUND,
                                                message)
                return status, body, None
            return 404, P.envelope(
                False, error=message,
                error_detail=P.error_object(P.ERR_NOT_FOUND,
                                            message)), None
        except P.ProtocolError as exc:
            code = (P.ERR_TOO_LARGE if exc.http_status == 413
                    else P.ERR_BAD_REQUEST)
            if path.startswith("/v2/"):
                status, body = P.error_envelope(code, str(exc))
                return exc.http_status, body, None
            return exc.http_status, P.envelope(
                False, error=str(exc),
                error_detail=P.error_object(code, str(exc))), None
        except NoLiveWorker as exc:
            if path.startswith("/v2/"):
                status, body = P.error_envelope(P.ERR_UNAVAILABLE,
                                                str(exc))
                return status, body, None
            return 503, P.envelope(
                False, status=P.STATUS_DRAINING, error=str(exc),
                error_detail=P.error_object(P.ERR_UNAVAILABLE,
                                            str(exc))), None
        except Exception as exc:  # noqa: BLE001 — daemon must survive
            message = f"{type(exc).__name__}: {exc}"
            if path.startswith("/v2/"):
                status, body = P.error_envelope(P.ERR_INTERNAL,
                                                message)
                return status, body, None
            return 500, P.envelope(
                False, error=message,
                error_detail=P.error_object(P.ERR_INTERNAL,
                                            message)), None

    def _health_body(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "ready": not self._draining and len(self.ring) > 0,
            "role": "gateway",
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests_served": self.requests_served,
            "workers": [w.to_dict() for w in self.workers.values()],
            "ring_size": len(self.ring),
            "jobs": {
                "live": sum(1 for r in self.job_store.jobs.values()
                            if not r.terminal),
                "total": len(self.job_store.jobs),
            },
        }

    # -- tenancy gate --------------------------------------------------

    def _tenancy_gate(self, request: _Request):
        """None when admitted (slot held), else a (status, body,
        headers) rejection triple."""
        tenant = request.tenant
        verdict = self.tenancy.admit(tenant)
        if verdict.allowed:
            return None
        if verdict.status == P.STATUS_DENIED:
            self.instruments.denied.inc()
        else:
            self.instruments.throttled.inc()
        path = request.path.split("?", 1)[0]
        code = (P.ERR_TENANT_DENIED
                if verdict.status == P.STATUS_DENIED
                else P.ERR_THROTTLED)
        headers = ({"Retry-After": f"{verdict.retry_after_s:.3f}"}
                   if verdict.retry_after_s is not None else None)
        if path.startswith("/v2/"):
            status, body = P.error_envelope(
                code, verdict.reason,
                retry_after_s=verdict.retry_after_s)
            return status, body, headers
        body = P.envelope(
            False, status=verdict.status, error=verdict.reason,
            error_detail=P.error_object(
                code, verdict.reason,
                retry_after_s=verdict.retry_after_s))
        return P.http_status(verdict.status), body, headers

    # -- v1 handlers ---------------------------------------------------

    def _probe_cache(self, spec) -> dict | None:
        if self.cache is None:
            return None
        payload = self.cache.load_run(spec)
        if payload is None:
            return None
        try:
            result_from_dict(payload)   # stale/foreign entry == miss
        except (KeyError, TypeError, ValueError):
            return None
        return payload

    async def _handle_run(self, request: _Request):
        spec, priority, timeout_s = P.parse_request_body(request.json())
        rejection = self._tenancy_gate(request)
        if rejection is not None:
            return rejection
        tenant = request.tenant
        served = False
        try:
            cached = self._probe_cache(spec)
            if cached is not None:
                self.instruments.cache_hits.inc()
                served = True
                body = P.run_response(P.STATUS_HIT, cached,
                                      job_hash=spec.job_hash,
                                      latency_ms=0.0)
                return 200, body, None
            payload: dict = {"spec": P.spec_to_payload(spec),
                             "priority": priority}
            if timeout_s is not None:
                payload["timeout_s"] = timeout_s
            status, headers, body, _addr = await self._forward_sharded(
                spec.job_hash, "POST", "/v1/run", payload,
                tenant=tenant)
            served = status == 200
            if served and self.cache is not None \
                    and isinstance(body.get("result"), dict):
                self.cache.store_run(spec, body["result"])
            passthrough = None
            if "retry-after" in headers:
                passthrough = {"Retry-After": headers["retry-after"]}
            return status, body, passthrough
        finally:
            self.tenancy.release(tenant, served=served)

    async def _handle_forward_simple(self, request: _Request,
                                     path: str):
        """Shard /v1/compile and /v1/lint by the spec's hash."""
        spec, _, _ = P.parse_request_body(request.json())
        status, _, body, _addr = await self._forward_sharded(
            spec.job_hash, "POST", path,
            {"spec": P.spec_to_payload(spec)}, tenant=request.tenant)
        return status, body, None

    async def _handle_sweep(self, request: _Request):
        body = request.json()
        sweep = P.sweep_from_payload(body)
        try:
            specs = sweep.jobs()
        except Exception as exc:
            raise P.ProtocolError(f"bad sweep: {exc}") from exc
        if len(specs) > self.max_sweep_specs:
            raise P.ProtocolError(
                f"sweep expands to {len(specs)} specs, over the "
                f"{self.max_sweep_specs}-spec limit")
        rejection = self._tenancy_gate(request)
        if rejection is not None:
            return rejection
        tenant = request.tenant
        priority = body.get("priority", 0)
        timeout_s = body.get("timeout_s")
        started = time.perf_counter()
        try:
            results = await asyncio.gather(*[
                self._sweep_point(spec, priority, timeout_s, tenant)
                for spec in specs])
        finally:
            self.tenancy.release(tenant, served=True)
        latency_ms = (time.perf_counter() - started) * 1e3
        jobs = []
        counts: dict[str, int] = {}
        for spec, (status, point) in zip(specs, results, strict=True):
            entry = {
                "spec": spec.describe(),
                "job_hash": spec.job_hash,
                "status": status,
            }
            if isinstance(point.get("result"), dict):
                entry["result"] = point["result"]
            if point.get("error"):
                entry["error"] = point["error"]
            if point.get("diagnostics"):
                entry["diagnostics"] = point["diagnostics"]
            jobs.append(entry)
            counts[status] = counts.get(status, 0) + 1
        ok = all(status in (P.STATUS_EXECUTED, P.STATUS_HIT,
                            P.STATUS_COALESCED)
                 for status, _ in results)
        return 200, P.envelope(ok, jobs=jobs, counts=counts,
                               sweep_hash=sweep.sweep_hash,
                               latency_ms=round(latency_ms, 3)), None

    async def _sweep_point(self, spec, priority, timeout_s,
                           tenant) -> tuple[str, dict]:
        """One sweep point: shard-forward with backpressure retries."""
        cached = self._probe_cache(spec)
        if cached is not None:
            self.instruments.cache_hits.inc()
            return P.STATUS_HIT, {"result": cached}
        payload: dict = {"spec": P.spec_to_payload(spec),
                         "priority": priority}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        delay = 0.02
        for _attempt in range(64):
            try:
                status, headers, body, _addr = \
                    await self._forward_sharded(
                        spec.job_hash, "POST", "/v1/run", payload,
                        tenant=tenant)
            except NoLiveWorker as exc:
                return P.STATUS_DRAINING, {"error": str(exc)}
            verdict = body.get("status") or (
                P.STATUS_EXECUTED if status == 200 else P.STATUS_FAILED)
            if status != 429 and verdict != P.STATUS_DRAINING:
                if status == 200 and self.cache is not None \
                        and isinstance(body.get("result"), dict):
                    self.cache.store_run(spec, body["result"])
                return verdict, body
            # Worker queue full (or draining pre-eviction): back off
            # by its hint and retry — the sweep fan-out must not lose
            # points to transient backpressure.
            hint = headers.get("retry-after")
            try:
                wait = min(2.0, max(delay, float(hint)))
            except (TypeError, ValueError):
                wait = delay
            await asyncio.sleep(wait)
            delay = min(2.0, delay * 2)
        return P.STATUS_THROTTLED, body

    # -- v2 job handlers -----------------------------------------------

    def _handle_job_submit(self, request: _Request):
        if self._draining:
            status, body = P.error_envelope(
                P.ERR_UNAVAILABLE, "gateway is draining")
            return status, body, None
        kind, payloads, priority, timeout_s, label = \
            P.parse_job_submission(request.json())
        if len(payloads) > self.max_sweep_specs:
            raise P.ProtocolError(
                f"job expands to {len(payloads)} specs, over the "
                f"{self.max_sweep_specs}-spec limit")
        rejection = self._tenancy_gate(request)
        if rejection is not None:
            return rejection
        tenant = request.tenant
        self.tenancy.release(tenant, served=True)
        record = self.job_manager.submit(
            kind, payloads, priority=priority, timeout_s=timeout_s,
            tenant=tenant, label=label)
        return 202, P.envelope_v2(True, job=record.status_payload()), \
            None

    def _handle_job_list(self, request: _Request):
        query = request.query()
        state = query.get("state")
        if state is not None and state not in P.JOB_STATES:
            raise P.ProtocolError(
                f"unknown state {state!r}; expected one of "
                f"{', '.join(P.JOB_STATES)}")
        records = self.job_manager.list_jobs(
            state=state, tenant=query.get("tenant"))
        return 200, P.envelope_v2(
            True, jobs=[r.status_payload() for r in records]), None

    def _handle_job_get(self, request: _Request, job_id: str):
        record = self.job_manager.get(job_id)
        if record is None:
            status, body = P.error_envelope(
                P.ERR_NOT_FOUND, f"no such job {job_id!r}")
            return status, body, None
        want_results = request.query().get("results", "") \
            in ("1", "true", "yes")
        return 200, P.envelope_v2(
            True, job=record.status_payload(results=want_results)), \
            None

    def _handle_job_cancel(self, job_id: str):
        record = self.job_manager.cancel(job_id)
        if record is None:
            status, body = P.error_envelope(
                P.ERR_NOT_FOUND, f"no such job {job_id!r}")
            return status, body, None
        return 200, P.envelope_v2(True, job=record.status_payload()), \
            None

    # -- DSL kernel registration (broadcast) -----------------------------

    async def _handle_kernel_submit(self, request: _Request):
        """``POST /v2/kernels``: validate at the gateway, then
        broadcast to *every* live worker.

        Sharding would be wrong here: a sweep over a ``dsl:`` workload
        lands its points on arbitrary shards (and re-dispatches to the
        survivors after a crash), so every worker must know the kernel.
        Validation is deterministic, so the gateway's own verdict and
        each worker's agree; the gateway gate rejects bad sources
        without burning a single forward.
        """
        from repro.lang import check_source

        if self._draining:
            status, body = P.error_envelope(
                P.ERR_UNAVAILABLE, "gateway is draining")
            return status, body, None
        source = P.parse_kernel_submission(request.json())
        spec, report = check_source(source)
        if spec is None:
            status, body = P.error_envelope(
                P.ERR_LINT_REJECTED,
                "kernel rejected by DSL validation",
                diagnostics=report.to_dict()["diagnostics"])
            return status, body, None
        tenant = request.tenant
        verdict = self.tenancy.admit_kernel(tenant, spec.kernel_hash)
        if not verdict.allowed:
            code = (P.ERR_TENANT_DENIED
                    if verdict.status == P.STATUS_DENIED
                    else P.ERR_THROTTLED)
            status, body = P.error_envelope(
                code, verdict.reason,
                retry_after_s=verdict.retry_after_s)
            headers = ({"Retry-After": f"{verdict.retry_after_s:.3f}"}
                       if verdict.retry_after_s is not None else None)
            return status, body, headers
        payload = json.dumps({"source": source}).encode("utf-8")
        headers = ({P.TENANT_HEADER: tenant}
                   if tenant != P.DEFAULT_TENANT else None)
        live = [addr for addr in sorted(self.workers)
                if self.workers[addr].healthy]
        results = await asyncio.gather(*[
            self._forward_raw(addr, "POST", "/v2/kernels", payload,
                              headers=headers)
            for addr in live], return_exceptions=True)
        accepted, answer = [], None
        for addr, outcome in zip(live, results, strict=True):
            if isinstance(outcome, BaseException):
                continue
            status, _headers, data = outcome
            self.workers[addr].forwarded += 1
            self.instruments.forwarded.inc()
            if status in (200, 201):
                accepted.append(addr)
                if answer is None or status == 201:
                    answer = (status, data)
            elif answer is None:
                answer = (status, data)
        if not accepted:
            self.instruments.unavailable.inc()
            if answer is None:
                status, body = P.error_envelope(
                    P.ERR_UNAVAILABLE,
                    f"no live worker accepted the kernel "
                    f"({len(live)} tried)")
                return status, body, None
            status, data = answer
            return status, self._decode_body(data), None
        status, data = answer
        body = self._decode_body(data)
        if isinstance(body.get("kernel"), dict):
            body["kernel"]["workers"] = len(accepted)
        return status, body, None

    async def _handle_kernel_list(self, request: _Request):
        """``GET /v2/kernels``: ask any live worker (they converge)."""
        for addr in sorted(self.workers):
            if not self.workers[addr].healthy:
                continue
            try:
                status, _headers, data = await self._forward_raw(
                    addr, "GET", "/v2/kernels", None)
            except _FORWARD_EXC:
                continue
            return status, self._decode_body(data), None
        status, body = P.error_envelope(
            P.ERR_UNAVAILABLE, "no live worker to list kernels")
        return status, body, None

    @staticmethod
    def _decode_body(data: bytes) -> dict:
        try:
            decoded = json.loads(data) if data else {}
        except ValueError:
            decoded = {"text": data.decode("utf-8", "replace")}
        return decoded if isinstance(decoded, dict) \
            else {"body": decoded}

    # -- job runner (forward-backed) -----------------------------------

    async def _job_runner(self, payload: dict, *, priority: int,
                          timeout_s: float | None,
                          tenant: str) -> tuple[str, dict]:
        """Per-spec execution hook: forward the run to its shard."""
        spec = P.spec_from_payload(payload)
        cached = self._probe_cache(spec)
        if cached is not None:
            self.instruments.cache_hits.inc()
            return P.STATUS_HIT, P.run_response(
                P.STATUS_HIT, cached, job_hash=spec.job_hash,
                latency_ms=0.0)
        body: dict = {"spec": payload, "priority": priority}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        try:
            status, headers, envelope, _addr = \
                await self._forward_sharded(
                    spec.job_hash, "POST", "/v1/run", body,
                    tenant=tenant)
        except NoLiveWorker as exc:
            # Not served: the JobManager backs off and retries; the
            # health loop may re-add a recovered worker meanwhile.
            return P.STATUS_DRAINING, {
                "ok": False, "status": P.STATUS_DRAINING,
                "error": str(exc), "retry_after_s": 0.25}
        verdict = envelope.get("status") or (
            P.STATUS_EXECUTED if status == 200 else P.STATUS_FAILED)
        if status == 200 and self.cache is not None \
                and isinstance(envelope.get("result"), dict):
            self.cache.store_run(spec, envelope["result"])
        if verdict == P.STATUS_THROTTLED \
                and "retry_after_s" not in envelope:
            hint = headers.get("retry-after")
            with contextlib.suppress(TypeError, ValueError):
                envelope["retry_after_s"] = float(hint)
        return verdict, envelope


class NoLiveWorker(Exception):
    """Every shard is evicted (or the fleet never came up)."""


class _GatewayServiceThread(ServiceThread):
    daemon_cls = GatewayService


class GatewayThread:
    """In-process harness: N worker threads + one gateway thread.

    Mirrors :class:`~repro.service.server.ServiceThread` for tests and
    benchmarks: everything binds ephemeral ports, entering the context
    blocks until the whole fleet is ready, and exiting drains the
    gateway before the workers.  ``kill_worker(i)`` crashes one worker
    (connection resets, no drain) to exercise eviction + failover.
    """

    def __init__(self, n_workers: int = 2, *,
                 worker_kwargs: dict | None = None,
                 **gateway_kwargs) -> None:
        self.n_workers = max(1, int(n_workers))
        self._worker_kwargs = dict(worker_kwargs or {})
        self._gateway_kwargs = dict(gateway_kwargs)
        self.workers: list[ServiceThread] = []
        self.gateway: _GatewayServiceThread | None = None

    @property
    def host(self) -> str:
        return self.gateway.host

    @property
    def port(self) -> int:
        return self.gateway.port

    def worker_addrs(self) -> list[str]:
        return [f"{w.host}:{w.port}" for w in self.workers]

    def start(self) -> "GatewayThread":
        try:
            for _ in range(self.n_workers):
                worker = ServiceThread(**self._worker_kwargs)
                worker.start()
                self.workers.append(worker)
            self.gateway = _GatewayServiceThread(
                workers=self.worker_addrs(), **self._gateway_kwargs)
            self.gateway.start()
        except BaseException:
            self.shutdown()
            raise
        return self

    def kill_worker(self, index: int) -> str:
        """Crash worker ``index``; returns its address."""
        worker = self.workers[index]
        addr = f"{worker.host}:{worker.port}"
        worker.kill()
        return addr

    def shutdown(self, timeout: float = 60) -> None:
        if self.gateway is not None:
            self.gateway.shutdown(timeout=timeout)
            self.gateway = None
        for worker in self.workers:
            with contextlib.suppress(RuntimeError):
                worker.shutdown(timeout=timeout)
        self.workers = []

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
