"""Admission control: validate → lint → cache → coalesce → enqueue.

Every ``run`` (and each expanded ``sweep`` point) passes four gates
before it can cost an engine slot, in strictly increasing price order:

1. **Schema validation** — the JSON body must name real
   :class:`~repro.engine.jobs.JobSpec` fields with well-typed values
   (:func:`repro.service.protocol.spec_from_payload`); a misspelled
   knob is a 400, never a silently different design point.
2. **Pre-flight lint** — :func:`repro.analysis.speclint.lint_spec`
   runs in-process; error-severity findings answer 422 with the
   structured diagnostics, and no worker is burned discovering the
   problem dynamically.
3. **Artifact-cache probe** — the spec's content hash is looked up in
   the persistent :class:`~repro.engine.cache.ArtifactCache`; a warm
   entry is answered immediately from the event loop (this is the
   sub-10ms dispatch path the service benchmark measures).
4. **Request coalescing** — an identical spec already queued or
   executing shares that job's future instead of enqueueing a second
   copy; N callers asking for the same point cost one simulation.

Only a request that clears all four gates reaches the scheduler's
bounded queue, where backpressure (429) is the final gate.  On the way
in, the static perf analyzer (:mod:`repro.analysis.perf`) annotates
the job with its predicted cycle cost (computed on an executor thread,
memoized by hash): the scheduler calibrates cycles-per-second from
completed jobs, turns queued cost into a queue-wait estimate and a
cost-aware ``Retry-After``, and a deadline that the calibrated
estimate already exceeds is answered 504 at admission instead of
after the wait.
"""

from __future__ import annotations

import asyncio
import time

from repro.analysis.speclint import lint_spec
from repro.engine.cache import ArtifactCache, result_from_dict
from repro.engine.jobs import JobSpec

from repro.service import protocol as P
from repro.service.scheduler import JobOutcome, QueueFull, Scheduler


def _estimate_cost(spec: JobSpec) -> int | None:
    """Predicted cycle cost of a spec; never raises (daemon path)."""
    from repro.analysis.perf import estimate_job_cost

    try:
        return estimate_job_cost(spec)
    except Exception:  # noqa: BLE001 — estimation must not kill admits
        return None


class AdmissionController:
    """The admission pipeline in front of a :class:`Scheduler`."""

    def __init__(self, scheduler: Scheduler,
                 cache: ArtifactCache | None = None,
                 instruments=None, events=None) -> None:
        self.scheduler = scheduler
        self.cache = cache
        self.instruments = instruments
        self.events = events
        #: lint verdicts memoized by job hash (specs are immutable and
        #: the service sees the same hot specs over and over).
        self._lint_memo: dict[str, tuple[bool, list]] = {}

    # -- observability -------------------------------------------------

    def _mark(self, name: str, spec: JobSpec) -> None:
        if self.events is not None:
            self.events.instant(name, "service.request",
                                time.perf_counter() * 1e6, domain="wall",
                                spec=spec.describe())

    # -- the pipeline --------------------------------------------------

    def lint_verdict(self, spec: JobSpec) -> tuple[bool, list]:
        """(ok, diagnostics-as-dicts) for a spec, memoized by hash."""
        h = spec.job_hash
        memo = self._lint_memo.get(h)
        if memo is None:
            report = lint_spec(spec)
            memo = (report.ok, [d.to_dict() for d in report.diagnostics])
            if len(self._lint_memo) > 4096:
                self._lint_memo.clear()   # bound the memo, keep it dumb
            self._lint_memo[h] = memo
        return memo

    def probe_cache(self, spec: JobSpec) -> dict | None:
        """A warm run summary for ``spec``, or None.

        The raw stored payload is returned (not a re-serialization), so
        a cache-hit response is byte-identical to the payload the
        executing request stored — and therefore to
        ``run_workload(config).to_dict()`` for the same config.
        """
        if self.cache is None:
            return None
        payload = self.cache.load_run(spec)
        if payload is None:
            return None
        try:
            result_from_dict(payload)   # stale/foreign entry == miss
        except (KeyError, TypeError, ValueError):
            return None
        return payload

    async def admit_run(self, spec: JobSpec, *, priority: int = 0,
                        timeout_s: float | None = None,
                        draining: bool = False) -> JobOutcome:
        """Run one spec through every gate; always returns an outcome."""
        ok, diagnostics = self.lint_verdict(spec)
        if not ok:
            if self.instruments is not None:
                self.instruments.rejected.inc()
            self._mark("request_rejected", spec)
            errors = [d for d in diagnostics
                      if d.get("severity") == "error"]
            return JobOutcome(
                P.STATUS_REJECTED,
                error="; ".join(f"{d['code']}: {d['message']}"
                                for d in errors),
                diagnostics=diagnostics)

        payload = self.probe_cache(spec)
        if payload is not None:
            if self.instruments is not None:
                self.instruments.cache_hits.inc()
            self._mark("request_cache_hit", spec)
            return JobOutcome(P.STATUS_HIT, payload=payload,
                              diagnostics=diagnostics)

        existing = self.scheduler.find_inflight(spec.job_hash)
        if existing is not None:
            existing.waiters += 1
            if self.instruments is not None:
                self.instruments.coalesced.inc()
            self._mark("request_coalesced", spec)
            outcome = await asyncio.shield(existing.future)
            if outcome.status in (P.STATUS_EXECUTED, P.STATUS_HIT):
                return JobOutcome(P.STATUS_COALESCED,
                                  payload=outcome.payload,
                                  diagnostics=diagnostics)
            return outcome

        if draining:
            return JobOutcome(
                P.STATUS_DRAINING,
                error="service is draining; resubmit elsewhere")

        # Static cost pre-flight (executor thread: the first estimate
        # for a spec compiles and walks the program; repeats are memo
        # hits).  The cost feeds the scheduler's queue-wait estimate
        # and cost-aware Retry-After.
        loop = asyncio.get_running_loop()
        cost = await loop.run_in_executor(None, _estimate_cost, spec)

        deadline = None
        if timeout_s is not None:
            # Fail fast when the calibrated queue-wait estimate already
            # exceeds the caller's deadline: a predictable 504 now beats
            # one after timeout_s of queueing.  Without calibration (or
            # without full cost data) jobs queue as before and expiry
            # is decided at dispatch.
            wait = self.scheduler.estimated_wait_s()
            if wait is not None and wait > timeout_s:
                if self.instruments is not None:
                    self.instruments.expired.inc()
                self._mark("request_predicted_expired", spec)
                return JobOutcome(
                    P.STATUS_EXPIRED,
                    error=f"predicted queue wait {wait:.3f}s exceeds "
                          f"deadline {timeout_s:.3f}s")
            deadline = loop.time() + timeout_s
        try:
            job = self.scheduler.submit(spec, priority=priority,
                                        deadline=deadline, cost=cost)
        except QueueFull as exc:
            if self.instruments is not None:
                self.instruments.throttled.inc()
            self._mark("request_throttled", spec)
            return JobOutcome(P.STATUS_THROTTLED, error=str(exc))
        if self.instruments is not None:
            self.instruments.admitted.inc()
        self._mark("request_admitted", spec)
        outcome = await asyncio.shield(job.future)
        if diagnostics and not outcome.diagnostics:
            outcome.diagnostics = diagnostics
        return outcome
