"""Durable async jobs: append-only JSONL journal + dispatch manager.

The v2 job API decouples submission from execution: ``POST /v2/jobs``
answers immediately with a job id, and the work — one run or a whole
sweep expansion — proceeds in the background while clients poll
``GET /v2/jobs/{id}``.  Durability comes from a tiny append-only
journal under the cache directory: every state transition is one JSON
line (``create`` / ``running`` / ``result`` / ``finish``), flushed on
write, so a job survives client disconnects *and* daemon restarts.

On startup the journal is replayed into memory and **compacted** —
rewritten as one ``create`` line per live job carrying its current
state — so the file stays proportional to the job population, not the
event history.  Any job that was ``queued``/``running`` when the
previous process died is re-entered as ``queued`` with its completed
points intact; the manager then re-dispatches only the indices whose
results are still missing.  Results are byte-identical either way
because specs are content-addressed (the artifact cache answers
repeats).

:class:`JobManager` is execution-agnostic: it drives an async
``runner(spec_payload, *, priority, timeout_s)`` callable returning
``(status, envelope)``.  The single-node server plugs its admission
pipeline in; the gateway plugs its shard-forwarding client in.  Both
get the same journal semantics for free.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import os
import time
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path

from repro.service import protocol as P

#: Journal format tag written on every line.
JOURNAL_FORMAT = "repro-jobs-v1"


@dataclass
class JobRecord:
    """One async job: a run or a sweep expansion, with its progress."""

    job_id: str
    tenant: str
    kind: str                      # "run" | "sweep"
    spec_payloads: list            # serialized JobSpec dicts, in order
    priority: int = 0
    timeout_s: float | None = None
    label: str | None = None
    state: str = P.JOB_QUEUED
    created: float = 0.0
    updated: float = 0.0
    #: Per-index response envelopes; ``None`` marks a pending spec.
    results: list = field(default_factory=list)
    error: str | None = None

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * len(self.spec_payloads)

    @property
    def total(self) -> int:
        return len(self.spec_payloads)

    @property
    def done(self) -> int:
        return sum(1 for r in self.results if r is not None)

    @property
    def terminal(self) -> bool:
        return self.state in P.TERMINAL_JOB_STATES

    def status_payload(self, *, results: bool = False) -> dict:
        """The ``GET /v2/jobs/{id}`` rendering of this record."""
        doc = {
            "id": self.job_id,
            "kind": self.kind,
            "tenant": self.tenant,
            "state": self.state,
            "label": self.label,
            "priority": self.priority,
            "created": round(self.created, 3),
            "updated": round(self.updated, 3),
            "progress": {"done": self.done, "total": self.total},
            "error": self.error,
        }
        if results:
            doc["results"] = list(self.results)
        return doc

    def to_journal(self) -> dict:
        """Full snapshot for a compacted ``create`` line."""
        return {
            "id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "specs": self.spec_payloads,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "label": self.label,
            "state": self.state,
            "created": self.created,
            "updated": self.updated,
            "results": self.results,
            "error": self.error,
        }

    @classmethod
    def from_journal(cls, doc: dict) -> "JobRecord":
        record = cls(
            job_id=doc["id"], tenant=doc.get("tenant", P.DEFAULT_TENANT),
            kind=doc.get("kind", P.JOB_KIND_RUN),
            spec_payloads=list(doc.get("specs", [])),
            priority=int(doc.get("priority", 0)),
            timeout_s=doc.get("timeout_s"),
            label=doc.get("label"),
            state=doc.get("state", P.JOB_QUEUED),
            created=float(doc.get("created", 0.0)),
            updated=float(doc.get("updated", 0.0)),
            error=doc.get("error"))
        results = doc.get("results")
        if isinstance(results, list) and len(results) == record.total:
            record.results = list(results)
        return record


class JobStore:
    """Append-only JSONL journal of job state, replayed on startup.

    ``path=None`` gives a purely in-memory store — same interface, no
    durability — which is what the single-node test harness uses.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.jobs: dict[str, JobRecord] = {}
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._replay()
            self.compact()

    # -- journal plumbing ---------------------------------------------

    def _replay(self) -> None:
        if self.path is None or not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn tail write from a crash
                self._apply(event)
        # A crash mid-execution leaves queued/running jobs: both come
        # back as queued — the manager re-dispatches pending indices.
        for record in self.jobs.values():
            if record.state == P.JOB_RUNNING:
                record.state = P.JOB_QUEUED

    def _apply(self, event: dict) -> None:
        kind = event.get("event")
        if kind == "create":
            record = JobRecord.from_journal(event.get("job", {}))
            if record.job_id:
                self.jobs[record.job_id] = record
            return
        record = self.jobs.get(event.get("id", ""))
        if record is None:
            return
        if kind == "running":
            record.state = P.JOB_RUNNING
            record.updated = float(event.get("t", record.updated))
        elif kind == "result":
            index = event.get("index")
            if isinstance(index, int) and 0 <= index < record.total:
                record.results[index] = event.get("envelope")
                record.updated = float(event.get("t", record.updated))
        elif kind == "finish":
            state = event.get("state")
            if state in P.TERMINAL_JOB_STATES:
                record.state = state
            record.error = event.get("error")
            record.updated = float(event.get("t", record.updated))

    def _append(self, event: dict) -> None:
        if self.path is None:
            return
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        event["format"] = JOURNAL_FORMAT
        self._fh.write(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def compact(self) -> None:
        """Rewrite the journal as one snapshot line per live job."""
        if self.path is None:
            return
        self.close()
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for record in self.jobs.values():
                fh.write(json.dumps(
                    {"format": JOURNAL_FORMAT, "event": "create",
                     "job": record.to_journal()},
                    sort_keys=True, separators=(",", ":")) + "\n")
        tmp.replace(self.path)

    def close(self) -> None:
        if self._fh is not None:
            with contextlib.suppress(OSError):
                self._fh.close()
            self._fh = None

    # -- mutations (journal + memory stay in lockstep) -----------------

    def create(self, record: JobRecord) -> None:
        self.jobs[record.job_id] = record
        self._append({"event": "create", "job": record.to_journal()})

    def mark_running(self, record: JobRecord) -> None:
        record.state = P.JOB_RUNNING
        record.updated = time.time()
        self._append({"event": "running", "id": record.job_id,
                      "t": record.updated})

    def record_result(self, record: JobRecord, index: int,
                      envelope: dict) -> None:
        record.results[index] = envelope
        record.updated = time.time()
        self._append({"event": "result", "id": record.job_id,
                      "index": index, "envelope": envelope,
                      "t": record.updated})

    def finish(self, record: JobRecord, state: str,
               error: str | None = None) -> None:
        record.state = state
        record.error = error
        record.updated = time.time()
        self._append({"event": "finish", "id": record.job_id,
                      "state": state, "error": error,
                      "t": record.updated})


class JobManager:
    """Drives queued jobs to completion over an abstract runner.

    ``runner`` is ``async (spec_payload, *, priority, timeout_s,
    tenant) -> (status, envelope)`` — the per-spec execution hook.  A
    spec whose status is not 2xx-served still records its envelope (so
    a sweep with one rejected point finishes ``failed`` with the
    diagnostics preserved), except ``throttled``/``draining`` which
    retry with backoff: an async job has no client to re-submit, so
    admission pressure must not abort it.
    """

    #: Statuses that mean "ran to a verdict" rather than "try later".
    _SERVED = frozenset((P.STATUS_EXECUTED, P.STATUS_HIT,
                         P.STATUS_COALESCED, P.STATUS_REJECTED,
                         P.STATUS_FAILED, P.STATUS_EXPIRED))

    def __init__(self, store: JobStore, runner, *,
                 max_attempts: int = 64,
                 retry_floor_s: float = 0.02) -> None:
        self.store = store
        self.runner = runner
        self.max_attempts = max_attempts
        self.retry_floor_s = retry_floor_s
        self._seq = itertools.count(1)
        self._tasks: dict[str, asyncio.Task] = {}
        self._cancelling: set[str] = set()
        #: Set during drain/abort: stop retrying backpressure and let
        #: interrupted jobs fall back to the journal for replay.
        self.stopping = False

    # -- identity ------------------------------------------------------

    def _job_id(self, spec_payloads: list) -> str:
        digest = sha256(json.dumps(spec_payloads, sort_keys=True)
                        .encode("utf-8")).hexdigest()
        return f"j-{digest[:10]}-{next(self._seq):04d}"

    # -- API -----------------------------------------------------------

    def submit(self, kind: str, spec_payloads: list, *,
               priority: int = 0, timeout_s: float | None = None,
               tenant: str = P.DEFAULT_TENANT,
               label: str | None = None) -> JobRecord:
        now = time.time()
        record = JobRecord(
            job_id=self._job_id(spec_payloads), tenant=tenant,
            kind=kind, spec_payloads=list(spec_payloads),
            priority=priority, timeout_s=timeout_s, label=label,
            created=now, updated=now)
        self.store.create(record)
        self._dispatch(record)
        return record

    def get(self, job_id: str) -> JobRecord | None:
        return self.store.jobs.get(job_id)

    def list_jobs(self, state: str | None = None,
                  tenant: str | None = None) -> list[JobRecord]:
        records = sorted(self.store.jobs.values(),
                         key=lambda r: (r.created, r.job_id))
        if state is not None:
            records = [r for r in records if r.state == state]
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        return records

    def cancel(self, job_id: str) -> JobRecord | None:
        """Request cancellation; returns the record or None."""
        record = self.store.jobs.get(job_id)
        if record is None:
            return None
        if not record.terminal:
            self._cancelling.add(job_id)
            task = self._tasks.get(job_id)
            if task is None:
                # Not dispatched (e.g. recovered but not resumed yet).
                self.store.finish(record, P.JOB_CANCELLED,
                                  "cancelled before dispatch")
        return record

    def recover(self) -> int:
        """Re-dispatch every journal-replayed non-terminal job."""
        resumed = 0
        for record in self.store.jobs.values():
            if not record.terminal and record.job_id not in self._tasks:
                self._dispatch(record)
                resumed += 1
        return resumed

    async def quiesce(self, timeout: float | None = None) -> None:
        """Wait for all running dispatch tasks (drain path)."""
        tasks = [t for t in self._tasks.values() if not t.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=timeout)

    def abort(self) -> None:
        """Hard-cancel all dispatch tasks (crash simulation)."""
        for task in self._tasks.values():
            task.cancel()

    # -- execution -----------------------------------------------------

    def _dispatch(self, record: JobRecord) -> None:
        task = asyncio.get_running_loop().create_task(
            self._drive(record), name=f"repro-job-{record.job_id}")
        self._tasks[record.job_id] = task
        task.add_done_callback(
            lambda _t: self._tasks.pop(record.job_id, None))

    async def _drive(self, record: JobRecord) -> None:
        try:
            self.store.mark_running(record)
            failed = False
            for index, payload in enumerate(record.spec_payloads):
                if record.job_id in self._cancelling:
                    self._cancelling.discard(record.job_id)
                    self.store.finish(record, P.JOB_CANCELLED,
                                      "cancelled by request")
                    return
                if record.results[index] is not None:
                    continue  # replayed from the journal
                status, envelope = await self._run_spec(record, payload)
                if status not in self._SERVED and self.stopping:
                    # Interrupted by shutdown: record nothing so the
                    # journal replays this job (pending indices only).
                    return
                self.store.record_result(record, index, envelope)
                if status not in (P.STATUS_EXECUTED, P.STATUS_HIT,
                                  P.STATUS_COALESCED):
                    failed = True
            self._cancelling.discard(record.job_id)
            if failed:
                bad = sum(1 for r in record.results
                          if not (r or {}).get("ok"))
                self.store.finish(
                    record, P.JOB_FAILED,
                    f"{bad}/{record.total} spec(s) not served")
            else:
                self.store.finish(record, P.JOB_SUCCEEDED)
        except asyncio.CancelledError:
            # Process going down hard: leave the journal as-is; the
            # job replays as queued on the next startup.
            raise
        except Exception as exc:  # noqa: BLE001 — job must terminate
            self.store.finish(record, P.JOB_FAILED,
                              f"{type(exc).__name__}: {exc}")

    async def _run_spec(self, record: JobRecord,
                        payload: dict) -> tuple[str, dict]:
        delay = self.retry_floor_s
        last: tuple[str, dict] | None = None
        for _attempt in range(self.max_attempts):
            status, envelope = await self.runner(
                payload, priority=record.priority,
                timeout_s=record.timeout_s, tenant=record.tenant)
            last = (status, envelope)
            if status in self._SERVED:
                return status, envelope
            if self.stopping or record.job_id in self._cancelling:
                return status, envelope
            # Backpressure (throttled/draining/denied): wait and
            # retry — the job is durable, pressure is transient.
            hint = envelope.get("retry_after_s")
            if not isinstance(hint, (int, float)) or hint <= 0:
                hint = delay
            await asyncio.sleep(min(2.0, max(self.retry_floor_s, hint)))
            delay = min(2.0, delay * 2)
        assert last is not None
        return last
