"""The daemon: asyncio HTTP/1.1 front end, lifecycle, observability.

``repro serve`` runs a :class:`ReproService` — a single-process,
stdlib-only asyncio server that keeps the expensive state warm across
requests: the engine's persistent :class:`~repro.engine.cache.
ArtifactCache`, the in-process compile/decode caches, the lint memo,
and a service-scoped metrics registry.  Request handling is split
across the sibling modules (admission → scheduler → engine); this
module owns the transport and the lifecycle:

- hand-rolled HTTP/1.1 over ``asyncio.start_server`` (keep-alive,
  bounded body size, JSON responses) — no third-party web framework;
- ``/healthz`` readiness and ``/metrics`` Prometheus exposition,
  served from the event loop even while batches execute;
- graceful drain-then-shutdown: SIGTERM/SIGINT stop admission of new
  work (503), flush the queue, wait for in-flight jobs to answer,
  then close the listener and exit.

The transport + lifecycle live in :class:`HttpDaemon`, shared with
the sharding front end (:mod:`repro.service.gateway`): both daemons
speak identical HTTP, differ only in routing.  Besides the original
synchronous v1 surface, the service mounts the durable v2 job API
(``POST /v2/jobs`` → poll ``GET /v2/jobs/{id}``) backed by a JSONL
journal (``journal=`` path), and optional per-tenant admission
(:mod:`repro.service.tenancy`).

:class:`ServiceThread` runs the same daemon on a background thread for
tests and benchmarks (port 0 → ephemeral port, no signals involved);
``kill()`` simulates a crash — connections reset, no drain — which is
what the shard-failure tests and the chaos harness exercise.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
import urllib.parse

from repro.engine.cache import ArtifactCache
from repro.analysis.speclint import lint_spec
from repro.lang import KernelStore, set_default_kernel_dir

from repro.service import protocol as P
from repro.service.admission import AdmissionController
from repro.service.instruments import ServiceInstruments
from repro.service.jobstore import JobManager, JobStore
from repro.service.scheduler import Scheduler
from repro.service.tenancy import TenancyController

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _Request:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict,
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise P.ProtocolError(f"request body is not JSON: {exc}") \
                from exc

    @property
    def tenant(self) -> str:
        return self.headers.get(P.TENANT_HEADER, P.DEFAULT_TENANT) \
            or P.DEFAULT_TENANT

    def query(self) -> dict:
        _, _, qs = self.path.partition("?")
        return {k: v[-1] for k, v in
                urllib.parse.parse_qs(qs).items()}


class HttpDaemon:
    """Transport + lifecycle shared by the worker and the gateway.

    Subclasses implement :meth:`_route` (and optionally the lifecycle
    hooks ``_drain``, ``_abort_tasks``, ``_banner``, ``_summary``).
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = P.DEFAULT_PORT) -> None:
        self.host = host
        self.port = port
        self.started_at = time.time()
        self.requests_served = 0
        self._server: asyncio.Server | None = None
        self._draining = False
        self._done: asyncio.Event | None = None
        self._shutdown_task: asyncio.Task | None = None
        self._active_requests = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind the listener (resolving port 0) and start dispatching."""
        self._done = asyncio.Event()
        await self._start_tasks()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def _start_tasks(self) -> None:
        """Hook: launch background tasks (needs the running loop)."""

    async def wait_done(self) -> None:
        """Block until a shutdown request has fully drained."""
        assert self._done is not None, "start() first"
        await self._done.wait()

    def begin_shutdown(self) -> None:
        """Initiate drain-then-shutdown (idempotent, loop thread)."""
        if self._draining:
            return
        self._draining = True
        self._shutdown_task = asyncio.get_running_loop().create_task(
            self._shutdown())

    async def _drain(self) -> None:
        """Hook: flush internal queues before the listener closes."""

    def _abort_tasks(self) -> None:
        """Hook: hard-cancel internal tasks on :meth:`abort`."""

    async def _shutdown(self) -> None:
        # 1. stop accepting new connections; existing handlers finish.
        if self._server is not None:
            self._server.close()
        # 2. flush the queue, wait for in-flight jobs to answer.
        await self._drain()
        # 3. let responses already being written reach their sockets.
        for _ in range(500):   # bounded: at most ~5s
            if self._active_requests == 0:
                break
            await asyncio.sleep(0.01)
        # 4. hang up on idle keep-alive clients (otherwise 3.12+'s
        #    Server.wait_closed would wait on them forever).
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._server is not None:
            with contextlib.suppress(TimeoutError, asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=5)
        if self._done is not None:
            self._done.set()

    def abort(self) -> None:
        """Simulated crash: reset every connection, skip the drain.

        For shard-failure tests and the chaos harness only — clients
        see connection resets exactly as if the process died.  The
        journal is left as-is, so replay-on-restart is exercised for
        real.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        self._abort_tasks()
        for writer in list(self._writers):
            transport = getattr(writer, "transport", None)
            with contextlib.suppress(Exception):
                if transport is not None:
                    transport.abort()
                else:
                    writer.close()
        if self._done is not None:
            self._done.set()

    def run(self) -> int:
        """Blocking entry point for the CLI (installs signal handlers)."""
        return asyncio.run(self._main())

    async def _main(self) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, self.begin_shutdown)
        print(self._banner(), flush=True)
        await self.wait_done()
        print(self._summary(), flush=True)
        return 0

    def _banner(self) -> str:
        return (f"repro service listening on "
                f"http://{self.host}:{self.port}")

    def _summary(self) -> str:
        return (f"repro service drained: {self.requests_served} "
                f"requests served")

    # -- HTTP transport ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except P.ProtocolError as exc:
                    await self._respond(writer, exc.http_status,
                                        P.envelope(False, error=str(exc)),
                                        keep_alive=False)
                    break
                if request is None:
                    break
                keep_alive = (request.headers.get("connection", "")
                              .lower() != "close")
                self._active_requests += 1
                try:
                    status, body, headers = await self._route(request)
                    self.requests_served += 1
                    # During a drain, finish this response but hang up
                    # afterwards so keep-alive clients release us.
                    if self._draining:
                        keep_alive = False
                    await self._respond(writer, status, body,
                                        keep_alive=keep_alive,
                                        extra_headers=headers)
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass   # client went away mid-request
        except asyncio.CancelledError:
            # Loop torn down mid-request (abort / crash simulation).
            # Ending the handler normally keeps the teardown quiet —
            # asyncio's stream callback would otherwise log the
            # cancellation as "Exception in callback".
            pass
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            raise P.ProtocolError(f"malformed request line {line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise P.ProtocolError("bad Content-Length") from None
        if length > P.MAX_BODY_BYTES:
            exc = P.ProtocolError(
                f"body of {length} bytes exceeds the "
                f"{P.MAX_BODY_BYTES}-byte limit")
            exc.http_status = 413
            raise exc
        body = await reader.readexactly(length) if length else b""
        return _Request(method, path, headers, body)

    async def _respond(self, writer, status: int, body,
                       keep_alive: bool = True,
                       extra_headers: dict | None = None) -> None:
        if isinstance(body, (dict, list)):
            payload = (json.dumps(body, sort_keys=True) + "\n") \
                .encode("utf-8")
            ctype = "application/json"
        else:
            payload = str(body).encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()

    async def _route(self, request: _Request):
        raise NotImplementedError


class ReproService(HttpDaemon):
    """Simulation-as-a-service over the engine/analysis/obs stack."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = P.DEFAULT_PORT, *,
                 queue_limit: int = 64, jobs: int = 1,
                 batch_window_s: float = 0.005, batch_max: int = 16,
                 cache: ArtifactCache | None = None,
                 timeout: float | None = None, retries: int = 1,
                 worker=None, events=None,
                 max_sweep_specs: int = 1024,
                 journal=None,
                 tenancy: TenancyController | None = None,
                 kernel_dir=None) -> None:
        super().__init__(host, port)
        self.cache = cache
        self.events = events
        self.max_sweep_specs = max(1, int(max_sweep_specs))
        #: DSL kernel store (POST /v2/kernels).  Default: next to the
        #: artifact cache so every process that shares the cache also
        #: shares the kernels; pinned via the environment so engine
        #: pool children resolve ``dsl:`` names from the same root.
        if kernel_dir is None and cache is not None:
            kernel_dir = cache.root / "kernels"
        self.kernel_store = KernelStore(kernel_dir)
        set_default_kernel_dir(self.kernel_store.root)
        self.instruments = ServiceInstruments()
        self.scheduler = Scheduler(
            queue_limit=queue_limit, jobs=jobs,
            batch_window_s=batch_window_s, batch_max=batch_max,
            cache=cache, timeout=timeout, retries=retries,
            worker=worker, instruments=self.instruments, events=events)
        self.admission = AdmissionController(
            self.scheduler, cache=cache,
            instruments=self.instruments, events=events)
        self.tenancy = tenancy or TenancyController()
        #: Journal path (None → in-memory jobs, no durability).
        if journal is None and cache is not None:
            journal = cache.root / "jobs.jsonl"
        self.job_store = JobStore(journal)
        self.job_manager = JobManager(self.job_store, self._job_runner)
        self.jobs_recovered = 0

    # -- lifecycle hooks -----------------------------------------------

    async def _start_tasks(self) -> None:
        self.scheduler.start()
        self.jobs_recovered = self.job_manager.recover()

    async def _drain(self) -> None:
        self.job_manager.stopping = True
        await self.scheduler.stop()
        await self.job_manager.quiesce(timeout=10)
        self.job_store.close()

    def _abort_tasks(self) -> None:
        self.job_manager.stopping = True
        self.job_manager.abort()
        self.scheduler.abort()
        self.job_store.close()

    def _banner(self) -> str:
        extra = ""
        if self.jobs_recovered:
            extra = (f", {self.jobs_recovered} journaled job"
                     f"{'s' if self.jobs_recovered != 1 else ''} "
                     f"recovered")
        return (f"repro service listening on "
                f"http://{self.host}:{self.port} "
                f"(queue limit {self.scheduler.queue_limit}, "
                f"{self.scheduler.jobs} engine worker"
                f"{'s' if self.scheduler.jobs != 1 else ''}{extra})")

    def _summary(self) -> str:
        return (f"repro service drained: {self.requests_served} "
                f"requests served, "
                f"{int(self.instruments.cache_hits.value)} cache hits, "
                f"{int(self.instruments.executed.value)} executed")

    # -- routing -------------------------------------------------------

    async def _route(self, request: _Request):
        """Dispatch one request; returns (status, body, extra headers)."""
        method, path = request.method, request.path.split("?", 1)[0]
        if path.startswith("/v2/"):
            return await self._route_v2(request, method, path)
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._health_body(), None
            if path == "/metrics" and method == "GET":
                return 200, self.instruments.to_prometheus(), None
            if path == "/v1/stats" and method == "GET":
                return 200, P.envelope(
                    True, metrics=self.instruments.to_dict(),
                    tenancy=self.tenancy.stats()), None
            if path == "/v1/run" and method == "POST":
                return await self._handle_run(request)
            if path == "/v1/compile" and method == "POST":
                return await self._handle_compile(request)
            if path == "/v1/sweep" and method == "POST":
                return await self._handle_sweep(request)
            if path == "/v1/lint" and method == "POST":
                return self._handle_lint(request)
            if path in ("/healthz", "/metrics", "/v1/stats", "/v1/run",
                        "/v1/compile", "/v1/sweep", "/v1/lint"):
                message = f"{method} not allowed on {path}"
                return 405, P.envelope(
                    False, error=message,
                    error_detail=P.error_object(P.ERR_METHOD,
                                                message)), None
            message = f"no such endpoint {path}"
            return 404, P.envelope(
                False, error=message,
                error_detail=P.error_object(P.ERR_NOT_FOUND,
                                            message)), None
        except P.ProtocolError as exc:
            # v1 contract: `error` stays a plain string; the normalized
            # object rides along under `error_detail`.
            code = (P.ERR_LINT_REJECTED if exc.http_status == 422
                    else P.ERR_TOO_LARGE if exc.http_status == 413
                    else P.ERR_BAD_REQUEST)
            return exc.http_status, P.envelope(
                False, error=str(exc),
                error_detail=P.error_object(code, str(exc))), None
        except Exception as exc:  # noqa: BLE001 — daemon must survive
            message = f"{type(exc).__name__}: {exc}"
            return 500, P.envelope(
                False, error=message,
                error_detail=P.error_object(P.ERR_INTERNAL,
                                            message)), None

    def _health_body(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "ready": not self._draining,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.scheduler.queue_depth,
            "inflight": self.scheduler.outstanding,
            "queue_limit": self.scheduler.queue_limit,
            "requests_served": self.requests_served,
            "jobs": {
                "live": sum(1 for r in self.job_store.jobs.values()
                            if not r.terminal),
                "total": len(self.job_store.jobs),
            },
        }

    # -- v1 endpoint handlers ------------------------------------------

    async def _handle_run(self, request: _Request):
        spec, priority, timeout_s = P.parse_request_body(request.json())
        tenant = request.tenant
        verdict = self.tenancy.admit(tenant)
        if not verdict.allowed:
            return self._tenancy_reject_v1(spec, verdict)
        served = False
        try:
            started = time.perf_counter()
            outcome = await self.admission.admit_run(
                spec, priority=priority, timeout_s=timeout_s,
                draining=self._draining)
            served = outcome.status in (P.STATUS_EXECUTED, P.STATUS_HIT,
                                        P.STATUS_COALESCED)
        finally:
            self.tenancy.release(tenant, served=served)
        latency_ms = (time.perf_counter() - started) * 1e3
        self.instruments.latency_ms.observe(latency_ms)
        if self.events is not None:
            self.events.complete(
                "request", "service.request", started * 1e6,
                latency_ms * 1e3, domain="wall",
                status=outcome.status, spec=spec.describe())
        body = P.run_response(
            outcome.status, outcome.payload, job_hash=spec.job_hash,
            latency_ms=latency_ms, error=outcome.error,
            diagnostics=outcome.diagnostics or None)
        headers = None
        http = P.http_status(outcome.status)
        if outcome.status == P.STATUS_THROTTLED:
            retry_after = self.scheduler.retry_after_s()
            headers = {"Retry-After": f"{retry_after:.3f}"}
            body["error_detail"] = P.error_for_status(
                outcome.status, outcome.error or "throttled",
                retry_after_s=retry_after)
        elif http != 200:
            body["error_detail"] = P.error_for_status(
                outcome.status, outcome.error or outcome.status,
                diagnostics=outcome.diagnostics or None)
        return http, body, headers

    def _tenancy_reject_v1(self, spec, verdict):
        """v1-shaped rejection for a tenancy verdict (403/429)."""
        body = P.run_response(
            verdict.status, None, job_hash=spec.job_hash,
            latency_ms=0.0, error=verdict.reason)
        body["error_detail"] = P.error_for_status(
            verdict.status, verdict.reason,
            retry_after_s=verdict.retry_after_s)
        headers = None
        if verdict.retry_after_s is not None:
            headers = {"Retry-After": f"{verdict.retry_after_s:.3f}"}
        if self.instruments is not None:
            self.instruments.rejected.inc()
        return P.http_status(verdict.status), body, headers

    async def _handle_compile(self, request: _Request):
        spec, _, _ = P.parse_request_body(request.json())
        ok, diagnostics = self.admission.lint_verdict(spec)
        if not ok:
            return 422, P.envelope(
                False, status=P.STATUS_REJECTED,
                diagnostics=diagnostics,
                error="rejected by pre-flight lint",
                error_detail=P.error_object(
                    P.ERR_LINT_REJECTED, "rejected by pre-flight lint",
                    diagnostics=diagnostics)), None
        started = time.perf_counter()
        payload = await asyncio.get_running_loop().run_in_executor(
            None, _compile_payload, spec, self.cache)
        latency_ms = (time.perf_counter() - started) * 1e3
        return 200, P.envelope(True, status=payload.pop("status"),
                               latency_ms=round(latency_ms, 3),
                               **payload), None

    async def _handle_sweep(self, request: _Request):
        body = request.json()
        sweep = P.sweep_from_payload(body)
        try:
            specs = sweep.jobs()
        except Exception as exc:
            raise P.ProtocolError(f"bad sweep: {exc}") from exc
        if len(specs) > self.max_sweep_specs:
            raise P.ProtocolError(
                f"sweep expands to {len(specs)} specs, over the "
                f"{self.max_sweep_specs}-spec limit")
        priority = body.get("priority", 0)
        timeout_s = body.get("timeout_s")
        started = time.perf_counter()
        outcomes = await asyncio.gather(*[
            self.admission.admit_run(
                spec, priority=priority, timeout_s=timeout_s,
                draining=self._draining)
            for spec in specs])
        latency_ms = (time.perf_counter() - started) * 1e3
        self.instruments.latency_ms.observe(latency_ms)
        jobs = []
        for spec, outcome in zip(specs, outcomes, strict=True):
            entry = {
                "spec": spec.describe(),
                "job_hash": spec.job_hash,
                "status": outcome.status,
            }
            if outcome.payload is not None:
                entry["result"] = outcome.payload
            if outcome.error:
                entry["error"] = outcome.error
            if outcome.diagnostics:
                entry["diagnostics"] = outcome.diagnostics
            jobs.append(entry)
        counts: dict[str, int] = {}
        for outcome in outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        ok = all(o.status in (P.STATUS_EXECUTED, P.STATUS_HIT,
                              P.STATUS_COALESCED) for o in outcomes)
        return 200, P.envelope(ok, jobs=jobs, counts=counts,
                               sweep_hash=sweep.sweep_hash,
                               latency_ms=round(latency_ms, 3)), None

    def _handle_lint(self, request: _Request):
        spec, _, _ = P.parse_request_body(request.json())
        report = lint_spec(spec)
        return 200, P.envelope(
            report.ok, status="linted", job_hash=spec.job_hash,
            report=report.to_dict()), None

    # -- v2 job API ----------------------------------------------------

    async def _route_v2(self, request: _Request, method: str,
                        path: str):
        try:
            if path == "/v2/jobs" and method == "POST":
                return self._handle_job_submit(request)
            if path == "/v2/jobs" and method == "GET":
                return self._handle_job_list(request)
            if path == "/v2/kernels" and method == "POST":
                return self._handle_kernel_submit(request)
            if path == "/v2/kernels" and method == "GET":
                return self._handle_kernel_list()
            parts = path.strip("/").split("/")
            if len(parts) == 3 and parts[:2] == ["v2", "jobs"] \
                    and method == "GET":
                return self._handle_job_get(request, parts[2])
            if len(parts) == 4 and parts[:2] == ["v2", "jobs"] \
                    and parts[3] == "cancel" and method == "POST":
                return self._handle_job_cancel(parts[2])
            status, body = P.error_envelope(
                P.ERR_NOT_FOUND, f"no such endpoint {method} {path}")
            return status, body, None
        except P.ProtocolError as exc:
            code = (P.ERR_TOO_LARGE if exc.http_status == 413
                    else P.ERR_BAD_REQUEST)
            status, body = P.error_envelope(code, str(exc))
            return exc.http_status, body, None
        except Exception as exc:  # noqa: BLE001 — daemon must survive
            status, body = P.error_envelope(
                P.ERR_INTERNAL, f"{type(exc).__name__}: {exc}")
            return status, body, None

    def _handle_job_submit(self, request: _Request):
        if self._draining:
            status, body = P.error_envelope(
                P.ERR_UNAVAILABLE, "service is draining")
            return status, body, None
        kind, payloads, priority, timeout_s, label = \
            P.parse_job_submission(request.json())
        if len(payloads) > self.max_sweep_specs:
            raise P.ProtocolError(
                f"job expands to {len(payloads)} specs, over the "
                f"{self.max_sweep_specs}-spec limit")
        tenant = request.tenant
        verdict = self.tenancy.admit(tenant)
        if not verdict.allowed:
            status, body = P.error_envelope(
                P.ERR_TENANT_DENIED if verdict.status == P.STATUS_DENIED
                else P.ERR_THROTTLED, verdict.reason,
                retry_after_s=verdict.retry_after_s)
            headers = ({"Retry-After": f"{verdict.retry_after_s:.3f}"}
                       if verdict.retry_after_s is not None else None)
            return status, body, headers
        # The submission slot is released once the job is journaled;
        # job *execution* is bounded by the scheduler queue.
        self.tenancy.release(tenant, served=True)
        record = self.job_manager.submit(
            kind, payloads, priority=priority, timeout_s=timeout_s,
            tenant=tenant, label=label)
        return 202, P.envelope_v2(True, job=record.status_payload()), \
            None

    def _handle_kernel_submit(self, request: _Request):
        """``POST /v2/kernels``: validate, persist, register a DSL
        kernel.  Rejections fail closed *before* any engine work:
        422 carries the structured RPR5xx diagnostics, 429 a kernel
        quota with ``Retry-After``.  201 on first registration, 200
        on an idempotent re-submit of the same content."""
        from repro.lang import check_source, lower_spec
        from repro.workloads.suite import register_workload

        if self._draining:
            status, body = P.error_envelope(
                P.ERR_UNAVAILABLE, "service is draining")
            return status, body, None
        source = P.parse_kernel_submission(request.json())
        spec, report = check_source(source)
        if spec is None:
            status, body = P.error_envelope(
                P.ERR_LINT_REJECTED,
                "kernel rejected by DSL validation",
                diagnostics=report.to_dict()["diagnostics"])
            return status, body, None
        tenant = request.tenant
        verdict = self.tenancy.admit_kernel(tenant, spec.kernel_hash)
        if not verdict.allowed:
            code = (P.ERR_TENANT_DENIED
                    if verdict.status == P.STATUS_DENIED
                    else P.ERR_THROTTLED)
            status, body = P.error_envelope(
                code, verdict.reason,
                retry_after_s=verdict.retry_after_s)
            headers = ({"Retry-After": f"{verdict.retry_after_s:.3f}"}
                       if verdict.retry_after_s is not None else None)
            return status, body, headers
        created = \
            self.kernel_store.load_source(spec.workload_name) is None
        self.kernel_store.put(source, spec)
        register_workload(lower_spec(spec), replace=True)
        kernel = {
            "kernel_hash": spec.kernel_hash,
            "workload": spec.workload_name,
            "name": spec.name,
            "created": created,
            "warnings": [d.to_dict() for d in report.warnings],
        }
        return (201 if created else 200), \
            P.envelope_v2(True, kernel=kernel), None

    def _handle_kernel_list(self):
        return 200, P.envelope_v2(
            True, kernels=self.kernel_store.names()), None

    def _handle_job_list(self, request: _Request):
        query = request.query()
        state = query.get("state")
        if state is not None and state not in P.JOB_STATES:
            raise P.ProtocolError(
                f"unknown state {state!r}; expected one of "
                f"{', '.join(P.JOB_STATES)}")
        records = self.job_manager.list_jobs(
            state=state, tenant=query.get("tenant"))
        return 200, P.envelope_v2(
            True, jobs=[r.status_payload() for r in records]), None

    def _handle_job_get(self, request: _Request, job_id: str):
        record = self.job_manager.get(job_id)
        if record is None:
            status, body = P.error_envelope(
                P.ERR_NOT_FOUND, f"no such job {job_id!r}")
            return status, body, None
        want_results = request.query().get("results", "") \
            in ("1", "true", "yes")
        return 200, P.envelope_v2(
            True, job=record.status_payload(results=want_results)), None

    def _handle_job_cancel(self, job_id: str):
        record = self.job_manager.cancel(job_id)
        if record is None:
            status, body = P.error_envelope(
                P.ERR_NOT_FOUND, f"no such job {job_id!r}")
            return status, body, None
        return 200, P.envelope_v2(True, job=record.status_payload()), \
            None

    # -- job runner (admission-backed) ---------------------------------

    async def _job_runner(self, payload: dict, *, priority: int,
                          timeout_s: float | None,
                          tenant: str) -> tuple[str, dict]:
        """Per-spec execution hook the :class:`JobManager` drives."""
        spec = P.spec_from_payload(payload)
        started = time.perf_counter()
        outcome = await self.admission.admit_run(
            spec, priority=priority, timeout_s=timeout_s,
            draining=self._draining)
        latency_ms = (time.perf_counter() - started) * 1e3
        envelope = P.run_response(
            outcome.status, outcome.payload, job_hash=spec.job_hash,
            latency_ms=latency_ms, error=outcome.error,
            diagnostics=outcome.diagnostics or None)
        if outcome.status == P.STATUS_THROTTLED:
            envelope["retry_after_s"] = self.scheduler.retry_after_s()
        return outcome.status, envelope


def _compile_payload(spec, cache) -> dict:
    """Compile one spec on an executor thread (cache-aware)."""
    from repro.compiler import compile_dyser, compile_scalar
    from repro.workloads import get as get_workload

    compiled = cache.load_compile(spec) if cache is not None else None
    cached = compiled is not None
    if compiled is None:
        source = get_workload(spec.workload).source
        compiled = (compile_dyser(source, spec.options())
                    if spec.mode == "dyser" else compile_scalar(source))
        if cache is not None:
            cache.store_compile(spec, compiled)
    return {
        "status": P.STATUS_HIT if cached else P.STATUS_EXECUTED,
        "compile_hash": spec.compile_hash,
        "instructions": len(compiled.program.instructions),
        "dyser_configs": len(compiled.program.dyser_configs),
        "regions": [r.to_dict() for r in compiled.regions],
    }


class ServiceThread:
    """Run a :class:`ReproService` on a background thread.

    The in-process harness tests and benchmarks use: ``port=0`` binds
    an ephemeral port which is published on ``self.port`` once the
    listener is up.  Entering the context blocks until the service is
    ready; exiting requests a graceful drain and joins the thread.
    ``kill()`` aborts instead — connections reset mid-flight, nothing
    drains — to stand in for a crashed worker.
    """

    #: Daemon class to instantiate (the gateway harness overrides).
    daemon_cls = ReproService

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        self._kwargs = kwargs
        self.service = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._killed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True)

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - surfaced below
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.service = self.daemon_cls(**self._kwargs)
        self.loop = asyncio.get_running_loop()
        await self.service.start()
        self._ready.set()
        await self.service.wait_done()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service thread died during startup: {self._error}")
        return self

    def shutdown(self, timeout: float = 60) -> None:
        if self._killed:
            self._thread.join(timeout=5)
            return
        if self.loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self.loop.call_soon_threadsafe(
                    self.service.begin_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - deadlock guard
            raise RuntimeError("service thread failed to drain")

    def kill(self, timeout: float = 10) -> None:
        """Crash the daemon: no drain, connections reset.

        The thread is a daemon, so a handler stuck on a blocking
        injected worker cannot hang the caller — we join with a
        timeout and move on.
        """
        self._killed = True
        if self.loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self.loop.call_soon_threadsafe(self.service.abort)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
