"""The daemon: asyncio HTTP/1.1 front end, lifecycle, observability.

``repro serve`` runs a :class:`ReproService` — a single-process,
stdlib-only asyncio server that keeps the expensive state warm across
requests: the engine's persistent :class:`~repro.engine.cache.
ArtifactCache`, the in-process compile/decode caches, the lint memo,
and a service-scoped metrics registry.  Request handling is split
across the sibling modules (admission → scheduler → engine); this
module owns the transport and the lifecycle:

- hand-rolled HTTP/1.1 over ``asyncio.start_server`` (keep-alive,
  bounded body size, JSON responses) — no third-party web framework;
- ``/healthz`` readiness and ``/metrics`` Prometheus exposition,
  served from the event loop even while batches execute;
- graceful drain-then-shutdown: SIGTERM/SIGINT stop admission of new
  work (503), flush the queue, wait for in-flight jobs to answer,
  then close the listener and exit.

:class:`ServiceThread` runs the same daemon on a background thread for
tests and benchmarks (port 0 → ephemeral port, no signals involved).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time

from repro.engine.cache import ArtifactCache
from repro.engine.sweeps import SweepSpec
from repro.analysis.speclint import lint_spec

from repro.service import protocol as P
from repro.service.admission import AdmissionController
from repro.service.instruments import ServiceInstruments
from repro.service.scheduler import Scheduler

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _Request:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: dict,
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise P.ProtocolError(f"request body is not JSON: {exc}") \
                from exc


class ReproService:
    """Simulation-as-a-service over the engine/analysis/obs stack."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = P.DEFAULT_PORT, *,
                 queue_limit: int = 64, jobs: int = 1,
                 batch_window_s: float = 0.005, batch_max: int = 16,
                 cache: ArtifactCache | None = None,
                 timeout: float | None = None, retries: int = 1,
                 worker=None, events=None,
                 max_sweep_specs: int = 1024) -> None:
        self.host = host
        self.port = port
        self.cache = cache
        self.events = events
        self.max_sweep_specs = max(1, int(max_sweep_specs))
        self.instruments = ServiceInstruments()
        self.scheduler = Scheduler(
            queue_limit=queue_limit, jobs=jobs,
            batch_window_s=batch_window_s, batch_max=batch_max,
            cache=cache, timeout=timeout, retries=retries,
            worker=worker, instruments=self.instruments, events=events)
        self.admission = AdmissionController(
            self.scheduler, cache=cache,
            instruments=self.instruments, events=events)
        self.started_at = time.time()
        self.requests_served = 0
        self._server: asyncio.Server | None = None
        self._draining = False
        self._done: asyncio.Event | None = None
        self._shutdown_task: asyncio.Task | None = None
        self._active_requests = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Bind the listener (resolving port 0) and start dispatching."""
        self._done = asyncio.Event()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_done(self) -> None:
        """Block until a shutdown request has fully drained."""
        assert self._done is not None, "start() first"
        await self._done.wait()

    def begin_shutdown(self) -> None:
        """Initiate drain-then-shutdown (idempotent, loop thread)."""
        if self._draining:
            return
        self._draining = True
        self._shutdown_task = asyncio.get_running_loop().create_task(
            self._shutdown())

    async def _shutdown(self) -> None:
        # 1. stop accepting new connections; existing handlers finish.
        if self._server is not None:
            self._server.close()
        # 2. flush the queue, wait for in-flight jobs to answer.
        await self.scheduler.stop()
        # 3. let responses already being written reach their sockets.
        for _ in range(500):   # bounded: at most ~5s
            if self._active_requests == 0:
                break
            await asyncio.sleep(0.01)
        # 4. hang up on idle keep-alive clients (otherwise 3.12+'s
        #    Server.wait_closed would wait on them forever).
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._server is not None:
            with contextlib.suppress(TimeoutError, asyncio.TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=5)
        if self._done is not None:
            self._done.set()

    def run(self) -> int:
        """Blocking entry point for ``repro serve`` (installs signals)."""
        return asyncio.run(self._main())

    async def _main(self) -> int:
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(sig, self.begin_shutdown)
        print(f"repro service listening on "
              f"http://{self.host}:{self.port} "
              f"(queue limit {self.scheduler.queue_limit}, "
              f"{self.scheduler.jobs} engine worker"
              f"{'s' if self.scheduler.jobs != 1 else ''})",
              flush=True)
        await self.wait_done()
        print(f"repro service drained: {self.requests_served} requests "
              f"served, "
              f"{int(self.instruments.cache_hits.value)} cache hits, "
              f"{int(self.instruments.executed.value)} executed",
              flush=True)
        return 0

    # -- HTTP transport ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except P.ProtocolError as exc:
                    await self._respond(writer, exc.http_status,
                                        P.envelope(False, error=str(exc)),
                                        keep_alive=False)
                    break
                if request is None:
                    break
                keep_alive = (request.headers.get("connection", "")
                              .lower() != "close")
                self._active_requests += 1
                try:
                    status, body, headers = await self._route(request)
                    self.requests_served += 1
                    # During a drain, finish this response but hang up
                    # afterwards so keep-alive clients release us.
                    if self._draining:
                        keep_alive = False
                    await self._respond(writer, status, body,
                                        keep_alive=keep_alive,
                                        extra_headers=headers)
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass   # client went away mid-request
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            raise P.ProtocolError(f"malformed request line {line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise P.ProtocolError("bad Content-Length") from None
        if length > P.MAX_BODY_BYTES:
            exc = P.ProtocolError(
                f"body of {length} bytes exceeds the "
                f"{P.MAX_BODY_BYTES}-byte limit")
            exc.http_status = 413
            raise exc
        body = await reader.readexactly(length) if length else b""
        return _Request(method, path, headers, body)

    async def _respond(self, writer, status: int, body,
                       keep_alive: bool = True,
                       extra_headers: dict | None = None) -> None:
        if isinstance(body, (dict, list)):
            payload = (json.dumps(body, sort_keys=True) + "\n") \
                .encode("utf-8")
            ctype = "application/json"
        else:
            payload = str(body).encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, request: _Request):
        """Dispatch one request; returns (status, body, extra headers)."""
        method, path = request.method, request.path.split("?", 1)[0]
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._health_body(), None
            if path == "/metrics" and method == "GET":
                return 200, self.instruments.to_prometheus(), None
            if path == "/v1/stats" and method == "GET":
                return 200, P.envelope(
                    True, metrics=self.instruments.to_dict()), None
            if path == "/v1/run" and method == "POST":
                return await self._handle_run(request)
            if path == "/v1/compile" and method == "POST":
                return await self._handle_compile(request)
            if path == "/v1/sweep" and method == "POST":
                return await self._handle_sweep(request)
            if path == "/v1/lint" and method == "POST":
                return self._handle_lint(request)
            if path in ("/healthz", "/metrics", "/v1/stats", "/v1/run",
                        "/v1/compile", "/v1/sweep", "/v1/lint"):
                return 405, P.envelope(
                    False, error=f"{method} not allowed on {path}"), None
            return 404, P.envelope(
                False, error=f"no such endpoint {path}"), None
        except P.ProtocolError as exc:
            return exc.http_status, P.envelope(False, error=str(exc)), None
        except Exception as exc:  # noqa: BLE001 — daemon must survive
            return 500, P.envelope(
                False, error=f"{type(exc).__name__}: {exc}"), None

    def _health_body(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "ready": not self._draining,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.scheduler.queue_depth,
            "inflight": self.scheduler.outstanding,
            "queue_limit": self.scheduler.queue_limit,
            "requests_served": self.requests_served,
        }

    # -- endpoint handlers ---------------------------------------------

    async def _handle_run(self, request: _Request):
        spec, priority, timeout_s = P.parse_request_body(request.json())
        started = time.perf_counter()
        outcome = await self.admission.admit_run(
            spec, priority=priority, timeout_s=timeout_s,
            draining=self._draining)
        latency_ms = (time.perf_counter() - started) * 1e3
        self.instruments.latency_ms.observe(latency_ms)
        if self.events is not None:
            self.events.complete(
                "request", "service.request", started * 1e6,
                latency_ms * 1e3, domain="wall",
                status=outcome.status, spec=spec.describe())
        body = P.run_response(
            outcome.status, outcome.payload, job_hash=spec.job_hash,
            latency_ms=latency_ms, error=outcome.error,
            diagnostics=outcome.diagnostics or None)
        headers = None
        if outcome.status == P.STATUS_THROTTLED:
            headers = {"Retry-After":
                       f"{self.scheduler.retry_after_s():.3f}"}
        return P.HTTP_STATUS[outcome.status], body, headers

    async def _handle_compile(self, request: _Request):
        spec, _, _ = P.parse_request_body(request.json())
        ok, diagnostics = self.admission.lint_verdict(spec)
        if not ok:
            return 422, P.envelope(
                False, status=P.STATUS_REJECTED,
                diagnostics=diagnostics,
                error="rejected by pre-flight lint"), None
        started = time.perf_counter()
        payload = await asyncio.get_running_loop().run_in_executor(
            None, _compile_payload, spec, self.cache)
        latency_ms = (time.perf_counter() - started) * 1e3
        return 200, P.envelope(True, status=payload.pop("status"),
                               latency_ms=round(latency_ms, 3),
                               **payload), None

    async def _handle_sweep(self, request: _Request):
        body = request.json()
        if not isinstance(body, dict):
            raise P.ProtocolError("sweep body must be a JSON object")
        if "sweep" in body:
            # First-class form: the body carries a serialized SweepSpec.
            try:
                sweep = SweepSpec.from_dict(body["sweep"])
            except Exception as exc:
                raise P.ProtocolError(f"bad sweep: {exc}") from exc
        else:
            # Legacy form: loose workloads/modes/base/axes fields.
            workloads = body.get("workloads")
            if not isinstance(workloads, list) or not workloads:
                raise P.ProtocolError(
                    "sweep.workloads must be a non-empty list")
            modes = tuple(body.get("modes", ["dyser"]))
            base = body.get("base", {})
            axes = body.get("axes", {})
            if not isinstance(base, dict) or not isinstance(axes, dict):
                raise P.ProtocolError(
                    "sweep.base/axes must be JSON objects")
            base = dict(base)
            axes = {name: list(values) for name, values in axes.items()}
            for obj in (base, axes):
                if "geometry" in obj:
                    value = obj["geometry"]
                    obj["geometry"] = ([tuple(v) for v in value]
                                       if isinstance(value, list)
                                       and value
                                       and isinstance(value[0],
                                                      (list, tuple))
                                       else tuple(value))
            try:
                sweep = SweepSpec(workloads=tuple(workloads), modes=modes,
                                  base=base, axes=tuple(axes.items()))
            except Exception as exc:  # bad field names/values
                raise P.ProtocolError(f"bad sweep: {exc}") from exc
        try:
            specs = sweep.jobs()
        except Exception as exc:
            raise P.ProtocolError(f"bad sweep: {exc}") from exc
        if len(specs) > self.max_sweep_specs:
            raise P.ProtocolError(
                f"sweep expands to {len(specs)} specs, over the "
                f"{self.max_sweep_specs}-spec limit")
        priority = body.get("priority", 0)
        timeout_s = body.get("timeout_s")
        started = time.perf_counter()
        outcomes = await asyncio.gather(*[
            self.admission.admit_run(
                spec, priority=priority, timeout_s=timeout_s,
                draining=self._draining)
            for spec in specs])
        latency_ms = (time.perf_counter() - started) * 1e3
        self.instruments.latency_ms.observe(latency_ms)
        jobs = []
        for spec, outcome in zip(specs, outcomes, strict=True):
            entry = {
                "spec": spec.describe(),
                "job_hash": spec.job_hash,
                "status": outcome.status,
            }
            if outcome.payload is not None:
                entry["result"] = outcome.payload
            if outcome.error:
                entry["error"] = outcome.error
            if outcome.diagnostics:
                entry["diagnostics"] = outcome.diagnostics
            jobs.append(entry)
        counts: dict[str, int] = {}
        for outcome in outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        ok = all(o.status in (P.STATUS_EXECUTED, P.STATUS_HIT,
                              P.STATUS_COALESCED) for o in outcomes)
        return 200, P.envelope(ok, jobs=jobs, counts=counts,
                               sweep_hash=sweep.sweep_hash,
                               latency_ms=round(latency_ms, 3)), None

    def _handle_lint(self, request: _Request):
        spec, _, _ = P.parse_request_body(request.json())
        report = lint_spec(spec)
        return 200, P.envelope(
            report.ok, status="linted", job_hash=spec.job_hash,
            report=report.to_dict()), None


def _compile_payload(spec, cache) -> dict:
    """Compile one spec on an executor thread (cache-aware)."""
    from repro.compiler import compile_dyser, compile_scalar
    from repro.workloads import get as get_workload

    compiled = cache.load_compile(spec) if cache is not None else None
    cached = compiled is not None
    if compiled is None:
        source = get_workload(spec.workload).source
        compiled = (compile_dyser(source, spec.options())
                    if spec.mode == "dyser" else compile_scalar(source))
        if cache is not None:
            cache.store_compile(spec, compiled)
    return {
        "status": P.STATUS_HIT if cached else P.STATUS_EXECUTED,
        "compile_hash": spec.compile_hash,
        "instructions": len(compiled.program.instructions),
        "dyser_configs": len(compiled.program.dyser_configs),
        "regions": [r.to_dict() for r in compiled.regions],
    }


class ServiceThread:
    """Run a :class:`ReproService` on a background thread.

    The in-process harness tests and benchmarks use: ``port=0`` binds
    an ephemeral port which is published on ``self.port`` once the
    listener is up.  Entering the context blocks until the service is
    ready; exiting requests a graceful drain and joins the thread.
    """

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        self._kwargs = kwargs
        self.service: ReproService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True)

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - surfaced below
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.service = ReproService(**self._kwargs)
        self.loop = asyncio.get_running_loop()
        await self.service.start()
        self._ready.set()
        await self.service.wait_done()

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service thread died during startup: {self._error}")
        return self

    def shutdown(self, timeout: float = 60) -> None:
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.service.begin_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - deadlock guard
            raise RuntimeError("service thread failed to drain")

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
