"""Scheduling: bounded priority queue + micro-batched engine dispatch.

Admitted jobs wait in a priority queue (lower ``priority`` value runs
first; FIFO within a priority level via a monotonic sequence number).
A single dispatcher task drains the queue into *micro-batches*: it
waits ``batch_window_s`` after the first job arrives so closely spaced
requests ride one :func:`repro.engine.pool.run_jobs` submission —
amortizing pool startup when ``jobs > 1`` and letting the engine's
dedup/cache/lint machinery see the whole batch at once.  The blocking
engine call runs on a worker thread (``loop.run_in_executor``), so the
event loop keeps admitting requests and serving scrapes while a batch
simulates.

Backpressure is bounded end-to-end, not just at the queue: the
capacity check counts every admitted-but-unanswered job (queued *and*
executing), so a slow batch cannot hide unbounded buffering behind an
"empty" queue.  When the bound is hit, admission answers 429 with a
``Retry-After`` hint instead of enqueueing.

Each job carries an optional deadline.  A job whose deadline has
already passed when the dispatcher pops it is answered ``expired``
(504) without burning an engine slot; deadlines during execution are
governed by the engine's own per-job ``timeout`` (pooled mode).
"""

from __future__ import annotations

import asyncio
import contextlib
import heapq
import itertools
import time
from dataclasses import dataclass, field

from repro.engine.cache import ArtifactCache, result_to_dict
from repro.engine.jobs import JobSpec
from repro.engine.pool import run_jobs
from repro.engine.report import DUPLICATE, EXECUTED, HIT, REJECTED

from repro.service import protocol as P


class QueueFull(Exception):
    """Raised by :meth:`Scheduler.submit` when the bound is hit."""


@dataclass
class JobOutcome:
    """Terminal verdict for one admitted job."""

    status: str
    payload: dict | None = None
    error: str | None = None
    diagnostics: list = field(default_factory=list)


@dataclass(order=True)
class _QueueEntry:
    priority: int
    seq: int
    job: "Job" = field(compare=False)


class Job:
    """One admitted run request travelling through the scheduler."""

    __slots__ = ("spec", "job_hash", "priority", "future", "enqueued_at",
                 "deadline", "waiters", "cost")

    def __init__(self, spec: JobSpec, job_hash: str, priority: int,
                 future: asyncio.Future, deadline: float | None,
                 cost: int | None = None) -> None:
        self.spec = spec
        self.job_hash = job_hash
        self.priority = priority
        self.future = future
        self.enqueued_at = time.perf_counter()
        self.deadline = deadline
        #: How many coalesced requests share this job's future.
        self.waiters = 1
        #: Predicted cycle cost from the static perf analyzer (None
        #: when unavailable); feeds queue-wait estimates.
        self.cost = cost


class Scheduler:
    """Owns the queue, the in-flight registry, and the dispatch loop."""

    def __init__(self, *, queue_limit: int = 64, jobs: int = 1,
                 batch_window_s: float = 0.005, batch_max: int = 16,
                 cache: ArtifactCache | None = None,
                 timeout: float | None = None, retries: int = 1,
                 worker=None, instruments=None, events=None) -> None:
        self.queue_limit = max(1, int(queue_limit))
        self.jobs = max(1, int(jobs))
        self.batch_window_s = max(0.0, float(batch_window_s))
        self.batch_max = max(1, int(batch_max))
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.worker = worker
        self.instruments = instruments
        self.events = events

        self._heap: list[_QueueEntry] = []
        self._seq = itertools.count()
        #: job_hash -> Job for every admitted-but-unanswered primary.
        self.inflight: dict[str, Job] = {}
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._task: asyncio.Task | None = None
        self._executing = 0
        #: Throughput calibration from completed jobs: predicted
        #: cycles delivered vs wall seconds spent executing them.
        self._cycles_done = 0
        self._wall_done = 0.0

    # -- capacity ------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Admitted jobs not yet answered (queued + executing)."""
        return len(self.inflight)

    @property
    def queue_depth(self) -> int:
        return len(self._heap)

    def cycles_per_s(self) -> float | None:
        """Calibrated simulation throughput, or None before any
        completed job carried a cost estimate."""
        if self._cycles_done > 0 and self._wall_done > 0.0:
            return self._cycles_done / self._wall_done
        return None

    def estimated_wait_s(self) -> float | None:
        """Predicted time to drain the current queue.

        Needs both a calibrated throughput and a cost estimate on
        every queued job; returns None otherwise (callers fall back to
        the latency-histogram heuristic).
        """
        rate = self.cycles_per_s()
        if rate is None or not self._heap:
            return None
        costs = [entry.job.cost for entry in self._heap]
        if any(cost is None for cost in costs):
            return None
        return sum(costs) / rate

    def retry_after_s(self) -> float:
        """Backpressure hint: rough time for one queued job to clear.

        Prefers the cost-model estimate (predicted queued cycles over
        calibrated throughput); falls back to the observed latency
        histogram, then to a flat 0.5s before any data exists.
        """
        estimate = self.estimated_wait_s()
        if estimate is not None:
            return max(0.05, min(30.0, estimate))
        hist = getattr(self.instruments, "latency_ms", None)
        if hist is not None and hist.count:
            return max(0.05, min(30.0, hist.mean / 1000.0))
        return 0.5

    # -- submission (event-loop thread only) ---------------------------

    def submit(self, spec: JobSpec, *, priority: int = 0,
               deadline: float | None = None,
               cost: int | None = None) -> Job:
        """Enqueue a new primary job; raises :class:`QueueFull`."""
        if self.outstanding >= self.queue_limit:
            raise QueueFull(
                f"{self.outstanding} outstanding jobs "
                f"(limit {self.queue_limit})")
        future = asyncio.get_running_loop().create_future()
        job = Job(spec, spec.job_hash, priority, future, deadline,
                  cost=cost)
        self.inflight[job.job_hash] = job
        heapq.heappush(self._heap,
                       _QueueEntry(priority, next(self._seq), job))
        self._idle.clear()
        self._wakeup.set()
        self._gauges()
        return job

    def find_inflight(self, job_hash: str) -> Job | None:
        """The in-flight primary for ``job_hash``, for coalescing."""
        return self.inflight.get(job_hash)

    def _gauges(self) -> None:
        if self.instruments is not None:
            self.instruments.queue_depth.set(len(self._heap))
            self.instruments.inflight.set(len(self.inflight))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._dispatch_loop(), name="repro-service-dispatch")

    async def drain(self) -> None:
        """Flush the queue and wait for every in-flight job to answer."""
        self._draining = True
        self._wakeup.set()
        await self._idle.wait()

    async def stop(self) -> None:
        await self.drain()
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    def abort(self) -> None:
        """Hard-stop without draining (crash simulation).

        Queued jobs are dropped unanswered; a batch already on the
        executor thread runs to completion in the background (the
        engine call cannot be interrupted), but nothing consumes its
        outcome.
        """
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._heap:
                if not self.inflight:
                    self._idle.set()
                continue
            # Micro-batch window: let closely spaced requests pile up,
            # unless draining (then flush immediately).
            if self.batch_window_s and not self._draining \
                    and len(self._heap) < self.batch_max:
                await asyncio.sleep(self.batch_window_s)
            batch: list[Job] = []
            now = loop.time()
            while self._heap and len(batch) < self.batch_max:
                job = heapq.heappop(self._heap).job
                if job.deadline is not None and now > job.deadline:
                    self._resolve(job, JobOutcome(
                        P.STATUS_EXPIRED,
                        error=f"deadline expired after "
                              f"{now - (job.deadline or now):.3f}s "
                              f"in queue"))
                    if self.instruments is not None:
                        self.instruments.expired.inc()
                    continue
                batch.append(job)
            self._gauges()
            if not batch:
                if not self._heap and not self.inflight:
                    self._idle.set()
                if self._heap:
                    self._wakeup.set()
                continue
            self._executing += len(batch)
            try:
                await self._run_batch(loop, batch)
            finally:
                self._executing -= len(batch)
            if self._heap:
                self._wakeup.set()
            elif not self.inflight:
                self._idle.set()

    async def _run_batch(self, loop, batch: list[Job]) -> None:
        specs = [job.spec for job in batch]
        if self.instruments is not None:
            self.instruments.batches.inc()
            self.instruments.batch_size.observe(len(batch))
        try:
            report = await loop.run_in_executor(
                None, self._run_jobs_blocking, specs)
        except Exception as exc:  # noqa: BLE001 — daemon must survive
            for job in batch:
                self._resolve(job, JobOutcome(
                    P.STATUS_FAILED,
                    error=f"engine dispatch failed: "
                          f"{type(exc).__name__}: {exc}"))
                if self.instruments is not None:
                    self.instruments.failed.inc()
            return
        for job, record, result in zip(batch, report.records,
                                       report.results, strict=True):
            if record.status == EXECUTED and job.cost \
                    and record.wall_s > 0.0:
                self._cycles_done += job.cost
                self._wall_done += record.wall_s
            if record.status in (EXECUTED, HIT, DUPLICATE) \
                    and result is not None:
                status = (P.STATUS_HIT if record.status == HIT
                          else P.STATUS_EXECUTED)
                self._resolve(job, JobOutcome(
                    status, payload=result_to_dict(result)))
                if self.instruments is not None:
                    self.instruments.executed.inc()
            elif record.status == REJECTED:
                # Admission lints first, so this only happens for a
                # worker-injected lint disagreement; surface it as 422.
                self._resolve(job, JobOutcome(
                    P.STATUS_REJECTED, error=record.error,
                    diagnostics=[d.to_dict()
                                 for d in record.diagnostics]))
                if self.instruments is not None:
                    self.instruments.rejected.inc()
            else:
                self._resolve(job, JobOutcome(
                    P.STATUS_FAILED,
                    error=record.error or "job failed"))
                if self.instruments is not None:
                    self.instruments.failed.inc()

    def _run_jobs_blocking(self, specs: list[JobSpec]):
        """One engine submission for the batch (executor thread)."""
        return run_jobs(
            specs, jobs=self.jobs, cache=self.cache,
            timeout=self.timeout, retries=self.retries,
            worker=self.worker, events=self.events,
            progress=self._progress_record)

    def _progress_record(self, record) -> None:
        """Engine progress hook → obs event stream (executor thread)."""
        if self.events is not None:
            self.events.instant(
                "job_progress", "service.job",
                time.perf_counter() * 1e6, domain="wall",
                spec=record.spec.describe(), status=record.status)

    def _resolve(self, job: Job, outcome: JobOutcome) -> None:
        self.inflight.pop(job.job_hash, None)
        if not job.future.done():
            job.future.set_result(outcome)
        self._gauges()
