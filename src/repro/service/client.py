"""Synchronous client for the simulation service (stdlib ``http.client``).

The v2 surface is one coherent :class:`Client`:

- :meth:`Client.execute` — the synchronous v1 fast path: submit one
  run and block for its envelope (cache hits answer in microseconds);
- :meth:`Client.submit` / :meth:`Client.sweep` — the durable async
  path: ``POST /v2/jobs`` returns a typed :class:`JobHandle`
  immediately; the job keeps running if this process goes away;
- :meth:`Client.job` / :meth:`Client.jobs` / :meth:`Client.wait` /
  :meth:`Client.cancel` — poll, list, block on, or stop a job, all
  returning typed :class:`JobStatus` snapshots.

:class:`ServiceClient` is the legacy name: it *is* a :class:`Client`,
plus the pre-v2 per-endpoint methods (``run`` / ``sweep(workloads)``
/ ``sweep_spec``) kept as ``DeprecationWarning`` shims — same pattern
as the PR 7 ``SweepSpec`` migration.  Existing code keeps working
unchanged; new code should construct :class:`Client`.

One client holds one keep-alive connection (it is not thread-safe —
give each thread its own; the closed-loop benchmark does exactly
that).  The retry policy treats the service's explicit backpressure
signals as *retryable*, everything else as final:

- transport failures (connection refused/reset, truncated response)
  retry with capped exponential backoff — this is what lets
  ``repro submit`` race ``repro serve &`` startup and survive a
  flapping server;
- ``429`` honours the server's ``Retry-After`` hint (capped);
- ``503`` (draining) backs off like a transport failure;
- any other status is returned to the caller immediately.

Retrying a run submission is safe by construction: requests are
content-addressed by ``JobSpec.job_hash``, so a duplicate submission
coalesces onto the original in-flight job or hits the artifact cache —
it can never run the same work twice.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import socket
import time
import warnings
from dataclasses import dataclass, field

from repro.errors import ReproError

from repro.service import protocol as P
from repro.service.protocol import DEFAULT_PORT

#: Transport-level failures worth a retry.
_RETRYABLE_EXC = (ConnectionError, socket.timeout, socket.gaierror,
                  http.client.HTTPException, OSError)


class ServiceError(ReproError):
    """A request that could not be served (after retries).

    Carries ``status`` (HTTP status code, or 0 for transport failures)
    and ``payload`` (the decoded response body, when there was one).
    """

    def __init__(self, message: str, *, status: int = 0,
                 payload: dict | None = None, **context) -> None:
        super().__init__(message, status=status, **context)
        self.status = status
        self.payload = payload or {}


def _error_message(payload: dict, status: int) -> str:
    """Human-readable error from a v1 or v2 response body."""
    error = payload.get("error")
    if isinstance(error, dict):
        return str(error.get("message") or error.get("code")
                   or f"HTTP {status}")
    if error:
        return str(error)
    return f"HTTP {status}"


@dataclass(frozen=True)
class JobStatus:
    """Immutable snapshot of one async job, as the server reported it."""

    id: str
    kind: str
    state: str
    tenant: str = P.DEFAULT_TENANT
    label: str | None = None
    priority: int = 0
    created: float = 0.0
    updated: float = 0.0
    done: int = 0
    total: int = 0
    error: str | None = None
    #: Per-spec response envelopes; only populated when the status was
    #: fetched with ``results=True``.
    results: tuple = field(default=())

    @property
    def terminal(self) -> bool:
        return self.state in P.TERMINAL_JOB_STATES

    @property
    def succeeded(self) -> bool:
        return self.state == P.JOB_SUCCEEDED

    @classmethod
    def from_payload(cls, doc: dict) -> "JobStatus":
        progress = doc.get("progress") or {}
        return cls(
            id=doc.get("id", ""), kind=doc.get("kind", P.JOB_KIND_RUN),
            state=doc.get("state", P.JOB_QUEUED),
            tenant=doc.get("tenant", P.DEFAULT_TENANT),
            label=doc.get("label"),
            priority=int(doc.get("priority", 0)),
            created=float(doc.get("created", 0.0)),
            updated=float(doc.get("updated", 0.0)),
            done=int(progress.get("done", 0)),
            total=int(progress.get("total", 0)),
            error=doc.get("error"),
            results=tuple(doc.get("results") or ()))


class JobHandle:
    """A submitted job: its id plus the client to poll it with."""

    def __init__(self, client: "Client", job_id: str,
                 status: JobStatus | None = None) -> None:
        self.client = client
        self.id = job_id
        #: The submission-time snapshot (state ``queued``).
        self.submitted = status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.id!r})"

    def status(self, *, results: bool = False) -> JobStatus:
        return self.client.job(self.id, results=results)

    def wait(self, timeout: float | None = None,
             poll_s: float = 0.05, *,
             results: bool = False) -> JobStatus:
        return self.client.wait(self, timeout=timeout, poll_s=poll_s,
                                results=results)

    def cancel(self) -> JobStatus:
        return self.client.cancel(self.id)


class Client:
    """JSON-over-HTTP client for a repro service or gateway."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, *,
                 timeout: float = 120.0, retries: int = 3,
                 backoff_s: float = 0.1, backoff_cap_s: float = 2.0,
                 tenant: str | None = None,
                 sleep=time.sleep) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        #: Tenant name sent as ``X-Repro-Tenant`` on every request
        #: (None → the server's ``anonymous`` default).
        self.tenant = tenant
        self._sleep = sleep
        self._conn: http.client.HTTPConnection | None = None

    # -- transport -----------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send_once(self, method: str, path: str, body: bytes | None):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        headers = {"Content-Type": "application/json"} if body else {}
        if self.tenant:
            headers["X-Repro-Tenant"] = self.tenant
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status, dict(response.getheaders()), data

    def request(self, method: str, path: str,
                body: dict | None = None) -> tuple[int, dict]:
        """One request with the retry policy; returns (status, body)."""
        encoded = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        attempts = self.retries + 1
        last_error: str = "unreachable"
        for attempt in range(attempts):
            try:
                status, headers, data = self._send_once(
                    method, path, encoded)
            except _RETRYABLE_EXC as exc:
                self.close()
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt + 1 < attempts:
                    self._sleep(self._backoff(attempt))
                continue
            payload = self._decode(data)
            if status in (429, 503) and attempt + 1 < attempts:
                delay = self._backoff(attempt)
                retry_after = headers.get("Retry-After")
                if retry_after:
                    with contextlib.suppress(ValueError):
                        delay = max(delay,
                                    min(float(retry_after),
                                        self.backoff_cap_s))
                self._sleep(delay)
                continue
            return status, payload
        raise ServiceError(
            f"{method} {path} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {last_error}",
            status=0, attempts=attempts)

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))

    @staticmethod
    def _decode(data: bytes) -> dict:
        if not data:
            return {}
        try:
            decoded = json.loads(data)
            return decoded if isinstance(decoded, dict) \
                else {"body": decoded}
        except ValueError:
            return {"text": data.decode("utf-8", "replace")}

    def _expect_ok(self, method: str, path: str,
                   body: dict | None = None) -> dict:
        status, payload = self.request(method, path, body)
        if not payload.get("ok", status == 200):
            raise ServiceError(_error_message(payload, status),
                               status=status, payload=payload)
        return payload

    # -- service introspection -----------------------------------------

    def health(self) -> dict:
        status, payload = self.request("GET", "/healthz")
        if status != 200:
            raise ServiceError(f"healthz returned {status}",
                               status=status, payload=payload)
        return payload

    def metrics_text(self) -> str:
        status, payload = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics returned {status}",
                               status=status, payload=payload)
        return payload.get("text", "")

    def stats(self) -> dict:
        return self._expect_ok("GET", "/v1/stats")

    # -- synchronous v1 path -------------------------------------------

    def execute(self, spec: dict, *, priority: int = 0,
                timeout_s: float | None = None,
                raise_on_error: bool = True) -> dict:
        """Submit one run and block for its envelope (v1 fast path).

        With ``raise_on_error`` (default) a non-served verdict
        (rejected / failed / throttled-after-retries / expired) raises
        :class:`ServiceError` carrying the envelope; pass ``False`` to
        inspect the envelope yourself.
        """
        body: dict = {"spec": spec, "priority": priority}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        status, payload = self.request("POST", "/v1/run", body)
        if raise_on_error and not payload.get("ok"):
            raise ServiceError(_error_message(payload, status),
                               status=status, payload=payload)
        return payload

    def compile(self, spec: dict) -> dict:
        return self._expect_ok("POST", "/v1/compile", {"spec": spec})

    def lint(self, spec: dict) -> dict:
        status, payload = self.request("POST", "/v1/lint",
                                       {"spec": spec})
        if status != 200:
            raise ServiceError(_error_message(payload, status),
                               status=status, payload=payload)
        return payload

    # -- durable async jobs (v2) ---------------------------------------

    def submit(self, spec: dict | None = None, *,
               sweep=None, priority: int = 0,
               timeout_s: float | None = None,
               label: str | None = None,
               wait: bool = False, poll_s: float = 0.05,
               wait_timeout: float | None = None):
        """Submit a durable job; returns a :class:`JobHandle`.

        Exactly one of ``spec`` (single run) or ``sweep`` (a
        :class:`~repro.engine.sweeps.SweepSpec` or its dict form) must
        be given.  With ``wait=True`` the call polls to completion and
        returns the final :class:`JobStatus` instead.
        """
        if (spec is None) == (sweep is None):
            raise ValueError("pass exactly one of spec= or sweep=")
        body: dict = {"priority": priority}
        if spec is not None:
            body["spec"] = spec
        else:
            body["sweep"] = (sweep.to_dict()
                             if hasattr(sweep, "to_dict")
                             else dict(sweep))
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if label is not None:
            body["label"] = label
        status, payload = self.request("POST", "/v2/jobs", body)
        if status != 202 or not payload.get("ok"):
            raise ServiceError(_error_message(payload, status),
                               status=status, payload=payload)
        snapshot = JobStatus.from_payload(payload.get("job", {}))
        handle = JobHandle(self, snapshot.id, snapshot)
        if wait:
            return self.wait(handle, timeout=wait_timeout,
                             poll_s=poll_s, results=True)
        return handle

    def sweep(self, sweep, *, priority: int = 0,
              timeout_s: float | None = None,
              label: str | None = None, wait: bool = False,
              poll_s: float = 0.05,
              wait_timeout: float | None = None):
        """Submit a sweep as a durable job (see :meth:`submit`)."""
        return self.submit(sweep=sweep, priority=priority,
                           timeout_s=timeout_s, label=label,
                           wait=wait, poll_s=poll_s,
                           wait_timeout=wait_timeout)

    # -- DSL kernels (v2) ------------------------------------------------

    def submit_kernel(self, source: str,
                      *, raise_on_error: bool = True) -> dict:
        """Register a DSL kernel (``POST /v2/kernels``).

        Returns the response envelope; on success ``payload['kernel']``
        carries ``kernel_hash`` and the content-addressed ``workload``
        name to use in run/sweep/job specs.  A validation rejection
        (422) raises :class:`ServiceError` whose payload carries the
        structured RPR5xx ``diagnostics``; pass ``raise_on_error=False``
        to inspect the envelope yourself.
        """
        status, payload = self.request("POST", "/v2/kernels",
                                       {"source": source})
        if raise_on_error and (status not in (200, 201)
                               or not payload.get("ok")):
            raise ServiceError(_error_message(payload, status),
                               status=status, payload=payload)
        return payload

    def kernels(self) -> list[str]:
        """Workload names of every registered DSL kernel."""
        payload = self._expect_ok("GET", "/v2/kernels")
        return list(payload.get("kernels", []))

    def job(self, job_id: str, *, results: bool = False) -> JobStatus:
        """Fetch one job's current status (404 → ServiceError)."""
        path = f"/v2/jobs/{job_id}"
        if results:
            path += "?results=1"
        payload = self._expect_ok("GET", path)
        return JobStatus.from_payload(payload.get("job", {}))

    def jobs(self, *, state: str | None = None,
             tenant: str | None = None) -> list[JobStatus]:
        path = "/v2/jobs"
        params = []
        if state is not None:
            params.append(f"state={state}")
        if tenant is not None:
            params.append(f"tenant={tenant}")
        if params:
            path += "?" + "&".join(params)
        payload = self._expect_ok("GET", path)
        return [JobStatus.from_payload(doc)
                for doc in payload.get("jobs", [])]

    def wait(self, job, *, timeout: float | None = None,
             poll_s: float = 0.05,
             results: bool = False) -> JobStatus:
        """Poll a job (handle, status, or id) until terminal."""
        job_id = getattr(job, "id", job)
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        poll_s = max(0.005, float(poll_s))
        while True:
            status = self.job(job_id, results=results)
            if status.terminal:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status.state} after "
                    f"{timeout:g}s", status=0,
                    payload=status.__dict__)
            self._sleep(poll_s)

    def cancel(self, job) -> JobStatus:
        job_id = getattr(job, "id", job)
        payload = self._expect_ok("POST", f"/v2/jobs/{job_id}/cancel")
        return JobStatus.from_payload(payload.get("job", {}))


class ServiceClient(Client):
    """The legacy client surface (pre-v2), kept as deprecation shims.

    ``run``/``sweep``/``sweep_spec`` forward to the same endpoints
    they always hit, but emit :class:`DeprecationWarning` pointing at
    the :class:`Client` replacement.  Note ``sweep`` keeps its legacy
    *synchronous* ``(workloads, ...)`` signature here; the async
    :meth:`Client.sweep` takes a ``SweepSpec``.
    """

    def run(self, spec: dict, *, priority: int = 0,
            timeout_s: float | None = None,
            raise_on_error: bool = True) -> dict:
        warnings.warn(
            "ServiceClient.run() is deprecated; use Client.execute() "
            "(synchronous) or Client.submit() (durable async)",
            DeprecationWarning, stacklevel=2)
        return self.execute(spec, priority=priority,
                            timeout_s=timeout_s,
                            raise_on_error=raise_on_error)

    def sweep(self, workloads: list, *, modes=("dyser",),
              base: dict | None = None, axes: dict | None = None,
              priority: int = 0, timeout_s: float | None = None) -> dict:
        warnings.warn(
            "ServiceClient.sweep(workloads, ...) is deprecated; use "
            "Client.sweep(SweepSpec) for a durable async sweep or "
            "POST /v1/sweep via request() for the synchronous form",
            DeprecationWarning, stacklevel=2)
        body: dict = {
            "workloads": list(workloads),
            "modes": list(modes),
            "base": base or {},
            "axes": axes or {},
            "priority": priority,
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._post_sweep(body)

    def sweep_spec(self, spec, *, priority: int = 0,
                   timeout_s: float | None = None) -> dict:
        """Submit a first-class sweep description (deprecated).

        ``spec`` is a :class:`repro.engine.sweeps.SweepSpec` or its
        :meth:`~repro.engine.sweeps.SweepSpec.to_dict` rendering; the
        response echoes its ``sweep_hash``.
        """
        warnings.warn(
            "ServiceClient.sweep_spec() is deprecated; use "
            "Client.sweep(SweepSpec)",
            DeprecationWarning, stacklevel=2)
        body: dict = {
            "sweep": spec.to_dict() if hasattr(spec, "to_dict")
            else dict(spec),
            "priority": priority,
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._post_sweep(body)

    def _post_sweep(self, body: dict) -> dict:
        status, payload = self.request("POST", "/v1/sweep", body)
        if "jobs" not in payload:
            raise ServiceError(_error_message(payload, status),
                               status=status, payload=payload)
        return payload
