"""Synchronous client for the simulation service (stdlib ``http.client``).

One :class:`ServiceClient` holds one keep-alive connection (it is not
thread-safe — give each thread its own; the closed-loop benchmark
does exactly that).  The retry policy treats the service's explicit
backpressure signals as *retryable*, everything else as final:

- transport failures (connection refused/reset, truncated response)
  retry with capped exponential backoff — this is what lets
  ``repro submit`` race ``repro serve &`` startup and survive a
  flapping server;
- ``429`` honours the server's ``Retry-After`` hint (capped);
- ``503`` (draining) backs off like a transport failure;
- any other status is returned to the caller immediately.

Retrying a run submission is safe by construction: requests are
content-addressed by ``JobSpec.job_hash``, so a duplicate submission
coalesces onto the original in-flight job or hits the artifact cache —
it can never run the same work twice.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import socket
import time

from repro.errors import ReproError

from repro.service.protocol import DEFAULT_PORT

#: Transport-level failures worth a retry.
_RETRYABLE_EXC = (ConnectionError, socket.timeout, socket.gaierror,
                  http.client.HTTPException, OSError)


class ServiceError(ReproError):
    """A request that could not be served (after retries).

    Carries ``status`` (HTTP status code, or 0 for transport failures)
    and ``payload`` (the decoded response body, when there was one).
    """

    def __init__(self, message: str, *, status: int = 0,
                 payload: dict | None = None, **context) -> None:
        super().__init__(message, status=status, **context)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """JSON-over-HTTP client for a :class:`~repro.service.ReproService`."""

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, *,
                 timeout: float = 120.0, retries: int = 3,
                 backoff_s: float = 0.1, backoff_cap_s: float = 2.0,
                 sleep=time.sleep) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._sleep = sleep
        self._conn: http.client.HTTPConnection | None = None

    # -- transport -----------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send_once(self, method: str, path: str, body: bytes | None):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        headers = {"Content-Type": "application/json"} if body else {}
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        if response.getheader("Connection", "").lower() == "close":
            self.close()
        return response.status, dict(response.getheaders()), data

    def request(self, method: str, path: str,
                body: dict | None = None) -> tuple[int, dict]:
        """One request with the retry policy; returns (status, body)."""
        encoded = (json.dumps(body).encode("utf-8")
                   if body is not None else None)
        attempts = self.retries + 1
        last_error: str = "unreachable"
        for attempt in range(attempts):
            try:
                status, headers, data = self._send_once(
                    method, path, encoded)
            except _RETRYABLE_EXC as exc:
                self.close()
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt + 1 < attempts:
                    self._sleep(self._backoff(attempt))
                continue
            payload = self._decode(data)
            if status in (429, 503) and attempt + 1 < attempts:
                delay = self._backoff(attempt)
                retry_after = headers.get("Retry-After")
                if retry_after:
                    with contextlib.suppress(ValueError):
                        delay = max(delay,
                                    min(float(retry_after),
                                        self.backoff_cap_s))
                self._sleep(delay)
                continue
            return status, payload
        raise ServiceError(
            f"{method} {path} failed after {attempts} attempt"
            f"{'s' if attempts != 1 else ''}: {last_error}",
            status=0, attempts=attempts)

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))

    @staticmethod
    def _decode(data: bytes) -> dict:
        if not data:
            return {}
        try:
            decoded = json.loads(data)
            return decoded if isinstance(decoded, dict) \
                else {"body": decoded}
        except ValueError:
            return {"text": data.decode("utf-8", "replace")}

    def _expect_ok(self, method: str, path: str,
                   body: dict | None = None) -> dict:
        status, payload = self.request(method, path, body)
        if not payload.get("ok", status == 200):
            raise ServiceError(
                payload.get("error", f"HTTP {status}"),
                status=status, payload=payload)
        return payload

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        status, payload = self.request("GET", "/healthz")
        if status != 200:
            raise ServiceError(f"healthz returned {status}",
                               status=status, payload=payload)
        return payload

    def metrics_text(self) -> str:
        status, payload = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics returned {status}",
                               status=status, payload=payload)
        return payload.get("text", "")

    def stats(self) -> dict:
        return self._expect_ok("GET", "/v1/stats")

    def run(self, spec: dict, *, priority: int = 0,
            timeout_s: float | None = None,
            raise_on_error: bool = True) -> dict:
        """Submit one run; returns the full response envelope.

        With ``raise_on_error`` (default) a non-served verdict
        (rejected / failed / throttled-after-retries / expired) raises
        :class:`ServiceError` carrying the envelope; pass ``False`` to
        inspect the envelope yourself.
        """
        body: dict = {"spec": spec, "priority": priority}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        status, payload = self.request("POST", "/v1/run", body)
        if raise_on_error and not payload.get("ok"):
            raise ServiceError(
                payload.get("error", f"HTTP {status}"),
                status=status, payload=payload)
        return payload

    def compile(self, spec: dict) -> dict:
        return self._expect_ok("POST", "/v1/compile", {"spec": spec})

    def lint(self, spec: dict) -> dict:
        status, payload = self.request("POST", "/v1/lint",
                                       {"spec": spec})
        if status != 200:
            raise ServiceError(
                payload.get("error", f"HTTP {status}"),
                status=status, payload=payload)
        return payload

    def sweep(self, workloads: list, *, modes=("dyser",),
              base: dict | None = None, axes: dict | None = None,
              priority: int = 0, timeout_s: float | None = None) -> dict:
        body: dict = {
            "workloads": list(workloads),
            "modes": list(modes),
            "base": base or {},
            "axes": axes or {},
            "priority": priority,
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._post_sweep(body)

    def sweep_spec(self, spec, *, priority: int = 0,
                   timeout_s: float | None = None) -> dict:
        """Submit a first-class sweep description.

        ``spec`` is a :class:`repro.engine.sweeps.SweepSpec` or its
        :meth:`~repro.engine.sweeps.SweepSpec.to_dict` rendering; the
        response echoes its ``sweep_hash``.
        """
        body: dict = {
            "sweep": spec.to_dict() if hasattr(spec, "to_dict")
            else dict(spec),
            "priority": priority,
        }
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._post_sweep(body)

    def _post_sweep(self, body: dict) -> dict:
        status, payload = self.request("POST", "/v1/sweep", body)
        if "jobs" not in payload:
            raise ServiceError(
                payload.get("error", f"HTTP {status}"),
                status=status, payload=payload)
        return payload
