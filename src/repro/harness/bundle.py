"""Program bundles: persist a compiled SPARC-DySER artifact.

A bundle is a JSON document holding the program's assembly listing, its
spill requirement, and every DySER configuration (placed and routed).
Loading a bundle reproduces an executable :class:`Program` without
re-running the compiler or the spatial scheduler — the shipping format a
toolchain user would archive next to their binaries.
"""

from __future__ import annotations

import json
import pathlib

from repro.dyser.fabric import Fabric
from repro.dyser.serialize import config_from_dict, config_to_dict
from repro.errors import ReproError
from repro.isa.assembler import assemble
from repro.isa.program import Program

_FORMAT = "repro-bundle-v1"


def bundle_to_dict(program: Program) -> dict:
    """Serialize ``program`` (with its configurations) to a dict."""
    return {
        "format": _FORMAT,
        "name": program.name,
        "spill_words": program.spill_words,
        "assembly": program.listing(),
        "configs": [
            config_to_dict(config)
            for _cid, config in sorted(program.dyser_configs.items())
        ],
    }


def bundle_from_dict(data: dict, fabric: Fabric) -> Program:
    """Rebuild an executable program from a bundle dict."""
    if data.get("format") != _FORMAT:
        raise ReproError(
            f"not a program bundle (format={data.get('format')!r})")
    program = assemble(data["assembly"], name=data.get("name", "bundle"))
    program.spill_words = int(data.get("spill_words", 0))
    for config_data in data.get("configs", ()):
        config = config_from_dict(config_data, fabric)
        program.dyser_configs[config.config_id] = config
    program.validate()
    return program


def save_bundle(program: Program, path: str | pathlib.Path) -> None:
    """Write a bundle JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(bundle_to_dict(program), indent=1))


def load_bundle(path: str | pathlib.Path, fabric: Fabric) -> Program:
    """Read a bundle JSON file back into an executable program."""
    data = json.loads(pathlib.Path(path).read_text())
    return bundle_from_dict(data, fabric)
