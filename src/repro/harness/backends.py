"""Simulation backend registry: one dispatch point for every run.

A *backend* is a core implementation with identical observable results:

- ``"reference"`` — :class:`repro.cpu.Core`, the per-cycle interpreted
  oracle.  Supports event tracing and instruction traces.
- ``"fast"`` — :class:`repro.cpu.FastCore`, the predecoding basic-block
  interpreter.  Cycle-exact-equal to the reference (enforced by
  :mod:`repro.harness.parity` and ``tests/test_fastcore.py``) but does
  not emit events; traced runs transparently resolve to the reference
  backend, whose cycle counts are identical by that same contract.

``RunConfig.backend`` selects by name and is validated against this
registry at construction.  Everything that executes a run —
``execute``/``run_workload``/``compare``, ``profile_workload``, the
engine's job workers, the CLI — goes through :func:`resolve_backend`,
so there is exactly one place where the choice is made.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.cpu import Core, FastCore
from repro.cpu.batchcore import BatchCore
from repro.errors import WorkloadError

#: The registry default (and therefore ``RunConfig``'s default).
DEFAULT_BACKEND = "fast"


@dataclass(frozen=True)
class Backend:
    """One registered core implementation.

    ``core_cls`` runs a single config (the :class:`Core` constructor
    contract).  ``batch_cls``, when set, is a lockstep core able to run
    a whole lane of configs at once (the :class:`BatchCore` contract);
    single-point dispatch through ``core_cls`` stays available so a
    batched backend degrades transparently to its solo implementation.
    """

    name: str
    core_cls: type
    supports_tracing: bool
    description: str = ""
    batch_cls: type | None = None


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Register a backend (name must be unused)."""
    if backend.name in _REGISTRY:
        raise WorkloadError(f"duplicate backend {backend.name!r}")
    _REGISTRY[backend.name] = backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (:class:`WorkloadError` if unknown).

    The built-in backends are load-bearing (``resolve_backend`` falls
    back to ``"reference"``); removing them is refused.
    """
    if name in ("reference", "fast", "batched"):
        raise WorkloadError(f"cannot unregister built-in backend {name!r}")
    if name not in _REGISTRY:
        raise WorkloadError(f"unknown backend {name!r}")
    del _REGISTRY[name]


@contextlib.contextmanager
def temporary_backend(backend: Backend):
    """Register ``backend`` for the duration of a ``with`` block.

    The differential harnesses use this to pit deliberately-wrong stub
    cores against the reference without leaking registry state into
    other tests:

        with temporary_backend(Backend("stub", StubCore, False)):
            report = verify_parity(configs, candidate="stub")
    """
    register_backend(backend)
    try:
        yield backend
    finally:
        _REGISTRY.pop(backend.name, None)


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> Backend:
    """Look up a backend by name (:class:`WorkloadError` if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown backend {name!r} "
            f"(registered: {', '.join(backend_names())})"
        ) from None


def resolve_backend(config) -> Backend:
    """The backend that will actually run ``config``.

    Falls back to the reference backend when the run requests any form
    of tracing and the selected backend cannot emit it.  Because the
    backends are cycle-exact-equal, this changes *how* the run is
    simulated, never *what* it reports — ``tests/test_fastcore.py``
    pins that with an explicit traced-vs-untraced cycle check.
    """
    backend = get_backend(config.backend)
    if backend.supports_tracing:
        return backend
    wants_trace = config.trace.enabled or bool(
        config.core_config is not None and config.core_config.trace_limit
    )
    if wants_trace:
        return get_backend("reference")
    return backend


register_backend(Backend(
    name="reference",
    core_cls=Core,
    supports_tracing=True,
    description="per-cycle interpreted core (the parity oracle)",
))
register_backend(Backend(
    name="fast",
    core_cls=FastCore,
    supports_tracing=False,
    description="predecoded basic-block interpreter, cycle-exact "
                "with the reference",
))


register_backend(Backend(
    name="batched",
    core_cls=FastCore,
    supports_tracing=False,
    description="lockstep structure-of-arrays core for sweep lanes; "
                "single runs fall back to the fast backend",
    batch_cls=BatchCore,
))
