"""Differential backend-parity harness.

The fast backend's contract is *cycle-exact equality* with the
reference core: for any :class:`~repro.harness.config.RunConfig`, both
backends must report byte-identical run summaries
(:meth:`RunResult.to_dict`) — cycles, instructions, the full stall
breakdown, cache and DySER counters, energy, correctness.  This module
turns that contract into a checkable artifact:

    report = verify_parity([RunConfig(workload="mm", mode="dyser")])
    assert report.ok, report.summary()

``verify_parity`` executes every config once per backend and diffs the
summaries key-by-key; a mismatch records *which* keys diverge so test
failures point at the offending counter, not just "dicts differ".
``tests/test_fastcore.py`` runs it over the whole workload suite, and
the CI bench-smoke job runs it on a subset before timing anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError, stable_error_string
from repro.harness.config import RunConfig
from repro.harness.runner import execute


def _flatten(data: object, prefix: str = "") -> dict[str, object]:
    """Flatten nested dicts/lists into dotted-key leaves for diffing."""
    out: dict[str, object] = {}
    if isinstance(data, dict):
        for key in sorted(data):
            out.update(_flatten(data[key], f"{prefix}{key}."))
    elif isinstance(data, (list, tuple)):
        for i, item in enumerate(data):
            out.update(_flatten(item, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = data
    return out


def diff_summaries(a: dict, b: dict) -> list[str]:
    """Dotted keys whose values differ between two run summaries."""
    fa, fb = _flatten(a), _flatten(b)
    keys = sorted(set(fa) | set(fb))
    missing = object()
    return [k for k in keys if fa.get(k, missing) != fb.get(k, missing)]


@dataclass(frozen=True)
class ParityMismatch:
    """One config whose backends disagreed, with the diverging keys."""

    config: RunConfig
    keys: tuple[str, ...]
    reference: dict = field(compare=False, repr=False, default_factory=dict)
    candidate: dict = field(compare=False, repr=False, default_factory=dict)

    def describe(self) -> str:
        parts = []
        for key in self.keys[:8]:
            ref = _flatten(self.reference).get(key)
            cand = _flatten(self.candidate).get(key)
            parts.append(f"{key}: reference={ref!r} candidate={cand!r}")
        more = len(self.keys) - len(parts)
        if more > 0:
            parts.append(f"... and {more} more keys")
        return f"{self.config.describe()}\n  " + "\n  ".join(parts)


@dataclass(frozen=True)
class ParityReport:
    """Outcome of a differential parity sweep."""

    checked: int
    mismatches: tuple[ParityMismatch, ...]
    candidate: str
    reference: str

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        head = (f"parity {self.candidate} vs {self.reference}: "
                f"{self.checked} runs, {len(self.mismatches)} mismatches")
        if self.ok:
            return head
        body = "\n".join(m.describe() for m in self.mismatches)
        return f"{head}\n{body}"


def _outcome(config: RunConfig) -> dict:
    """One backend's observable outcome: the run summary, or — when the
    simulation faults — the *stable* rendering of the error.

    Raising is an observable behaviour too: a candidate that crashes
    where the reference completes (or crashes differently) is a parity
    mismatch, not a harness failure.  :func:`stable_error_string`
    strips memory addresses and orders context deterministically so
    identical faults always compare equal.
    """
    try:
        return execute(config).to_dict()
    except ReproError as exc:
        return {"error": stable_error_string(exc)}


def verify_parity(configs: list[RunConfig] | tuple[RunConfig, ...],
                  candidate: str = "fast",
                  reference: str = "reference") -> ParityReport:
    """Run every config on both backends and diff the summaries.

    Both runs share the config's seed/scale/knobs; only ``backend``
    differs.  Tracing is stripped (a traced run already resolves to the
    reference backend, which would make the check vacuous).  A backend
    that raises a :class:`ReproError` contributes an ``{"error": ...}``
    outcome instead of propagating — both backends must fault
    identically or the config is reported as a mismatch.
    """
    mismatches: list[ParityMismatch] = []
    for config in configs:
        base = config.with_(trace=config.trace.__class__())
        ref = _outcome(base.with_(backend=reference))
        cand = _outcome(base.with_(backend=candidate))
        if ref != cand:
            mismatches.append(ParityMismatch(
                config=base, keys=tuple(diff_summaries(ref, cand)),
                reference=ref, candidate=cand))
    return ParityReport(checked=len(configs),
                        mismatches=tuple(mismatches),
                        candidate=candidate, reference=reference)


def suite_configs(scale: str = "tiny", seed: int = 7,
                  modes: tuple[str, ...] = ("scalar", "dyser"),
                  workloads: tuple[str, ...] | None = None,
                  ) -> list[RunConfig]:
    """The default parity corpus: every registered workload × mode."""
    from repro.workloads import names as workload_names

    names = workloads if workloads is not None else workload_names()
    return [RunConfig(workload=w, mode=m, scale=scale, seed=seed)
            for w in names for m in modes]
