"""The run API's parameter object: :class:`RunConfig`.

``run_workload`` historically grew one keyword argument per subsystem
knob (eleven at last count), and every layer above it — ``compare``,
the engine's :class:`~repro.engine.jobs.JobSpec`, the benchmarks, the
CLI — re-encoded the same tuple by hand.  :class:`RunConfig` replaces
that seam with one frozen parameter object that:

- carries every knob a run consumes (compiler options, core config,
  fabric timing, config cache, energy model, memory size);
- carries the observability request (``trace:``
  :class:`~repro.obs.events.TraceOptions`), so tracing threads through
  harness, engine, benchmarks and CLI without a twelfth kwarg;
- carries the simulation ``backend`` selection, validated against the
  registered-backend table (:mod:`repro.harness.backends`);
- converts losslessly to/from :class:`~repro.engine.jobs.JobSpec`
  (see ``JobSpec.to_run_config`` / ``JobSpec.from_run_config``) —
  observability options and the backend deliberately do **not**
  participate in the spec's content hash, because neither changes a
  run's outcome (tracing by construction, the backend by the parity
  contract).

``run_workload`` accepts exactly one form: a :class:`RunConfig`.  The
historical kwargs shim was removed once every caller migrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compiler import CompilerOptions
from repro.cpu import CoreConfig
from repro.dyser import DyserTimingParams
from repro.dyser.config_cache import ConfigCacheParams
from repro.energy import EnergyParams
from repro.errors import WorkloadError
from repro.harness.backends import DEFAULT_BACKEND, get_backend
from repro.obs.events import TraceOptions

#: run_workload modes.
MODES = ("scalar", "dyser")


@dataclass(frozen=True)
class RunConfig:
    """Everything one workload execution needs, in one object.

    ``None`` for a parameter-object field means "use that subsystem's
    defaults" — identical to the historical kwargs behaviour, so a
    config constructed with only ``workload=`` reproduces the old
    ``run_workload(name)`` exactly.
    """

    workload: str
    mode: str = "dyser"
    scale: str = "small"
    seed: int = 7
    options: CompilerOptions | None = None
    core_config: CoreConfig | None = None
    timing: DyserTimingParams | None = None
    cache_params: ConfigCacheParams | None = None
    energy_params: EnergyParams | None = None
    memory_bytes: int = 1 << 22
    trace: TraceOptions = field(default_factory=TraceOptions)
    #: Simulation backend name; validated against the backend registry
    #: (``"fast"`` by default, ``"reference"`` is the oracle).
    backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise WorkloadError(f"unknown mode {self.mode!r}")
        if not self.workload:
            raise WorkloadError("RunConfig.workload must be set")
        get_backend(self.backend)   # raises WorkloadError if unknown
        object.__setattr__(self, "memory_bytes", int(self.memory_bytes))

    # -- derivation helpers -------------------------------------------

    def with_(self, **changes) -> "RunConfig":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)

    def traced(self, **trace_kwargs) -> "RunConfig":
        """A copy with tracing enabled (``capacity=``, ``categories=``,
        ``instructions=`` pass through to :class:`TraceOptions`)."""
        return replace(self, trace=TraceOptions(enabled=True,
                                                **trace_kwargs))

    def describe(self) -> str:
        text = f"{self.workload}/{self.mode}@{self.scale} seed={self.seed}"
        if self.backend != DEFAULT_BACKEND:
            text += f" backend={self.backend}"
        if self.trace.enabled:
            text += " [traced]"
        return text
