"""Table/series formatting for the E-series benchmark outputs.

Benchmarks print plain-text tables that mirror the paper's rows; these
helpers keep the formatting uniform and provide the geometric-mean
summary rows the paper reports.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Fixed-width text table; floats rendered to 2-3 significant places."""

    def cell(v) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 100:
                return f"{v:.0f}"
            if abs(v) >= 1:
                return f"{v:.2f}"
            return f"{v:.3f}"
        return str(v)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in text_rows:
        lines.append("  ".join(
            row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    """A figure rendered as an (x, y) series plus an ASCII bar sketch."""
    lines = [f"series {name}:"]
    peak = max((abs(y) for y in ys), default=1.0) or 1.0
    for x, y in zip(xs, ys, strict=False):
        # y == 0 renders an empty bar: a zero is data, not a sliver.
        bar = "" if y == 0 else "#" * max(1, int(24 * abs(y) / peak))
        lines.append(f"  {str(x):>10}  {y:10.3f}  {bar}".rstrip())
    return "\n".join(lines)
