"""Batch planning + lane execution for the ``batched`` backend.

This is the middle pass of the batched lowering (decode → batch-plan →
lockstep-execute; see :mod:`repro.cpu.batchcore`).  It answers two
questions:

1. **Which sweep points may share one functional execution?**
   :func:`plan_batches` groups :class:`RunConfig`\\ s into *lanes* keyed
   by everything that shapes architectural state: workload, mode,
   scale, seed, memory size, compile options, and every
   :class:`CoreConfig` field except the per-point timing knobs
   (:data:`repro.cpu.batchcore.PER_POINT_FIELDS`).  Points in one lane
   provably execute the same instruction stream over the same values —
   the remaining knobs (DySER FIFO depths, initiation interval,
   config-cache capacity, port rate, instruction limits, energy
   accounting) shift *when* things happen, never *what* happens.
   Traced configs and lanes of one are returned as singles.

2. **How does a lane run?**  :func:`execute_batch_group` mirrors
   :func:`repro.harness.runner.execute` exactly — one compile (shared
   memo), one :class:`Memory` + ``prepare``, per-point
   :class:`BatchedDyserDevice` over one shared evaluation tape — then
   drives a :class:`BatchCore` and post-processes per point (energy
   model, correctness checked once against the shared memory image).
   Points the core evicts (per-point instruction limits, shared
   faults) are replayed solo via :func:`execute`, which reproduces
   byte-identical results *including* stable error strings; a point's
   fault therefore never poisons its siblings.

The parity contract is the fast backend's, lifted to lanes:
:func:`verify_batch_parity` diffs every batched point against a solo
reference run and must report zero mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import CompileResult, CompilerOptions
from repro.cpu import CoreConfig, Memory
from repro.cpu.batchcore import _SHARED_FIELDS, BatchCore
from repro.dyser import DyserTimingParams, Fabric, FabricGeometry
from repro.dyser.batch import BatchedDyserDevice
from repro.dyser.config_cache import ConfigCacheParams
from repro.energy import EnergyModel, EnergyParams
from repro.errors import ReproError, stable_error_string
from repro.harness.config import RunConfig
from repro.harness.parity import (
    ParityMismatch,
    ParityReport,
    _outcome,
    diff_summaries,
)
from repro.harness.runner import (
    DEFAULT_GEOMETRY,
    RunResult,
    _compile,
    _options_key,
    execute,
    source_hash,
)
from repro.workloads import get as get_workload


@dataclass
class BatchOutcome:
    """What happened to one sweep point of a batched execution.

    Exactly one of ``result``/``error`` is set.  ``error`` carries the
    actual :class:`ReproError` instance (not a rendering) so callers
    can format it however the solo path would — the engine as
    ``f"{type(exc).__name__}: {exc}"``, the parity harness via
    :func:`repro.errors.stable_error_string`.  ``batched`` is False
    for points that were replayed solo (eviction or singles).
    """

    config: RunConfig
    result: RunResult | None = None
    error: ReproError | None = None
    batched: bool = False


def _default_options(config: RunConfig) -> CompilerOptions:
    return config.options or CompilerOptions(
        fabric=Fabric(FabricGeometry(*DEFAULT_GEOMETRY)))


def _core_config(config: RunConfig) -> CoreConfig:
    return config.core_config or CoreConfig(
        has_dyser=(config.mode == "dyser"))


def _wants_trace(config: RunConfig) -> bool:
    return config.trace.enabled or bool(
        config.core_config is not None and config.core_config.trace_limit)


def lane_key(config: RunConfig) -> tuple:
    """Everything that shapes a run's *functional* execution.

    Two configs with equal lane keys execute the same instruction
    stream over the same architectural values and may run in lockstep.
    Nested parameter objects are keyed by ``repr`` — they are plain
    dataclasses, so the rendering is total and value-based.
    """
    cc = _core_config(config)
    return (
        config.workload, config.mode, config.scale, config.seed,
        config.memory_bytes, _options_key(_default_options(config)),
        tuple(repr(getattr(cc, name)) for name in _SHARED_FIELDS),
    )


def plan_batches(
    configs: list[RunConfig] | tuple[RunConfig, ...],
) -> tuple[list[list[int]], list[int]]:
    """Group configs into lanes; returns ``(groups, singles)`` as
    indices into ``configs``.

    Traced configs never batch (the batched core cannot trace, and the
    registry would route them to the reference backend anyway), and a
    lane needs at least two points to be worth lockstep.  Groups are
    ordered by their first member, singles keep input order.
    """
    lanes: dict[tuple, list[int]] = {}
    singles: list[int] = []
    for i, config in enumerate(configs):
        if _wants_trace(config):
            singles.append(i)
            continue
        lanes.setdefault(lane_key(config), []).append(i)
    groups: list[list[int]] = []
    for members in lanes.values():
        if len(members) >= 2:
            groups.append(members)
        else:
            singles.extend(members)
    groups.sort(key=lambda g: g[0])
    singles.sort()
    return groups, singles


def _solo(config: RunConfig) -> BatchOutcome:
    try:
        return BatchOutcome(config=config, result=execute(config))
    except ReproError as exc:
        return BatchOutcome(config=config, error=exc)


def execute_batch_group(
    configs: list[RunConfig] | tuple[RunConfig, ...],
    compiled: CompileResult | None = None,
) -> list[BatchOutcome]:
    """Run one lane of configs in lockstep; one outcome per config.

    All configs must share a :func:`lane_key` (the :class:`BatchCore`
    constructor re-validates the core-config side).  Evicted points —
    and the whole lane, if lockstep setup or execution faults — fall
    back to solo :func:`execute` calls, which are always parity-safe.
    """
    base = configs[0]
    n = len(configs)
    workload = get_workload(base.workload)
    options = _default_options(base)
    if compiled is None:
        compiled = _compile(base.workload, source_hash(workload.source),
                            base.mode, _options_key(options))

    stats_list: list = [None] * n
    core = None
    memory = Memory(base.memory_bytes)
    instance = workload.prepare(memory, base.scale, base.seed)
    try:
        devices: list = [None] * n
        if base.mode == "dyser":
            tape: dict = {}
            devices = [
                BatchedDyserDevice(
                    fabric=options.fabric,
                    timing=cfg.timing or DyserTimingParams(),
                    cache_params=(cfg.cache_params
                                  or ConfigCacheParams()),
                    tape=tape,
                )
                for cfg in configs
            ]
        core = BatchCore(compiled.program, memory, devices,
                         [_core_config(cfg) for cfg in configs])
        core.set_args(instance.int_args, instance.fp_args)
        stats_list = core.run()
    except ReproError:
        # Lockstep itself faulted (shared functional state): every
        # point would hit the same fault, but solo replay reproduces
        # each point's exact observable outcome, so take that path.
        stats_list = [None] * n

    outcomes: list[BatchOutcome | None] = [None] * n
    survivors = [p for p in range(n) if stats_list[p] is not None]
    if survivors:
        correct = instance.check(memory)
        for p in survivors:
            cfg = configs[p]
            stats = stats_list[p]
            eparams = cfg.energy_params or EnergyParams(
                dyser_present=(cfg.mode == "dyser"))
            outcomes[p] = BatchOutcome(
                config=cfg,
                result=RunResult(
                    workload=cfg.workload, mode=cfg.mode,
                    scale=cfg.scale, correct=correct, stats=stats,
                    energy=EnergyModel(eparams).account(stats),
                    compile_result=compiled,
                    work_items=instance.work_items,
                ),
                batched=True,
            )
    for p in range(n):
        if outcomes[p] is None:
            outcomes[p] = _solo(configs[p])
    return outcomes  # type: ignore[return-value]


def execute_batch(
    configs: list[RunConfig] | tuple[RunConfig, ...],
) -> list[BatchOutcome]:
    """Plan + execute a mixed bag of configs; outcomes in input order."""
    groups, singles = plan_batches(configs)
    outcomes: list[BatchOutcome | None] = [None] * len(configs)
    for members in groups:
        for idx, outcome in zip(
                members, execute_batch_group([configs[i]
                                              for i in members]),
                strict=True):
            outcomes[idx] = outcome
    for i in singles:
        outcomes[i] = _solo(configs[i])
    return outcomes  # type: ignore[return-value]


def verify_batch_parity(
    configs: list[RunConfig] | tuple[RunConfig, ...],
    reference: str = "reference",
) -> ParityReport:
    """Diff every batched point against a solo reference run.

    The batched side goes through :func:`execute_batch` (so planning,
    lockstep, eviction and solo fallback are all on trial); faults
    compare via :func:`stable_error_string`, exactly like
    :func:`repro.harness.parity.verify_parity`.
    """
    stripped = [c.with_(trace=c.trace.__class__()) for c in configs]
    mismatches: list[ParityMismatch] = []
    for config, outcome in zip(stripped, execute_batch(stripped),
                               strict=True):
        cand = (outcome.result.to_dict()
                if outcome.result is not None
                else {"error": stable_error_string(outcome.error)})
        ref = _outcome(config.with_(backend=reference))
        if ref != cand:
            mismatches.append(ParityMismatch(
                config=config, keys=tuple(diff_summaries(ref, cand)),
                reference=ref, candidate=cand))
    return ParityReport(checked=len(stripped),
                        mismatches=tuple(mismatches),
                        candidate="batched", reference=reference)
