"""Experiment runner: compile, execute and account a workload.

The single entry point the E-series benchmarks use::

    result = run_workload("mm", mode="dyser", scale="small")
    comparison = compare("mm", scale="small")

Every run validates outputs against the workload's numpy reference;
``RunResult.correct`` is part of the result, and the benchmarks assert it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro.compiler import CompileResult, CompilerOptions, compile_dyser, compile_scalar
from repro.cpu import Core, CoreConfig, ExecStats, Memory
from repro.dyser import DyserDevice, DyserTimingParams, Fabric, FabricGeometry
from repro.dyser.config_cache import ConfigCacheParams
from repro.energy import EnergyModel, EnergyParams, EnergyReport
from repro.errors import WorkloadError
from repro.workloads import get as get_workload

#: The prototype's fabric: 8x8, heterogeneous.
DEFAULT_GEOMETRY = (8, 8)


@dataclass
class RunResult:
    """One (workload, mode) execution."""

    workload: str
    mode: str
    scale: str
    correct: bool
    stats: ExecStats
    energy: EnergyReport
    compile_result: CompileResult
    work_items: int

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    @property
    def cycles_per_item(self) -> float:
        return self.cycles / self.work_items if self.work_items else 0.0


@dataclass
class Comparison:
    """Scalar vs DySER for one workload."""

    workload: str
    scalar: RunResult
    dyser: RunResult

    @property
    def speedup(self) -> float:
        return self.scalar.cycles / self.dyser.cycles

    @property
    def energy_ratio(self) -> float:
        """scalar energy / dyser energy (>1 means DySER saves energy)."""
        return self.scalar.energy.total_j / self.dyser.energy.total_j

    @property
    def edp_ratio(self) -> float:
        return (self.scalar.energy.energy_delay_product()
                / self.dyser.energy.energy_delay_product())


def source_hash(source: str) -> str:
    """Stable hash of a kernel's source text (compile-cache key part)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@lru_cache(maxsize=256)
def _compile(workload_name: str, src_hash: str, mode: str,
             options_key: tuple) -> CompileResult:
    # ``src_hash`` keys the cache on the workload's *source text*, not
    # just its name: re-registering or editing a kernel in-session can
    # never serve a stale compile.
    workload = get_workload(workload_name)
    if source_hash(workload.source) != src_hash:  # pragma: no cover
        raise WorkloadError(
            f"{workload_name}: source changed between lookup and compile")
    if mode == "scalar":
        return compile_scalar(workload.source)
    options = _options_from_key(options_key)
    return compile_dyser(workload.source, options)


def clear_caches() -> None:
    """Drop all process-local memoized compiles.

    The engine calls this in worker processes after code-fingerprint
    changes, and tests use it to guarantee cold-compile behaviour.
    """
    _compile.cache_clear()


def _options_key(options: CompilerOptions) -> tuple:
    g = options.fabric.geometry
    return (g.width, g.height, options.min_region_ops, options.unroll,
            options.vectorize, options.if_convert, options.max_region_ops)


def _options_from_key(key: tuple) -> CompilerOptions:
    width, height, min_ops, unroll, vectorize, if_convert, max_ops = key
    return CompilerOptions(
        fabric=Fabric(FabricGeometry(width, height)),
        min_region_ops=min_ops, unroll=unroll, vectorize=vectorize,
        if_convert=if_convert, max_region_ops=max_ops)


def run_workload(
    name: str,
    mode: str = "dyser",
    scale: str = "small",
    seed: int = 7,
    options: CompilerOptions | None = None,
    core_config: CoreConfig | None = None,
    timing: DyserTimingParams | None = None,
    cache_params: ConfigCacheParams | None = None,
    energy_params: EnergyParams | None = None,
    memory_bytes: int = 1 << 22,
    compiled: CompileResult | None = None,
) -> RunResult:
    """Compile and run one workload; returns stats + energy + check.

    ``compiled`` lets callers (the engine's artifact cache) supply a
    pre-built :class:`CompileResult` and skip compilation entirely.
    """
    if mode not in ("scalar", "dyser"):
        raise WorkloadError(f"unknown mode {mode!r}")
    workload = get_workload(name)
    options = options or CompilerOptions(
        fabric=Fabric(FabricGeometry(*DEFAULT_GEOMETRY)))
    if compiled is None:
        compiled = _compile(name, source_hash(workload.source), mode,
                            _options_key(options))

    memory = Memory(memory_bytes)
    instance = workload.prepare(memory, scale, seed)
    device = None
    if mode == "dyser":
        device = DyserDevice(
            fabric=options.fabric,
            timing=timing or DyserTimingParams(),
            cache_params=cache_params or ConfigCacheParams(),
        )
    config = core_config or CoreConfig(has_dyser=(mode == "dyser"))
    core = Core(compiled.program, memory, dyser=device, config=config)
    core.set_args(instance.int_args, instance.fp_args)
    stats = core.run()
    correct = instance.check(memory)

    eparams = energy_params or EnergyParams(
        dyser_present=(mode == "dyser"))
    energy = EnergyModel(eparams).account(stats)
    return RunResult(
        workload=name, mode=mode, scale=scale, correct=correct,
        stats=stats, energy=energy, compile_result=compiled,
        work_items=instance.work_items,
    )


def compare(name: str, scale: str = "small", seed: int = 7,
            options: CompilerOptions | None = None,
            core_config: CoreConfig | None = None) -> Comparison:
    """Run scalar and DySER builds of one workload on identical inputs."""
    scalar = run_workload(name, mode="scalar", scale=scale, seed=seed,
                          core_config=core_config)
    dyser = run_workload(name, mode="dyser", scale=scale, seed=seed,
                         options=options, core_config=core_config)
    return Comparison(workload=name, scalar=scalar, dyser=dyser)
