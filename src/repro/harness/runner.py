"""Experiment runner: compile, execute and account a workload.

The single entry point the E-series benchmarks use::

    result = run_workload(RunConfig(workload="mm", mode="dyser"))
    comparison = compare("mm", scale="small")

A run is fully described by a :class:`~repro.harness.config.RunConfig`
— workload, mode, scale, seed, every subsystem parameter object, the
observability request (``trace=TraceOptions(...)``) and the simulation
``backend``.  The historical ``run_workload("mm", mode=...)`` kwargs
shim has been removed: ``run_workload`` takes a ``RunConfig``, full
stop.  Backend selection happens in exactly one place —
:func:`repro.harness.backends.resolve_backend`, called from
:func:`execute` — so ``compare``, ``profile_workload``, the engine and
the CLI all inherit it.

Every run validates outputs against the workload's numpy reference;
``RunResult.correct`` is part of the result, and the benchmarks assert
it.  When tracing is enabled the structured event stream is attached to
the result as ``RunResult.events`` (never serialized).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro.compiler import CompileResult, CompilerOptions, RegionReport
from repro.compiler import compile_dyser, compile_scalar
from repro.cpu import CoreConfig, ExecStats, Memory, clear_decode_caches
from repro.dyser import DyserDevice, DyserTimingParams, Fabric, FabricGeometry
from repro.dyser.config_cache import ConfigCacheParams
from repro.energy import EnergyModel, EnergyParams, EnergyReport
from repro.errors import WorkloadError
from repro.harness.backends import resolve_backend
from repro.harness.config import RunConfig
from repro.obs.events import EventStream, TraceOptions
from repro.workloads import get as get_workload

#: The prototype's fabric: 8x8, heterogeneous.
DEFAULT_GEOMETRY = (8, 8)

#: Serialization format tag for run summaries (artifact cache entries).
RESULT_FORMAT = "repro-run-v1"


@dataclass
class RunResult:
    """One (workload, mode) execution."""

    workload: str
    mode: str
    scale: str
    correct: bool
    stats: ExecStats
    energy: EnergyReport
    compile_result: CompileResult
    work_items: int
    #: The structured trace recorded during the run (None unless the
    #: run's ``TraceOptions.enabled`` was set; never serialized).
    events: EventStream | None = field(default=None, compare=False,
                                       repr=False)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    @property
    def cycles_per_item(self) -> float:
        return self.cycles / self.work_items if self.work_items else 0.0

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe run summary (everything but program + trace)."""
        return {
            "format": RESULT_FORMAT,
            "workload": self.workload,
            "mode": self.mode,
            "scale": self.scale,
            "correct": self.correct,
            "work_items": self.work_items,
            "stats": self.stats.to_dict(),
            "energy": self.energy.to_dict(),
            "regions": [r.to_dict() for r in
                        (self.compile_result.regions
                         if self.compile_result else [])],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a run summary.

        The reconstructed ``compile_result`` carries the region reports
        but ``program=None`` — summaries are for accounting (cycles,
        energy, correctness), not for re-execution.
        """
        if data.get("format") != RESULT_FORMAT:
            raise ValueError(f"not a run summary: {data.get('format')!r}")
        return cls(
            workload=data["workload"],
            mode=data["mode"],
            scale=data["scale"],
            correct=bool(data["correct"]),
            stats=ExecStats.from_dict(data["stats"]),
            energy=EnergyReport.from_dict(data["energy"]),
            compile_result=CompileResult(
                program=None, ir_dump="",
                regions=[RegionReport.from_dict(r)
                         for r in data["regions"]]),
            work_items=data["work_items"],
        )


@dataclass
class Comparison:
    """Scalar vs DySER for one workload."""

    workload: str
    scalar: RunResult
    dyser: RunResult

    @property
    def speedup(self) -> float:
        return self.scalar.cycles / self.dyser.cycles

    @property
    def energy_ratio(self) -> float:
        """scalar energy / dyser energy (>1 means DySER saves energy)."""
        return self.scalar.energy.total_j / self.dyser.energy.total_j

    @property
    def edp_ratio(self) -> float:
        return (self.scalar.energy.energy_delay_product()
                / self.dyser.energy.energy_delay_product())

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scalar": self.scalar.to_dict(),
            "dyser": self.dyser.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Comparison":
        return cls(
            workload=data["workload"],
            scalar=RunResult.from_dict(data["scalar"]),
            dyser=RunResult.from_dict(data["dyser"]),
        )


def source_hash(source: str) -> str:
    """Stable hash of a kernel's source text (compile-cache key part)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@lru_cache(maxsize=256)
def _compile(workload_name: str, src_hash: str, mode: str,
             options_key: tuple) -> CompileResult:
    # ``src_hash`` keys the cache on the workload's *source text*, not
    # just its name: re-registering or editing a kernel in-session can
    # never serve a stale compile.
    workload = get_workload(workload_name)
    if source_hash(workload.source) != src_hash:  # pragma: no cover
        raise WorkloadError(
            f"{workload_name}: source changed between lookup and compile")
    if mode == "scalar":
        return compile_scalar(workload.source)
    options = _options_from_key(options_key)
    return compile_dyser(workload.source, options)


def clear_caches() -> None:
    """Drop all process-local memoized state: compiles **and** the fast
    backend's decode/block caches.

    The engine calls this in worker processes after code-fingerprint
    changes, and tests use it to guarantee cold-compile (and
    cold-decode) behaviour.
    """
    _compile.cache_clear()
    clear_decode_caches()


def _options_key(options: CompilerOptions) -> tuple:
    g = options.fabric.geometry
    return (g.width, g.height, options.min_region_ops, options.unroll,
            options.vectorize, options.if_convert, options.max_region_ops)


def _options_from_key(key: tuple) -> CompilerOptions:
    width, height, min_ops, unroll, vectorize, if_convert, max_ops = key
    return CompilerOptions(
        fabric=Fabric(FabricGeometry(width, height)),
        min_region_ops=min_ops, unroll=unroll, vectorize=vectorize,
        if_convert=if_convert, max_region_ops=max_ops)


def run_workload(config: RunConfig, /,
                 compiled: CompileResult | None = None) -> RunResult:
    """Compile and run one workload; returns stats + energy + check.

    ``config`` must be a :class:`RunConfig`::

        run_workload(RunConfig(workload="mm", mode="dyser"))

    (The pre-1.1 ``run_workload(name, **kwargs)`` form has been
    removed.)  ``compiled`` lets callers (the engine's artifact cache)
    supply a pre-built :class:`CompileResult` and skip compilation.
    """
    if not isinstance(config, RunConfig):
        raise TypeError(
            "run_workload() takes a RunConfig; the legacy "
            "run_workload(name, **kwargs) form was removed — use "
            "run_workload(RunConfig(workload=..., mode=...)) instead"
        )
    return execute(config, compiled=compiled)


def execute(config: RunConfig,
            compiled: CompileResult | None = None) -> RunResult:
    """Run one fully specified :class:`RunConfig`."""
    workload = get_workload(config.workload)
    options = config.options or CompilerOptions(
        fabric=Fabric(FabricGeometry(*DEFAULT_GEOMETRY)))
    events = config.trace.stream()

    if compiled is None:
        if events is not None:
            # Tracing wants per-pass wall times: compile fresh, outside
            # the memo (a memo hit would have no passes to time).
            with events.span("compile", "compiler",
                             workload=config.workload, mode=config.mode):
                compiled = (
                    compile_scalar(workload.source, events=events)
                    if config.mode == "scalar"
                    else compile_dyser(workload.source, options,
                                       events=events))
        else:
            compiled = _compile(config.workload,
                                source_hash(workload.source),
                                config.mode, _options_key(options))

    memory = Memory(config.memory_bytes)
    instance = workload.prepare(memory, config.scale, config.seed)
    device = None
    if config.mode == "dyser":
        device = DyserDevice(
            fabric=options.fabric,
            timing=config.timing or DyserTimingParams(),
            cache_params=config.cache_params or ConfigCacheParams(),
        )
        device.events = events
    core_config = config.core_config or CoreConfig(
        has_dyser=(config.mode == "dyser"))
    backend = resolve_backend(config)
    core = backend.core_cls(
        compiled.program, memory, dyser=device, config=core_config,
        events=events,
        trace_instructions=(config.trace.instructions
                            and events is not None))
    core.set_args(instance.int_args, instance.fp_args)
    stats = core.run()
    correct = instance.check(memory)
    if events is not None:
        events.instant("run_end", "cpu", stats.cycles,
                       correct=bool(correct))

    eparams = config.energy_params or EnergyParams(
        dyser_present=(config.mode == "dyser"))
    energy = EnergyModel(eparams).account(stats)
    return RunResult(
        workload=config.workload, mode=config.mode, scale=config.scale,
        correct=correct, stats=stats, energy=energy,
        compile_result=compiled, work_items=instance.work_items,
        events=events,
    )


def compare(name: str, scale: str = "small", seed: int = 7,
            options: CompilerOptions | None = None,
            core_config: CoreConfig | None = None,
            trace: TraceOptions | None = None,
            backend: str | None = None) -> Comparison:
    """Run scalar and DySER builds of one workload on identical inputs.

    ``backend`` overrides :class:`RunConfig`'s default for both runs;
    dispatch itself still happens inside :func:`execute`.
    """
    trace = trace or TraceOptions()
    extra = {} if backend is None else {"backend": backend}
    scalar = execute(RunConfig(
        workload=name, mode="scalar", scale=scale, seed=seed,
        core_config=core_config, trace=trace, **extra))
    dyser = execute(RunConfig(
        workload=name, mode="dyser", scale=scale, seed=seed,
        options=options, core_config=core_config, trace=trace, **extra))
    return Comparison(workload=name, scalar=scalar, dyser=dyser)
