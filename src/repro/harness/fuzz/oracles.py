"""Differential oracles: what makes a generated case a *finding*.

Five per-case oracles plus the planted-mutation cores used by the
self-check:

- **parity** — run the case on the reference and fast backends; any
  difference in the full summary (stats, registers, touched scratch
  memory) or in the error outcome is a finding.  Raising is an outcome
  too: both backends must fault with the same stable error string.
- **lint** — static/dynamic agreement.  A run that crashes with no
  error-severity lint diagnostic is a finding (the linter missed it);
  a lint diagnostic from the *must-crash* set on a run that completes
  cleanly is a finding in the other direction.  Codes outside that set
  (capacity RPR213, style RPR205/RPR214) are advisory: the validator
  deliberately accepts abstract configs the linter flags.
- **ir** — kernels must compile in both modes with the pass verifier
  on, and the verifier must be observer-only: identical listings, IR
  dumps and configurations with ``verify_passes`` on and off.
- **batched** — run the case as one multi-point lockstep lane
  (differing per-point knobs) and demand each point reproduce its
  solo run exactly, evicted points included via the harness's solo
  fallback.
- **perfbound** — the static performance analyzer's lower bound must
  never exceed the reference run's measured cycles, and an ``exact``
  walk must predict them exactly.
- **dsl** — the kernel-DSL pipeline (``repro.lang``) must fail closed:
  validation never raises, every rejection carries stable ``RPR5xx``
  codes (planted mutants tripping their specific code), and anything
  accepted must lower and run correctly in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import lint_config
from repro.cpu import BatchCore, Core, CoreConfig, FastCore, Memory
from repro.dyser import ConfigCacheParams, DyserDevice, DyserTimingParams
from repro.dyser.batch import BatchedDyserDevice
from repro.dyser.serialize import config_to_dict
from repro.errors import ReproError, stable_error_string
from repro.harness.fuzz.generator import (
    _BASE,
    DSL_MUTATIONS,
    FuzzCase,
    default_fabric,
    payload_to_config,
)
from repro.harness.parity import diff_summaries
from repro.isa import assemble

#: Lint codes whose error-severity firing *must* coincide with a
#: simulator rejection: arity (RPR201), undefined node (RPR202), no
#: outputs (RPR203), cycle (RPR204), port out of range (RPR206).
#: Everything else error-severity is lint-only by design (e.g. fabric
#: capacity RPR213 on abstract configs).
MUST_CRASH_CODES = frozenset(
    {"RPR201", "RPR202", "RPR203", "RPR204", "RPR206"})


@dataclass(frozen=True)
class Finding:
    """One oracle violation, reproducible from ``(seed, index)``."""

    oracle: str     # parity | lint | ir | chaos | replay
    case_key: str   # "s<seed>-i<index>", or the chaos scenario name
    kind: str       # machine tag: summary-mismatch, crash-not-predicted...
    detail: str
    seed: int = 0
    index: int = -1

    def describe(self) -> str:
        return f"[{self.oracle}] {self.case_key} {self.kind}: {self.detail}"

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "case_key": self.case_key,
            "kind": self.kind,
            "detail": self.detail,
            "seed": self.seed,
            "index": self.index,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(oracle=data["oracle"], case_key=data["case_key"],
                   kind=data["kind"], detail=data["detail"],
                   seed=int(data.get("seed", 0)),
                   index=int(data.get("index", -1)))


class MutantFastCore(FastCore):
    """FastCore with a planted off-by-one in the memory-access timing.

    The fuzz self-check pits this against the reference: any generated
    program that touches memory diverges in ``stats.cycles``, so the
    harness must catch it, shrink it, and produce a corpus entry that
    replays red against this core and green against the real one.
    """

    def _data_access(self, addr: int, is_write: bool = False) -> int:
        return Core._data_access(self, addr, is_write) + 1


class MutantBatchCore(BatchCore):
    """BatchCore with the same planted off-by-one, batch-path only.

    Solo runs stay clean, so every divergence the batched oracle sees
    against this core is attributable to the lockstep path — the exact
    failure mode the oracle exists to catch.
    """

    def _data_access(self, addr: int, is_write: bool = False) -> int:
        return Core._data_access(self, addr, is_write) + 1


def build_program(case: FuzzCase):
    """Assemble the case and attach its configurations unvalidated —
    validation is the simulator's job and exactly what the lint oracle
    cross-examines."""
    program = assemble(case.source, name=f"fuzz-{case.key}")
    for payload in case.configs:
        program.dyser_configs[payload["config_id"]] = (
            payload_to_config(payload))
    return program


def _summary(core, memory, stats) -> dict:
    """Everything observable after a run: stats, both register files,
    and the scratch window every generated program confines its memory
    traffic to.  Floats are rendered with ``repr`` so the comparison
    is exact (and NaN-proof) rather than ``==``-based."""
    return {
        "stats": stats.to_dict(),
        "iregs": list(core.iregs._regs),
        "fregs": [repr(v) for v in core.fregs._regs],
        "mem": [repr(memory.load_word(_BASE + 8 * i))
                for i in range(32)],
    }


def run_case(case: FuzzCase, core_cls: type = Core) -> tuple[str, object]:
    """``("ok", summary)`` or ``("error", stable_error_string)``."""
    try:
        program = build_program(case)
        memory = Memory(1 << 16)
        core = core_cls(program, memory,
                        dyser=DyserDevice(fabric=default_fabric()))
        stats = core.run()
        return ("ok", _summary(core, memory, stats))
    except ReproError as exc:
        return ("error", stable_error_string(exc))


def _render_diff(ref: dict, cand: dict, keys: list[str],
                 limit: int = 4) -> str:
    from repro.harness.parity import _flatten

    fr, fc = _flatten(ref), _flatten(cand)
    parts = [f"{k}: reference={fr.get(k)!r} candidate={fc.get(k)!r}"
             for k in keys[:limit]]
    if len(keys) > limit:
        parts.append(f"... and {len(keys) - limit} more keys")
    return "; ".join(parts)


def parity_oracle(case: FuzzCase,
                  candidate_cls: type | None = None) -> Finding | None:
    """Reference vs fast (or a planted-mutant candidate)."""
    cand_cls = candidate_cls or FastCore
    ref = run_case(case, Core)
    cand = run_case(case, cand_cls)
    if ref == cand:
        return None
    if ref[0] == "ok" and cand[0] == "ok":
        keys = diff_summaries(ref[1], cand[1])
        kind, detail = "summary-mismatch", _render_diff(ref[1], cand[1],
                                                        keys)
    elif ref[0] != cand[0]:
        kind = "outcome-mismatch"
        detail = f"reference={ref[0]} candidate={cand[0]}: {cand[1]!r}"
    else:
        kind = "error-mismatch"
        detail = f"reference={ref[1]} candidate={cand[1]}"
    return Finding("parity", case.key, kind, detail,
                   seed=case.seed, index=case.index)


#: Per-point knob grid the batched oracle runs as one lane: exactly
#: the kinds of variation a real sweep packs into a batch — the two
#: per-point CoreConfig fields plus per-device FIFO/II/config-cache
#: knobs.  Point 2's tight instruction limit makes longer cases evict
#: mid-batch, exercising split-and-fallback against live siblings.
_BATCH_POINTS = (
    ({}, {}, {}),
    ({"vector_port_words_per_cycle": 1},
     {"input_fifo_depth": 2, "initiation_interval": 2},
     {"capacity": 1}),
    ({"max_instructions": 250}, {"output_fifo_depth": 2}, {}),
)


def _run_point_solo(case: FuzzCase, core_cls: type, config, timing,
                    cache_params) -> tuple[str, object]:
    """One sweep point run solo — same outcome shape as run_case."""
    try:
        program = build_program(case)
        memory = Memory(1 << 16)
        core = core_cls(
            program, memory,
            dyser=DyserDevice(fabric=default_fabric(), timing=timing,
                              cache_params=cache_params),
            config=config)
        stats = core.run()
        return ("ok", _summary(core, memory, stats))
    except ReproError as exc:
        return ("error", stable_error_string(exc))


def batched_oracle(case: FuzzCase,
                   candidate_cls: type | None = None) -> Finding | None:
    """Batched lockstep vs solo fast, point by point.

    The case runs once as a three-point lane (:data:`_BATCH_POINTS`)
    and every point's summary — or error string — must match a solo
    run with identical knobs.  Evicted points are replayed solo just
    like the harness fallback, so what this oracle really pins down is
    the lockstep machinery: shared functional state, per-point timing
    vectors, and eviction leaving siblings unpoisoned.

    ``candidate_cls`` swaps the lane core when it is a
    :class:`~repro.cpu.BatchCore` subclass (the self-check plants
    :class:`MutantBatchCore`); anything else — e.g. a parity campaign's
    ``MutantFastCore`` — is ignored.
    """
    if case.kind not in ("scalar", "dyser"):
        return None
    batch_cls = BatchCore
    if candidate_cls is not None and issubclass(candidate_cls, BatchCore):
        batch_cls = candidate_cls
    points = [(CoreConfig(**ck), DyserTimingParams(**tk),
               ConfigCacheParams(**pk))
              for ck, tk, pk in _BATCH_POINTS]
    expected = [_run_point_solo(case, FastCore, *point)
                for point in points]
    shared = None
    try:
        program = build_program(case)
        memory = Memory(1 << 16)
        tape: dict = {}
        devices = [BatchedDyserDevice(fabric=default_fabric(),
                                      timing=timing,
                                      cache_params=cache_params,
                                      tape=tape)
                   for _, timing, cache_params in points]
        core = batch_cls(program, memory, devices,
                         [config for config, _, _ in points])
        stats_list = core.run()
        shared = (core, memory)
    except ReproError:
        # A setup/shared fault evicts the whole lane; solo replay (the
        # fallback below) must reproduce each point's exact outcome.
        stats_list = [None] * len(points)
    for p, stats in enumerate(stats_list):
        got = (_run_point_solo(case, FastCore, *points[p])
               if stats is None
               else ("ok", _summary(shared[0], shared[1], stats)))
        exp = expected[p]
        if got == exp:
            continue
        if exp[0] == "ok" and got[0] == "ok":
            keys = diff_summaries(exp[1], got[1])
            kind = "summary-mismatch"
            detail = f"point {p}: " + _render_diff(exp[1], got[1], keys)
        elif exp[0] != got[0]:
            kind = "outcome-mismatch"
            detail = (f"point {p}: solo={exp[0]} batched={got[0]}: "
                      f"{got[1]!r}")
        else:
            kind = "error-mismatch"
            detail = f"point {p}: solo={exp[1]} batched={got[1]}"
        return Finding("batched", case.key, kind, detail,
                       seed=case.seed, index=case.index)
    return None


def lint_case(case: FuzzCase) -> set[str]:
    """Error-severity diagnostic codes across the case's configs."""
    predicted: set[str] = set()
    for payload in case.configs:
        report = lint_config(payload_to_config(payload))
        predicted |= {d.code for d in report.errors}
    return predicted


def lint_oracle(case: FuzzCase) -> Finding | None:
    """Lint-vs-crash agreement (dyser cases only)."""
    if case.kind != "dyser":
        return None
    predicted = lint_case(case)
    outcome = run_case(case, Core)
    crashed = outcome[0] == "error"
    if crashed and not predicted:
        return Finding(
            "lint", case.key, "crash-not-predicted",
            f"run crashed ({outcome[1]}) but lint reported no errors",
            seed=case.seed, index=case.index)
    must_crash = predicted & MUST_CRASH_CODES
    if not crashed and must_crash:
        return Finding(
            "lint", case.key, "predicted-crash-ran-clean",
            f"lint reported {sorted(must_crash)} but the run completed",
            seed=case.seed, index=case.index)
    return None


def _compile_fingerprint(result) -> str:
    """A stable rendering of everything a compile produces."""
    configs = "\n".join(
        repr(sorted(config_to_dict(c).items()))
        for _, c in sorted(result.program.dyser_configs.items()))
    return f"{result.program.listing()}\n--\n{result.ir_dump}\n--\n{configs}"


def ir_oracle(case: FuzzCase) -> Finding | None:
    """Compiler acceptance + verifier-is-observer-only (kernel cases)."""
    if case.kind != "kernel":
        return None
    from repro.compiler import CompilerOptions, compile_dyser, compile_scalar

    # The fuzz fabric and a small unroll keep the spatial scheduler
    # fast (the default 8x8/unroll-8 routing costs seconds per kernel)
    # while still exercising every pass the verifier watches.
    def options(verify: bool) -> CompilerOptions:
        return CompilerOptions(fabric=default_fabric(), unroll=2,
                               verify_passes=verify)

    try:
        compile_scalar(case.source, verify=True)
        verified = compile_dyser(case.source, options(True))
        plain = compile_dyser(case.source, options(False))
    except ReproError as exc:
        return Finding("ir", case.key, "compile-failure",
                       stable_error_string(exc),
                       seed=case.seed, index=case.index)
    if _compile_fingerprint(verified) != _compile_fingerprint(plain):
        return Finding(
            "ir", case.key, "verifier-not-observer-only",
            "listing/IR/configs differ with verify_passes on vs off",
            seed=case.seed, index=case.index)
    return None


def perfbound_oracle(case: FuzzCase) -> Finding | None:
    """Static prediction vs reference run (scalar + dyser cases).

    Holds the perf analyzer to its two contracts on every generated
    program whose reference run completes:

    - **soundness** — the static lower bound never exceeds the
      measured cycle count;
    - **exactness** — a walk that claims ``exact`` must predict the
      measured cycles, well, exactly (the walker is a timing mirror of
      the reference core; any drift here is a modelling bug).

    The analyzer crashing on a case the simulator accepts is a finding
    too: static analysis must be total over valid programs.
    """
    from repro.analysis.perf import analyze_program

    outcome = run_case(case, Core)
    if outcome[0] != "ok":
        return None
    measured = outcome[1]["stats"]["cycles"]
    try:
        prediction = analyze_program(build_program(case),
                                     fabric=default_fabric(),
                                     subject=case.key)
    except ReproError as exc:
        return Finding(
            "perfbound", case.key, "analyzer-crash",
            f"run ok but analyze_program raised: "
            f"{stable_error_string(exc)}",
            seed=case.seed, index=case.index)
    if prediction.lower_bound > measured:
        return Finding(
            "perfbound", case.key, "bound-unsound",
            f"static lower bound {prediction.lower_bound} exceeds "
            f"measured {measured} cycles",
            seed=case.seed, index=case.index)
    if prediction.exact and prediction.predicted_cycles != measured:
        return Finding(
            "perfbound", case.key, "exact-walk-mismatch",
            f"walk claimed exact but predicted "
            f"{prediction.predicted_cycles} vs measured {measured}",
            seed=case.seed, index=case.index)
    return None


def dsl_oracle(case: FuzzCase) -> Finding | None:
    """The kernel-DSL pipeline contract (dsl cases only).

    Four promises, cross-examined on every generated case:

    - ``check_source`` never raises — bad input yields diagnostics,
      not exceptions (``harness-crash`` otherwise);
    - every rejection carries only stable ``RPR5xx`` codes, and a
      planted mutant's rejection includes the *specific* code its
      breakage must trip (``rejection-without-rpr5xx`` /
      ``wrong-code``);
    - the gate is exact: planted mutants never pass
      (``mutant-accepted``) and unmutated grammatical kernels never
      get rejected (``legal-rejected``);
    - whatever passes the gate actually runs: the lowered workload
      must complete correctly in both scalar and dyser mode
      (``accepted-crashed`` / ``accepted-incorrect``).
    """
    if case.kind != "dsl":
        return None
    from repro.lang import check_source, lower_spec

    try:
        spec, report = check_source(case.source)
    except Exception as exc:  # noqa: BLE001 — the contract under test
        return Finding(
            "dsl", case.key, "harness-crash",
            f"check_source raised {type(exc).__name__}: {exc}",
            seed=case.seed, index=case.index)
    if spec is None:
        codes = sorted({d.code for d in report.errors})
        if not codes or not all(c.startswith("RPR5") for c in codes):
            return Finding(
                "dsl", case.key, "rejection-without-rpr5xx",
                f"rejected with codes {codes}",
                seed=case.seed, index=case.index)
        if not case.expect_error:
            return Finding(
                "dsl", case.key, "legal-rejected",
                f"unmutated source rejected with {codes}",
                seed=case.seed, index=case.index)
        planted = DSL_MUTATIONS.get(case.label.split("/", 1)[-1])
        if planted is not None and planted not in codes:
            return Finding(
                "dsl", case.key, "wrong-code",
                f"{case.label} must trip {planted}; got {codes}",
                seed=case.seed, index=case.index)
        return None
    if case.expect_error:
        return Finding(
            "dsl", case.key, "mutant-accepted",
            f"planted {case.label} passed validation",
            seed=case.seed, index=case.index)
    from repro.harness import RunConfig, run_workload
    from repro.workloads import SUITE
    from repro.workloads.suite import register_workload

    workload = lower_spec(spec)
    register_workload(workload, replace=True)
    try:
        for mode in ("scalar", "dyser"):
            try:
                result = run_workload(RunConfig(
                    workload=workload.name, mode=mode, scale="tiny"))
            except ReproError as exc:
                return Finding(
                    "dsl", case.key, "accepted-crashed",
                    f"{mode}: {stable_error_string(exc)}",
                    seed=case.seed, index=case.index)
            except Exception as exc:  # noqa: BLE001
                return Finding(
                    "dsl", case.key, "harness-crash",
                    f"{mode} run raised {type(exc).__name__}: {exc}",
                    seed=case.seed, index=case.index)
            if not result.correct:
                return Finding(
                    "dsl", case.key, "accepted-incorrect",
                    f"{mode} run produced a wrong result",
                    seed=case.seed, index=case.index)
    finally:
        # Keep the process-wide suite clean: fuzz kernels are
        # throwaway, not registrations.
        SUITE.pop(workload.name, None)
    return None


#: Oracle dispatch used by the driver and by corpus replay.
def check_case(case: FuzzCase, oracle: str,
               candidate_cls: type | None = None) -> Finding | None:
    if oracle == "parity":
        return parity_oracle(case, candidate_cls)
    if oracle == "batched":
        return batched_oracle(case, candidate_cls)
    if oracle == "lint":
        return lint_oracle(case)
    if oracle == "ir":
        return ir_oracle(case)
    if oracle == "perfbound":
        return perfbound_oracle(case)
    if oracle == "dsl":
        return dsl_oracle(case)
    raise ValueError(f"unknown per-case oracle {oracle!r}")
