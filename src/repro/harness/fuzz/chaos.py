"""Chaos driver for the service layer.

Four fault-injection scenarios, each run against a real in-process
daemon (:class:`repro.service.ServiceThread`) and each asserting the
same two invariants from the service's contract:

1. **never wrong bytes** — any ``ok: true`` response carries exactly
   the payload a direct engine run would produce;
2. **recover or fail closed** — after the fault the daemon either
   serves correct results again or answers with an honest error
   status (500/429/504/503), never a fabricated success.

Scenarios:

- ``worker-crash``      — the engine worker raises mid-batch; the
  poisoned job must fail closed, the next job must execute normally.
- ``queue-overflow``    — fill the queue behind a gated worker; the
  overflow request must get 429 + Retry-After, queued work must
  complete untouched once the gate opens.
- ``cache-corruption``  — truncate, bit-flip and garble the artifact
  cache entry between requests; every subsequent response must still
  be byte-identical to the direct run (miss-and-evict, re-execute).
- ``slow-client-drain`` — a client that stalls mid-request while the
  server drains; shutdown must still complete and the in-flight job
  must be served.
- ``gateway-worker-kill`` — a sharded gateway loses a worker while a
  durable ``/v2`` sweep job is executing on it; the gateway must
  evict the dead shard, re-dispatch to a survivor and finish the job
  byte-identical.  The gateway itself is then crashed mid-job and
  restarted on the same journal; the replayed job must complete.

Violations surface as :class:`~repro.harness.fuzz.oracles.Finding`
objects with ``oracle="chaos"``; an unexpected scenario exception is
itself a finding (``harness-error``), never a crash of the fuzz run.
"""

from __future__ import annotations

import json
import random
import socket
import tempfile
import threading
import time

from repro.errors import stable_error_string
from repro.harness.fuzz.oracles import Finding

#: The one spec every scenario runs (tiny => fast, dyser => exercises
#: the full access/execute path through the engine).
SPEC = {"workload": "vecadd", "mode": "dyser", "scale": "tiny"}


def _canned_payload() -> dict:
    """A direct engine run of :data:`SPEC` — the wrong-bytes oracle."""
    from repro import RunConfig, run_workload
    from repro.engine import result_to_dict

    return result_to_dict(run_workload(RunConfig(**SPEC)))


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _poll(predicate, timeout: float = 10.0,
          interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class _GatedWorker:
    """Engine worker whose first call blocks on an event (the same
    injection hook :func:`repro.engine.pool.run_jobs` exposes)."""

    def __init__(self, payload: dict):
        self.payload = payload
        self.release = threading.Event()
        self.started = threading.Event()
        self._lock = threading.Lock()
        self._calls = 0

    def __call__(self, spec, cache=None):
        with self._lock:
            self._calls += 1
            first = self._calls == 1
        if first:
            self.started.set()
            if not self.release.wait(timeout=30):
                raise RuntimeError("chaos gate never released")
        return dict(self.payload)


def _submit_async(port: int, spec: dict, out: list, **kwargs):
    from repro.service import ServiceClient

    def run():
        with ServiceClient(port=port, retries=0, timeout=60) as client:
            out.append(client.run(spec, raise_on_error=False, **kwargs))

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


# ---------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------

def _scenario_worker_crash(rng: random.Random) -> list[Finding]:
    from repro.service import ServiceClient, ServiceThread
    from repro.service import protocol as P

    findings: list[Finding] = []
    payload = _canned_payload()

    def worker(spec, cache=None):
        if spec.seed == 1:
            raise RuntimeError("injected worker crash")
        return dict(payload)

    with ServiceThread(cache=None, batch_max=1, batch_window_s=0.0,
                       worker=worker) as srv, \
            ServiceClient(port=srv.port, retries=0,
                          timeout=60) as client:
        poisoned = client.run({**SPEC, "seed": 1},
                              raise_on_error=False)
        if poisoned.get("ok") or (poisoned.get("status")
                                  != P.STATUS_FAILED):
            findings.append(Finding(
                "chaos", "worker-crash", "not-failed-closed",
                f"poisoned job answered "
                f"{poisoned.get('status')!r} ok="
                f"{poisoned.get('ok')!r} instead of failing"))
        healthy = client.run({**SPEC, "seed": 2},
                             raise_on_error=False)
        if healthy.get("status") != P.STATUS_EXECUTED:
            findings.append(Finding(
                "chaos", "worker-crash", "no-recovery",
                f"job after the crash answered "
                f"{healthy.get('status')!r}"))
        elif _canonical(healthy["result"]) != _canonical(payload):
            findings.append(Finding(
                "chaos", "worker-crash", "wrong-bytes",
                "post-crash result differs from the direct run"))
        if not client.health().get("ready"):
            findings.append(Finding(
                "chaos", "worker-crash", "not-ready",
                "daemon not ready after worker crash"))
    return findings


def _scenario_queue_overflow(rng: random.Random) -> list[Finding]:
    from repro.service import ServiceClient, ServiceThread
    from repro.service import protocol as P

    findings: list[Finding] = []
    payload = _canned_payload()
    worker = _GatedWorker(payload)
    replies: list[dict] = []
    with ServiceThread(cache=None, queue_limit=2, batch_max=1,
                       batch_window_s=0.0, worker=worker) as srv:
        t1 = _submit_async(srv.port, {**SPEC, "seed": 1}, replies)
        if not worker.started.wait(timeout=10):
            return [Finding("chaos", "queue-overflow", "harness-error",
                            "gated worker never started")]
        t2 = _submit_async(srv.port, {**SPEC, "seed": 2}, replies)
        with ServiceClient(port=srv.port, retries=0) as probe:
            if not _poll(lambda: probe.health()["inflight"] == 2):
                findings.append(Finding(
                    "chaos", "queue-overflow", "harness-error",
                    "two jobs never became in-flight"))
            status, headers, data = probe._send_once(
                "POST", "/v1/run",
                json.dumps({"spec": {**SPEC, "seed": 3}}).encode())
            overflow = json.loads(data)
            retry_after = {k.lower(): v
                           for k, v in headers.items()}.get("retry-after")
            if status != 429 or overflow.get("status") != P.STATUS_THROTTLED:
                findings.append(Finding(
                    "chaos", "queue-overflow", "no-backpressure",
                    f"overflow answered HTTP {status} "
                    f"{overflow.get('status')!r}, wanted 429 throttled"))
            elif not retry_after or float(retry_after) <= 0:
                findings.append(Finding(
                    "chaos", "queue-overflow", "no-retry-after",
                    f"throttle without usable Retry-After "
                    f"({retry_after!r})"))
        worker.release.set()
        t1.join(timeout=30)
        t2.join(timeout=30)
    statuses = sorted(r.get("status") for r in replies)
    if statuses != [P.STATUS_EXECUTED, P.STATUS_EXECUTED]:
        findings.append(Finding(
            "chaos", "queue-overflow", "queued-work-lost",
            f"queued jobs finished as {statuses} after the gate opened"))
    elif any(_canonical(r["result"]) != _canonical(payload)
             for r in replies):
        findings.append(Finding(
            "chaos", "queue-overflow", "wrong-bytes",
            "a queued job's result differs from the direct run"))
    return findings


def _corruptions(rng: random.Random):
    """The three corruption styles, as (name, mutate(text) -> text)."""

    def truncate(text: str) -> str:
        return text[: max(1, len(text) // 2)]

    def bit_flip(text: str) -> str:
        digits = [i for i, ch in enumerate(text) if ch.isdigit()]
        pos = rng.choice(digits)
        flipped = str((int(text[pos]) + 1 + rng.randrange(8)) % 10)
        return text[:pos] + flipped + text[pos + 1:]

    def garble(text: str) -> str:
        return "{this is not json" + text[:32]

    return (("truncate", truncate), ("bit-flip", bit_flip),
            ("garble", garble))


def _scenario_cache_corruption(rng: random.Random) -> list[Finding]:
    from repro.engine import ArtifactCache
    from repro.service import (
        ServiceClient,
        ServiceThread,
        spec_from_payload,
    )
    from repro.service import protocol as P

    findings: list[Finding] = []
    expected = _canonical(_canned_payload())
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache = ArtifactCache(tmp)
        path = cache._path("run", spec_from_payload(SPEC).job_hash)
        with ServiceThread(cache=cache, batch_max=1,
                           batch_window_s=0.0) as srv, \
                ServiceClient(port=srv.port, retries=0,
                              timeout=120) as client:
            first = client.run(SPEC, raise_on_error=False)
            if (first.get("status") != P.STATUS_EXECUTED
                    or _canonical(first["result"]) != expected):
                return [Finding(
                    "chaos", "cache-corruption", "harness-error",
                    f"baseline run answered "
                    f"{first.get('status')!r}")]
            if not path.exists():
                return [Finding(
                    "chaos", "cache-corruption", "harness-error",
                    "run artifact never reached the cache")]
            warm = client.run(SPEC, raise_on_error=False)
            if warm.get("status") != P.STATUS_HIT:
                findings.append(Finding(
                    "chaos", "cache-corruption", "no-cache-hit",
                    f"warm request answered {warm.get('status')!r}"))
            for name, mutate in _corruptions(rng):
                text = path.read_text()
                path.write_text(mutate(text))
                resp = client.run(SPEC, raise_on_error=False)
                if not resp.get("ok"):
                    findings.append(Finding(
                        "chaos", "cache-corruption",
                        f"{name}-not-recovered",
                        f"request after {name} answered "
                        f"{resp.get('status')!r}"))
                elif _canonical(resp["result"]) != expected:
                    findings.append(Finding(
                        "chaos", "cache-corruption",
                        f"{name}-wrong-bytes",
                        f"response after {name} corruption "
                        f"differs from the direct run"))
    return findings


def _scenario_slow_client_drain(rng: random.Random) -> list[Finding]:
    from repro.service import ServiceThread
    from repro.service import protocol as P

    findings: list[Finding] = []
    payload = _canned_payload()
    worker = _GatedWorker(payload)
    srv = ServiceThread(cache=None, batch_max=1, batch_window_s=0.0,
                        worker=worker).start()
    replies: list[dict] = []
    slow: dict = {}

    def slow_client():
        body = json.dumps({"spec": {**SPEC, "seed": 9}}).encode()
        head = (f"POST /v1/run HTTP/1.1\r\nHost: chaos\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        try:
            with socket.create_connection(("127.0.0.1", srv.port),
                                          timeout=10) as sock:
                sock.sendall(head + body[: len(body) // 2])
                time.sleep(0.4)  # ... while the server starts draining
                sock.sendall(body[len(body) // 2:])
                sock.settimeout(10)
                slow["outcome"] = "response" if sock.recv(
                    65536) else "closed"
        except OSError as exc:
            slow["outcome"] = f"refused ({type(exc).__name__})"

    t_inflight = _submit_async(srv.port, {**SPEC, "seed": 1}, replies)
    if not worker.started.wait(timeout=10):
        srv.shutdown(timeout=60)
        return [Finding("chaos", "slow-client-drain", "harness-error",
                        "gated worker never started")]
    t_slow = threading.Thread(target=slow_client, daemon=True)
    t_slow.start()
    time.sleep(0.1)  # let the slow client get its half-request in
    threading.Timer(0.3, worker.release.set).start()
    srv.shutdown(timeout=60)  # must complete despite the stalled client
    t_inflight.join(timeout=30)
    t_slow.join(timeout=30)
    if t_slow.is_alive() or "outcome" not in slow:
        findings.append(Finding(
            "chaos", "slow-client-drain", "client-hung",
            "slow client neither answered nor refused within 30s"))
    if not replies or replies[0].get("status") != P.STATUS_EXECUTED:
        findings.append(Finding(
            "chaos", "slow-client-drain", "inflight-abandoned",
            f"in-flight job finished as "
            f"{replies[0].get('status') if replies else None!r}"))
    elif _canonical(replies[0]["result"]) != _canonical(payload):
        findings.append(Finding(
            "chaos", "slow-client-drain", "wrong-bytes",
            "drained job's result differs from the direct run"))
    return findings


class _ArmedGate:
    """Engine worker for the gateway scenario: serves canned payloads
    per mode, and blocks the next call after every :meth:`arm` until
    ``release`` fires (so a fault can land while a spec executes)."""

    def __init__(self, payloads: dict):
        self.payloads = payloads
        self.release = threading.Event()
        self.started = threading.Event()
        self._lock = threading.Lock()
        self._armed = 0

    def arm(self) -> None:
        with self._lock:
            self._armed += 1
        self.release.clear()
        self.started.clear()

    def __call__(self, spec, cache=None):
        blocked = False
        with self._lock:
            if self._armed:
                self._armed -= 1
                blocked = True
        if blocked:
            self.started.set()
            self.release.wait(timeout=30)
        return dict(self.payloads[spec.mode])


def _scenario_gateway_worker_kill(rng: random.Random) -> list[Finding]:
    import pathlib

    from repro import RunConfig, run_workload
    from repro.engine import result_to_dict
    from repro.service import Client, GatewayThread
    from repro.service.gateway import _GatewayServiceThread

    findings: list[Finding] = []
    payloads = {
        mode: result_to_dict(run_workload(RunConfig(**{**SPEC,
                                                       "mode": mode})))
        for mode in ("dyser", "scalar")
    }
    expected = sorted(_canonical(p) for p in payloads.values())
    sweep = {"workloads": [SPEC["workload"]],
             "modes": ["dyser", "scalar"],
             "base": {"scale": SPEC["scale"]}}
    gate = _ArmedGate(payloads)

    def job_bytes(status) -> list[str]:
        return sorted(_canonical(r["result"]) for r in status.results)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        journal = pathlib.Path(tmp) / "journal.jsonl"
        fleet = GatewayThread(
            n_workers=2,
            worker_kwargs={"cache": None, "batch_max": 1,
                           "batch_window_s": 0.0, "worker": gate},
            cache=None, journal=journal, health_interval_s=0.2)
        with fleet:
            client = Client(port=fleet.port, retries=0, timeout=60)
            probes = [Client(port=w.port, retries=0, timeout=10)
                      for w in fleet.workers]

            # -- phase 1: lose the executing worker mid-job ------------
            gate.arm()
            handle = client.submit(sweep=sweep)
            if not gate.started.wait(timeout=10):
                return [Finding("chaos", "gateway-worker-kill",
                                "harness-error",
                                "armed gate never blocked a spec")]

            def busy() -> list[int]:
                out = []
                for i, probe in enumerate(probes):
                    try:
                        if probe.health().get("inflight", 0) > 0:
                            out.append(i)
                    except Exception:  # noqa: BLE001 — dead worker
                        pass
                return out

            if not _poll(lambda: len(busy()) == 1):
                return [Finding("chaos", "gateway-worker-kill",
                                "harness-error",
                                f"expected one busy worker, saw "
                                f"{busy()}")]
            victim = busy()[0]
            fleet.kill_worker(victim)
            gate.release.set()
            final = client.wait(handle, timeout=60, results=True)
            if not final.succeeded:
                findings.append(Finding(
                    "chaos", "gateway-worker-kill", "job-lost",
                    f"job after worker kill finished "
                    f"{final.state!r}: {final.error!r}"))
            elif job_bytes(final) != expected:
                findings.append(Finding(
                    "chaos", "gateway-worker-kill", "wrong-bytes",
                    "re-dispatched sweep differs from direct runs"))
            if not _poll(lambda: client.health().get("ring_size") == 1):
                findings.append(Finding(
                    "chaos", "gateway-worker-kill", "no-eviction",
                    f"dead worker never left the ring "
                    f"(ring_size="
                    f"{client.health().get('ring_size')!r})"))

            # -- phase 2: crash the gateway mid-job, replay journal ----
            gate.arm()
            handle2 = client.submit(sweep=sweep)
            if not gate.started.wait(timeout=10):
                return findings + [Finding(
                    "chaos", "gateway-worker-kill", "harness-error",
                    "armed gate never blocked the second job")]
            fleet.gateway.kill()
            client.close()
            gate.release.set()
            reborn = _GatewayServiceThread(
                workers=fleet.worker_addrs(), cache=None,
                journal=journal, health_interval_s=0.2)
            reborn.start()
            try:
                client2 = Client(port=reborn.port, retries=0,
                                 timeout=60)
                final2 = client2.wait(handle2.id, timeout=60,
                                      results=True)
                if not final2.succeeded:
                    findings.append(Finding(
                        "chaos", "gateway-worker-kill",
                        "journal-replay-lost",
                        f"replayed job finished {final2.state!r}: "
                        f"{final2.error!r}"))
                elif job_bytes(final2) != expected:
                    findings.append(Finding(
                        "chaos", "gateway-worker-kill",
                        "journal-replay-wrong-bytes",
                        "replayed job differs from direct runs"))
                client2.close()
            finally:
                reborn.shutdown(timeout=60)
            for probe in probes:
                probe.close()
            # fleet.__exit__ shuts the (already dead) gateway + workers
            fleet.gateway = None
    return findings


_SCENARIOS = {
    "worker-crash": _scenario_worker_crash,
    "queue-overflow": _scenario_queue_overflow,
    "cache-corruption": _scenario_cache_corruption,
    "slow-client-drain": _scenario_slow_client_drain,
    "gateway-worker-kill": _scenario_gateway_worker_kill,
}


def chaos_scenario_names() -> tuple[str, ...]:
    return tuple(sorted(_SCENARIOS))


def run_chaos(seed: int = 0,
              scenarios: tuple[str, ...] | None = None) -> list[Finding]:
    """Run the chaos scenarios; violations come back as findings.

    A scenario that *itself* blows up is reported as a
    ``harness-error`` finding rather than aborting the fuzz run — the
    chaos oracle failing open would hide exactly the bugs it hunts.
    """
    rng = random.Random(seed ^ 0xC11A05)
    findings: list[Finding] = []
    for name in (scenarios or chaos_scenario_names()):
        if name not in _SCENARIOS:
            raise ValueError(f"unknown chaos scenario {name!r} "
                             f"(have: {', '.join(chaos_scenario_names())})")
        try:
            findings.extend(_SCENARIOS[name](rng))
        except Exception as exc:  # noqa: BLE001 — must not fail open
            findings.append(Finding(
                "chaos", name, "harness-error",
                stable_error_string(exc)))
    return findings
