"""Differential fuzzing and chaos harness (``repro fuzz``).

The subsystem has four parts, mirroring the paper's evaluation flow:

- :mod:`repro.harness.fuzz.generator` — a seeded, deterministic random
  program generator that speaks the DySER access/execute interface
  contract: legal DFGs, port-width-respecting transfers, config loads,
  and (with rising *irregularity*) adversarial shapes — curtailed
  control flow around invocation groups, wide vector transfers,
  multi-port sends, deliberately ill-formed configurations.
- :mod:`repro.harness.fuzz.oracles` — differential oracles per case:
  fast-vs-reference parity, batched-lockstep-vs-solo parity,
  lint-vs-crash agreement, and IR-verifier stability across compiler
  passes.
- :mod:`repro.harness.fuzz.chaos` — fault injection for the service
  layer: worker crashes mid-batch, queue overflow, artifact-cache
  corruption, slow clients during drain.  The daemon must never serve
  wrong bytes and must always recover or fail closed.
- :mod:`repro.harness.fuzz.corpus` — failing cases are shrunk, saved
  under ``tests/corpus/`` and replayed as ordinary tier-1 tests.

Everything is reproducible from the printed ``(seed, index)`` pair
alone; the findings report is byte-identical across runs of the same
seed.
"""

from repro.harness.fuzz.chaos import chaos_scenario_names, run_chaos
from repro.harness.fuzz.corpus import (
    CORPUS_FORMAT,
    default_corpus_dir,
    iter_corpus,
    load_entry,
    replay_entry,
    save_entry,
    shrink_case,
)
from repro.harness.fuzz.driver import (
    ALL_ORACLES,
    FuzzOptions,
    FuzzReport,
    run_fuzz,
)
from repro.harness.fuzz.generator import CaseGenerator, FuzzCase
from repro.harness.fuzz.oracles import (
    Finding,
    MutantBatchCore,
    MutantFastCore,
    batched_oracle,
    dsl_oracle,
    run_case,
)

__all__ = [
    "ALL_ORACLES",
    "CORPUS_FORMAT",
    "CaseGenerator",
    "Finding",
    "FuzzCase",
    "FuzzOptions",
    "FuzzReport",
    "MutantBatchCore",
    "MutantFastCore",
    "batched_oracle",
    "chaos_scenario_names",
    "default_corpus_dir",
    "dsl_oracle",
    "iter_corpus",
    "load_entry",
    "replay_entry",
    "run_case",
    "run_chaos",
    "run_fuzz",
    "save_entry",
    "shrink_case",
]
