"""Seeded, deterministic random-case generator.

Three case kinds, weighted by the tunable *irregularity* bias:

- ``scalar`` — straight-line blocks of host-ISA instructions joined by
  forward-only control flow (always terminates).
- ``dyser``  — host programs that drive generated DySER configurations
  through the access/execute interface: ``dinit``/``dsend``/``drecv``
  plus the vector (``dldv``/``dstv``) and wide (``dldw``/``dstw``)
  transfer forms, arranged in *invocation groups* (exactly ``m`` values
  per input port, then ``m`` per output port) so any interleaving the
  engine sees is legal.  With rising irregularity the generator emits
  curtailed control flow around groups, config switches mid-program,
  and — as ``expect_error`` cases — deliberately ill-formed
  configurations (bad ports, cycles, missing outputs) that the linter
  must predict and the simulator must reject.
- ``kernel`` — source-language kernels (collatz-style integer diamonds
  or fir-style float expressions) for the compiler/IR-verifier oracle.

Determinism contract: ``CaseGenerator(seed, irregularity).generate(i)``
is a pure function of ``(seed, irregularity, i)``.  Every finding can
therefore be reproduced from the printed seed and index alone — no
case payload needs to survive, though the corpus stores one anyway so
shrunk cases outlive generator evolution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.dyser.config import DyserConfig
from repro.dyser.dfg import ConstRef, Dfg, NodeRef, PortRef, Source
from repro.dyser.fabric import Fabric, FabricGeometry
from repro.dyser.ops import FU_OP_INFO, FuOp
from repro.errors import DyserError

#: Scratch memory layout (mirrors tests/test_fastcore.py): integer
#: traffic stays in [BASE, BASE+120], float traffic in
#: [BASE+128, BASE+248], so a load never sees a cross-typed word.
_BASE = 4096
_SLOTS = 16

#: All generated configurations target one fabric shape; 4x4 with two
#: ports per edge switch exposes 18 input ports, far above the widest
#: generated DFG, so in-range port numbering is easy to guarantee.
GEOMETRY = (4, 4)


def default_fabric() -> Fabric:
    return Fabric(FabricGeometry(*GEOMETRY))


# ---------------------------------------------------------------------
# Host-ISA instruction tables (filler code around invocation groups)
# ---------------------------------------------------------------------

_INT3 = ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
         "sll", "srl", "sra", "slt", "seq", "min", "max")
_INTI = ("addi", "muli", "andi", "ori", "xori", "slti")
_SHIFTI = ("slli", "srli", "srai")
_FP3 = ("fadd", "fsub", "fmul", "fmin", "fmax")
_FPCMP = ("flt", "fle", "feq")
_FP1 = ("fneg", "fabs")

#: DFG op pools per value domain.  FDIV/FSQRT/F2I are excluded: they
#: can manufacture NaN/inf/overflow on conversion, which is a property
#: of the generated *values*, not a backend divergence.
_DFG_INT = (FuOp.ADD, FuOp.SUB, FuOp.MUL, FuOp.AND, FuOp.OR, FuOp.XOR,
            FuOp.SLL, FuOp.SRL, FuOp.MIN, FuOp.MAX, FuOp.SLT, FuOp.SEQ,
            FuOp.SEL)
_DFG_FP = (FuOp.FADD, FuOp.FSUB, FuOp.FMUL, FuOp.FMIN, FuOp.FMAX,
           FuOp.FNEG, FuOp.FABS, FuOp.FSEL)

CASE_KINDS = ("scalar", "dyser", "kernel")

#: Deliberate configuration breakages (``expect_error`` cases) and the
#: diagnostic each must trip.
MUTATIONS = ("bad_port", "no_outputs", "undef_node", "cycle")


def case_rng(seed: int, index: int) -> random.Random:
    """The per-case RNG: integer mixing keeps neighbouring indices
    decorrelated without any global stream to advance (cases are
    independently regenerable)."""
    mixed = (seed * 0x9E3779B97F4A7C15
             + (index + 1) * 0xBF58476D1CE4E5B9) & ((1 << 63) - 1)
    return random.Random(mixed)


# ---------------------------------------------------------------------
# Case payload
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzCase:
    """One generated case, self-contained and JSON-serializable.

    ``configs`` holds fuzz-local config payloads (id-ordered node
    lists — *not* topologically sorted, so deliberately cyclic DFGs
    survive serialization, unlike :mod:`repro.dyser.serialize`).
    """

    kind: str
    seed: int
    index: int
    irregularity: float
    source: str
    configs: tuple = ()
    expect_error: bool = False
    label: str = ""

    @property
    def key(self) -> str:
        return f"s{self.seed}-i{self.index}"

    def describe(self) -> str:
        tag = " expect-error" if self.expect_error else ""
        return (f"{self.kind} case {self.key} ({self.label or 'plain'}"
                f"{tag}, irregularity={self.irregularity})")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "index": self.index,
            "irregularity": self.irregularity,
            "source": self.source,
            "configs": [dict(c) for c in self.configs],
            "expect_error": self.expect_error,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            kind=data["kind"],
            seed=int(data["seed"]),
            index=int(data["index"]),
            irregularity=float(data["irregularity"]),
            source=data["source"],
            configs=tuple(data.get("configs", ())),
            expect_error=bool(data.get("expect_error", False)),
            label=data.get("label", ""),
        )

    def with_source(self, source: str) -> "FuzzCase":
        return replace(self, source=source)

    def with_configs(self, configs: tuple) -> "FuzzCase":
        return replace(self, configs=configs)


# ---------------------------------------------------------------------
# Config payloads (fuzz-local serialization, id-ordered)
# ---------------------------------------------------------------------

def _src_obj(src: Source) -> dict:
    if isinstance(src, PortRef):
        return {"kind": "port", "port": src.port}
    if isinstance(src, NodeRef):
        return {"kind": "node", "node": src.node}
    return {"kind": "const", "value": src.value}


def _src_from(obj: dict) -> Source:
    kind = obj.get("kind")
    if kind == "port":
        return PortRef(obj["port"])
    if kind == "node":
        return NodeRef(obj["node"])
    if kind == "const":
        return ConstRef(obj["value"])
    raise DyserError(f"bad source kind {kind!r}")


def config_payload(config_id: int, dfg: Dfg, domain: str) -> dict:
    """Serialize in node-id order (topo order would choke on the
    deliberately cyclic mutation)."""
    return {
        "config_id": config_id,
        "name": dfg.name,
        "domain": domain,
        "nodes": [
            {"id": nid, "op": dfg.nodes[nid].op.value,
             "inputs": [_src_obj(s) for s in dfg.nodes[nid].inputs]}
            for nid in sorted(dfg.nodes)
        ],
        "outputs": {str(p): _src_obj(dfg.outputs[p])
                    for p in sorted(dfg.outputs)},
    }


def payload_to_dfg(payload: dict) -> Dfg:
    dfg = Dfg(payload.get("name", "fuzz"))
    for node in payload["nodes"]:
        dfg.add_node(FuOp(node["op"]),
                     [_src_from(s) for s in node["inputs"]],
                     node_id=node["id"])
    for port, src in payload["outputs"].items():
        dfg.set_output(int(port), _src_from(src))
    return dfg


def payload_to_config(payload: dict, fabric: Fabric | None = None
                      ) -> DyserConfig:
    """Rebuild an (unvalidated) configuration — broken payloads must
    reach the simulator and the linter as-is."""
    return DyserConfig(payload["config_id"], payload_to_dfg(payload),
                       fabric or default_fabric())


# ---------------------------------------------------------------------
# Scalar programs
# ---------------------------------------------------------------------

def _fval(rng: random.Random) -> str:
    return repr(round(rng.uniform(-1e6, 1e6), 6))


def _insn(rng: random.Random) -> str:
    kind = rng.choice(
        ("int3", "int3", "inti", "shifti", "li", "mov", "sel",
         "fp3", "fpcmp", "fp1", "fli", "i2f",
         "ld", "st", "fld", "fst"))
    rd, r1, r2, r3 = (rng.randint(1, 7) for _ in range(4))
    imm = rng.randint(-64, 64)
    slot = rng.randrange(_SLOTS)
    if kind == "int3":
        return f"{rng.choice(_INT3)} r{rd}, r{r1}, r{r2}"
    if kind == "inti":
        return f"{rng.choice(_INTI)} r{rd}, r{r1}, {imm}"
    if kind == "shifti":
        return f"{rng.choice(_SHIFTI)} r{rd}, r{r1}, {rng.randrange(64)}"
    if kind == "li":
        return f"li r{rd}, {imm}"
    if kind == "mov":
        return f"mov r{rd}, r{r1}"
    if kind == "sel":
        return f"sel r{rd}, r{r1}, r{r2}, r{r3}"
    if kind == "fp3":
        return f"{rng.choice(_FP3)} f{rd}, f{r1}, f{r2}"
    if kind == "fpcmp":
        return f"{rng.choice(_FPCMP)} r{rd}, f{r1}, f{r2}"
    if kind == "fp1":
        return f"{rng.choice(_FP1)} f{rd}, f{r1}"
    if kind == "fli":
        return f"fli f{rd}, {_fval(rng)}"
    if kind == "i2f":
        return f"i2f f{rd}, r{r1}"
    if kind == "ld":
        return f"ld r{rd}, r8, {8 * slot}"
    if kind == "st":
        return f"st r{r1}, r8, {8 * slot}"
    if kind == "fld":
        return f"fld f{rd}, r8, {128 + 8 * slot}"
    return f"fst f{r1}, r8, {128 + 8 * slot}"


def _preamble(rng: random.Random) -> list[str]:
    lines = [f"li r8, {_BASE}"]
    for reg in range(1, 8):
        lines.append(f"li r{reg}, {rng.randint(-64, 64)}")
        lines.append(f"fli f{reg}, {_fval(rng)}")
    return lines


def _forward_branch(rng: random.Random, block: int, n_blocks: int
                    ) -> list[str]:
    """Maybe emit a branch/jump to a *later* block (guarantees
    termination)."""
    if block + 1 >= n_blocks:
        return []
    op = rng.choice(("beq", "bne", "blt", "bge", "ble", "bgt", "j", "",
                     ""))
    if not op:
        return []
    target = rng.randint(block + 1, n_blocks - 1)
    if op == "j":
        return [f"j L{target}"]
    return [f"{op} r{rng.randint(1, 7)}, r{rng.randint(1, 7)}, L{target}"]


def _gen_scalar(rng: random.Random, seed: int, index: int,
                irregularity: float) -> FuzzCase:
    n_blocks = rng.randint(1, 2 + round(4 * irregularity))
    lines = _preamble(rng)
    for block in range(n_blocks):
        lines.append(f"L{block}:")
        for _ in range(rng.randint(1, 6)):
            lines.append(_insn(rng))
        lines.extend(_forward_branch(rng, block, n_blocks))
    lines.append("halt")
    return FuzzCase(kind="scalar", seed=seed, index=index,
                    irregularity=irregularity,
                    source="\n".join(lines),
                    label=f"{n_blocks}-block")


# ---------------------------------------------------------------------
# DySER DFGs and configurations
# ---------------------------------------------------------------------

def _gen_dfg(rng: random.Random, name: str, domain: str,
             n_in: int, n_nodes: int) -> Dfg:
    """A legal DFG: every input port is consumed, every node reachable
    enough to matter, outputs contiguous from port 0."""
    ops = _DFG_FP if domain == "fp" else _DFG_INT
    dfg = Dfg(name)
    ids: list[int] = []
    for i in range(n_nodes):
        op = rng.choice(ops)
        arity = FU_OP_INFO[op].arity
        inputs: list[Source] = []
        for j in range(arity):
            if i < n_in and j == 0:
                inputs.append(PortRef(i))  # every port gets a consumer
                continue
            pick = rng.random()
            if ids and pick < 0.45:
                inputs.append(NodeRef(rng.choice(ids)))
            elif pick < 0.85:
                inputs.append(PortRef(rng.randrange(n_in)))
            elif domain == "fp":
                inputs.append(ConstRef(round(rng.uniform(-8.0, 8.0), 3)))
            else:
                inputs.append(ConstRef(rng.randint(-64, 64)))
        ids.append(dfg.add_node(op, inputs).node)
    dfg.set_output(0, NodeRef(ids[-1]))
    if len(ids) > 1 and rng.random() < 0.5:
        dfg.set_output(1, NodeRef(rng.choice(ids[:-1])))
    return dfg


def _mutate_payload(rng: random.Random, payload: dict, mutation: str
                    ) -> dict:
    """Apply one deliberate breakage to a legal config payload."""
    broken = {**payload, "nodes": [dict(n) for n in payload["nodes"]],
              "outputs": dict(payload["outputs"])}
    nodes = broken["nodes"]
    victim = rng.choice(nodes)
    if mutation == "bad_port":
        n_ports = FabricGeometry(*GEOMETRY).num_input_ports
        victim["inputs"] = [dict(s) for s in victim["inputs"]]
        victim["inputs"][0] = {"kind": "port", "port": n_ports + 3}
    elif mutation == "no_outputs":
        broken["outputs"] = {}
    elif mutation == "undef_node":
        victim["inputs"] = [dict(s) for s in victim["inputs"]]
        victim["inputs"][-1] = {"kind": "node", "node": 999}
    elif mutation == "cycle":
        # Route the first node's last input to the last node: with
        # >= 2 nodes and the last consuming anything earlier this
        # closes a cycle; force the dependency to make sure.
        first, last = nodes[0], nodes[-1]
        first["inputs"] = [dict(s) for s in first["inputs"]]
        first["inputs"][-1] = {"kind": "node", "node": last["id"]}
        last["inputs"] = [dict(s) for s in last["inputs"]]
        last["inputs"][-1] = {"kind": "node", "node": first["id"]}
    return broken


def _scratch_off(rng: random.Random, domain: str, words: int) -> int:
    """An 8-aligned offset whose ``words``-long window stays inside the
    domain's scratch region."""
    slot = rng.randint(0, _SLOTS - words)
    return (128 if domain == "fp" else 0) + 8 * slot


def _emit_group(rng: random.Random, lines: list[str], cfg: dict,
                m: int, irregularity: float) -> None:
    """One invocation group: dinit, exactly ``m`` values into every
    input port, exactly ``m`` out of every output port.  Atomic within
    a basic block, so curtailed control flow can only skip whole
    groups."""
    d = "f" if cfg["domain"] == "fp" else ""
    dom = cfg["domain"]
    in_ports, out_ports = cfg["in_ports"], cfg["out_ports"]
    lines.append(f"dinit {cfg['config_id']}")
    wide_in = (in_ports == list(range(len(in_ports)))
               and len(in_ports) >= 2
               and rng.random() < 0.25 + 0.5 * irregularity)
    if wide_in:
        k = len(in_ports)
        for _ in range(m):
            off = _scratch_off(rng, dom, k)
            lines.append(f"addi r9, r8, {off}")
            lines.append(f"d{d}ldw p0, r9, {k}")
    else:
        for port in sorted(in_ports, key=lambda _: rng.random()):
            style = rng.random()
            if style < 0.3 + 0.3 * irregularity and m > 1:
                off = _scratch_off(rng, dom, m)
                lines.append(f"addi r9, r8, {off}")
                lines.append(f"d{d}ldv p{port}, r9, {m}")
            else:
                for _ in range(m):
                    if rng.random() < 0.5:
                        reg = ("f" if d else "r") + str(rng.randint(1, 7))
                        lines.append(f"d{d}send p{port}, {reg}")
                    else:
                        off = _scratch_off(rng, dom, 1)
                        lines.append(f"d{d}ld p{port}, r8, {off}")
    wide_out = (out_ports == list(range(len(out_ports)))
                and len(out_ports) >= 2
                and rng.random() < 0.25 + 0.5 * irregularity)
    if wide_out:
        k = len(out_ports)
        for _ in range(m):
            off = _scratch_off(rng, dom, k)
            lines.append(f"addi r9, r8, {off}")
            lines.append(f"d{d}stw p0, r9, {k}")
    else:
        for port in sorted(out_ports, key=lambda _: rng.random()):
            style = rng.random()
            if style < 0.3 + 0.3 * irregularity and m > 1:
                off = _scratch_off(rng, dom, m)
                lines.append(f"addi r9, r8, {off}")
                lines.append(f"d{d}stv p{port}, r9, {m}")
            else:
                for _ in range(m):
                    if rng.random() < 0.5:
                        reg = ("f" if d else "r") + str(rng.randint(1, 6))
                        lines.append(f"d{d}recv {reg}, p{port}")
                    else:
                        off = _scratch_off(rng, dom, 1)
                        lines.append(f"d{d}st p{port}, r8, {off}")


def _gen_dyser(rng: random.Random, seed: int, index: int,
               irregularity: float) -> FuzzCase:
    n_configs = 1 + (rng.random() < 0.25 + 0.5 * irregularity)
    cfgs, payloads = [], []
    for cid in range(n_configs):
        domain = rng.choice(("int", "fp"))
        n_in = rng.randint(1, 4)
        dfg = _gen_dfg(rng, f"fz{index}c{cid}", domain, n_in,
                       rng.randint(n_in, n_in + 4))
        payloads.append(config_payload(cid, dfg, domain))
        cfgs.append({"config_id": cid, "domain": domain,
                     "in_ports": dfg.input_ports,
                     "out_ports": dfg.output_ports})
    mutation = ""
    if rng.random() < 0.18 * (0.5 + irregularity):
        mutation = rng.choice(MUTATIONS)
        broken = rng.randrange(n_configs)
        payloads[broken] = _mutate_payload(rng, payloads[broken],
                                           mutation)
    n_blocks = rng.randint(1, 2 + round(3 * irregularity))
    lines = _preamble(rng)
    for block in range(n_blocks):
        lines.append(f"L{block}:")
        for _ in range(rng.randint(0, 3)):
            lines.append(_insn(rng))
        if rng.random() < 0.85 or n_blocks == 1:
            _emit_group(rng, lines, rng.choice(cfgs),
                        rng.randint(1, 3), irregularity)
        if rng.random() < 0.3 + 0.5 * irregularity:
            lines.extend(_forward_branch(rng, block, n_blocks))
    lines.append("halt")
    return FuzzCase(kind="dyser", seed=seed, index=index,
                    irregularity=irregularity,
                    source="\n".join(lines),
                    configs=tuple(payloads),
                    expect_error=bool(mutation),
                    label=(f"dyser/{mutation}" if mutation
                           else f"{n_configs}-config/{n_blocks}-block"))


# ---------------------------------------------------------------------
# Source-language kernels
# ---------------------------------------------------------------------

def _int_expr(rng: random.Random, depth: int = 0) -> str:
    if depth >= 2 or rng.random() < 0.4:
        return rng.choice(("v", "v", str(rng.randint(1, 7))))
    op = rng.choice(("+", "-", "*", "&", ">>"))
    lhs = _int_expr(rng, depth + 1)
    rhs = (str(rng.randint(1, 3)) if op == ">>"
           else _int_expr(rng, depth + 1))
    return f"({lhs} {op} {rhs})"


def _fp_expr(rng: random.Random, depth: int = 0) -> str:
    if depth >= 3 or rng.random() < 0.35:
        return rng.choice(("a[i]", "b[i]",
                           repr(round(rng.uniform(-4.0, 4.0), 3))))
    op = rng.choice(("+", "-", "*"))
    return (f"({_fp_expr(rng, depth + 1)} {op} "
            f"{_fp_expr(rng, depth + 1)})")


def _gen_kernel(rng: random.Random, seed: int, index: int,
                irregularity: float) -> FuzzCase:
    if rng.random() < 0.4 + 0.4 * irregularity:
        # collatz-style integer diamonds (control-flow heavy).
        stmts = []
        for _ in range(rng.randint(1, 2 + round(3 * irregularity))):
            if rng.random() < 0.45 + 0.35 * irregularity:
                mask = rng.choice((1, 2, 3))
                stmts.append(f"if (v & {mask}) "
                             f"{{ v = {_int_expr(rng)}; }} else "
                             f"{{ v = {_int_expr(rng)}; }}")
            else:
                stmts.append(f"v = {_int_expr(rng)};")
        body = "\n        ".join(stmts)
        source = (f"kernel fz{index}(out int y[], int x[], int n) {{\n"
                  f"    for (int i = 0; i < n; i = i + 1) {{\n"
                  f"        int v = x[i];\n"
                  f"        {body}\n"
                  f"        y[i] = v;\n"
                  f"    }}\n}}\n")
        label = "int-diamonds"
    else:
        source = (f"kernel fz{index}(out float c[], float a[], "
                  f"float b[], int n) {{\n"
                  f"    for (int i = 0; i < n; i = i + 1) {{\n"
                  f"        c[i] = {_fp_expr(rng)};\n"
                  f"    }}\n}}\n")
        label = "fp-expr"
    return FuzzCase(kind="kernel", seed=seed, index=index,
                    irregularity=irregularity, source=source,
                    label=label)


# ---------------------------------------------------------------------
# The generator proper
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class CaseGenerator:
    """Pure, replayable case factory.

    ``generate(i)`` depends only on ``(seed, irregularity, i)`` — two
    generators with equal parameters produce byte-identical cases in
    any order.
    """

    seed: int = 0
    irregularity: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.irregularity <= 1.0:
            raise ValueError("irregularity must be in [0, 1]")

    def generate(self, index: int) -> FuzzCase:
        rng = case_rng(self.seed, index)
        roll = rng.random()
        if roll < 0.3:
            return _gen_scalar(rng, self.seed, index, self.irregularity)
        if roll < 0.78:
            return _gen_dyser(rng, self.seed, index, self.irregularity)
        return _gen_kernel(rng, self.seed, index, self.irregularity)

    def cases(self, count: int, start: int = 0):
        for index in range(start, start + count):
            yield self.generate(index)
