"""Replayable corpus: shrink findings, save them, replay them.

Every finding a fuzz run produces is first *shrunk* — greedy removal
of source lines, whole configurations, and DFG nodes, re-checking the
oracle after each candidate removal — then serialized as one JSON file
under ``tests/corpus/`` (format ``repro-fuzz-case-v1``).  The test
suite replays every entry as an ordinary tier-1 test, so a bug found
by last month's fuzz run keeps failing loudly until it is fixed, and
keeps passing forever after.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ReproError, WorkloadError
from repro.harness.fuzz.generator import FuzzCase
from repro.harness.fuzz.oracles import Finding, check_case
from repro.isa import assemble

CORPUS_FORMAT = "repro-fuzz-case-v1"

#: Oracles whose findings are case-shaped and therefore replayable.
REPLAYABLE_ORACLES = ("parity", "batched", "lint", "ir", "dsl")


def default_corpus_dir() -> pathlib.Path:
    return pathlib.Path("tests") / "corpus"


def save_entry(case: FuzzCase, finding: Finding,
               corpus_dir) -> pathlib.Path:
    """Write one corpus entry; the filename encodes oracle and seed so
    entries from different runs never collide."""
    corpus_dir = pathlib.Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"{finding.oracle}-{case.key}.json"
    data = {
        "format": CORPUS_FORMAT,
        "case": case.to_dict(),
        "finding": finding.to_dict(),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path) -> tuple[FuzzCase, Finding]:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("format") != CORPUS_FORMAT:
        raise WorkloadError(
            f"{path}: not a {CORPUS_FORMAT} corpus entry "
            f"(format={data.get('format')!r})")
    return (FuzzCase.from_dict(data["case"]),
            Finding.from_dict(data["finding"]))


def iter_corpus(corpus_dir) -> list[pathlib.Path]:
    corpus_dir = pathlib.Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return sorted(corpus_dir.glob("*.json"))


def replay_entry(path, candidate_cls: type | None = None
                 ) -> Finding | None:
    """Re-run a corpus entry's recorded oracle against today's code.

    Returns ``None`` when the oracle no longer fires (the bug stayed
    fixed) and the fresh :class:`Finding` when it still does.
    ``candidate_cls`` swaps the parity candidate — the self-check
    replays entries against the planted mutant to prove they bite.
    """
    case, finding = load_entry(path)
    if finding.oracle not in REPLAYABLE_ORACLES:
        raise WorkloadError(
            f"{path}: oracle {finding.oracle!r} is not replayable")
    return check_case(case, finding.oracle, candidate_cls)


# ---------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------

def _assembles(case: FuzzCase) -> bool:
    if case.kind == "dsl":
        # DSL sources need not stay parseable under shrinking — an
        # unparseable source is a legitimate oracle input (that is
        # what the RPR500/501 findings are about); ``_still_fails``
        # alone decides whether a removal preserved the finding.
        return True
    try:
        assemble(case.source, name="shrink-probe")
    except ReproError:
        return False
    return True


def _still_fails(check, case: FuzzCase) -> bool:
    """A candidate removal survives only if the oracle still fires.

    Any exception from the oracle itself (unassemblable source after a
    removal, a dangling config reference the simulator rejects in a
    *different* way, ...) rejects the candidate — shrinking must only
    ever preserve the finding, never mutate it into a new one."""
    try:
        return check(case) is not None
    except Exception:  # noqa: BLE001 — reject, don't abort the shrink
        return False


def _shrink_lines(case: FuzzCase, check) -> FuzzCase:
    lines = case.source.splitlines()
    index = len(lines) - 1
    while index >= 0:
        stripped = lines[index].strip()
        if stripped == "halt" or stripped.endswith(":"):
            index -= 1
            continue
        trial_lines = lines[:index] + lines[index + 1:]
        trial = case.with_source("\n".join(trial_lines))
        if _assembles(trial) and _still_fails(check, trial):
            case, lines = trial, trial_lines
        index -= 1
    return case


def _shrink_configs(case: FuzzCase, check) -> FuzzCase:
    # Whole configurations first (the big win), then single DFG nodes.
    index = len(case.configs) - 1
    while index >= 0 and len(case.configs) > 1:
        trial = case.with_configs(
            case.configs[:index] + case.configs[index + 1:])
        if _still_fails(check, trial):
            case = trial
        index -= 1
    for ci in range(len(case.configs)):
        ni = len(case.configs[ci]["nodes"]) - 1
        while ni >= 0 and len(case.configs[ci]["nodes"]) > 1:
            payload = case.configs[ci]
            trial_payload = {
                **payload,
                "nodes": payload["nodes"][:ni] + payload["nodes"][ni + 1:],
            }
            trial = case.with_configs(
                case.configs[:ci] + (trial_payload,)
                + case.configs[ci + 1:])
            if _still_fails(check, trial):
                case = trial
            ni -= 1
    return case


def shrink_case(case: FuzzCase, check, max_rounds: int = 4) -> FuzzCase:
    """Greedy minimization to a locally-1-minimal failing case.

    ``check(case) -> Finding | None`` is the oracle under which the
    original case failed.  Rounds alternate line removal and
    config/node removal until a fixpoint (or ``max_rounds``); the
    result is guaranteed to still fail ``check``.
    """
    if not _still_fails(check, case):
        return case  # not reproducible under this check; keep as-is
    for _ in range(max_rounds):
        before = case
        case = _shrink_lines(case, check)
        case = _shrink_configs(case, check)
        if case == before:
            break
    return case
