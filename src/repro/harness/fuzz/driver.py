"""The fuzz driver: generate, check, shrink, save, report.

One :func:`run_fuzz` call is a complete campaign: a deterministic case
stream from :class:`CaseGenerator`, the per-case differential oracles,
the chaos scenarios, shrinking of every finding, corpus persistence
and a JSON report.  The report is **byte-reproducible**: for the same
options (and unexhausted time budget) two runs produce identical
``to_dict()`` output — no wall-clock, no host state, no iteration-
order dependence.  That property is itself pinned by a test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.harness.fuzz import corpus as corpus_mod
from repro.harness.fuzz.chaos import run_chaos
from repro.harness.fuzz.generator import CASE_KINDS, CaseGenerator
from repro.harness.fuzz.oracles import Finding, check_case
from repro.obs import MetricsRegistry, maybe_span

ALL_ORACLES = ("parity", "batched", "lint", "ir", "perfbound", "chaos",
               "dsl")
REPORT_FORMAT = "repro-fuzz-report-v1"

#: Which case kinds each per-case oracle applies to.  The ``dsl``
#: oracle is absent: its cases come from the dedicated
#: ``generate_dsl`` stream (a post-loop block, like chaos) so the main
#: case stream stays byte-identical across versions.
_ORACLE_KINDS = {
    "parity": ("scalar", "dyser"),
    "batched": ("scalar", "dyser"),
    "lint": ("dyser",),
    "ir": ("kernel",),
    "perfbound": ("scalar", "dyser"),
}

#: Oracles that accept a planted-mutant candidate class.
_CANDIDATE_ORACLES = ("parity", "batched")


@dataclass(frozen=True)
class FuzzOptions:
    """Knobs of one fuzz campaign (CLI flags map 1:1)."""

    seed: int = 0
    cases: int = 100
    time_budget_s: float | None = None
    oracles: tuple = ALL_ORACLES
    irregularity: float = 0.35
    shrink: bool = True
    #: Directory to persist shrunk findings into (None: don't persist).
    corpus_dir: str | None = None
    #: Candidate override for the parity/batched oracles — the
    #: self-check plants ``MutantFastCore`` / ``MutantBatchCore`` here.
    candidate_cls: type | None = None
    chaos_scenarios: tuple | None = None

    def __post_init__(self) -> None:
        bad = [o for o in self.oracles if o not in ALL_ORACLES]
        if bad:
            raise ValueError(
                f"unknown oracles {bad} (have: {', '.join(ALL_ORACLES)})")
        if not 0.0 <= self.irregularity <= 1.0:
            raise ValueError("irregularity must be in [0, 1]")
        if self.cases < 0:
            raise ValueError("cases must be >= 0")


@dataclass
class FuzzReport:
    """Outcome of one campaign, JSON-ready and reproducible."""

    seed: int
    requested_cases: int
    cases_run: int
    oracles: tuple
    irregularity: float
    kinds: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)
    corpus_entries: list = field(default_factory=list)
    truncated: bool = False
    #: Campaign counters (not serialized — values ride in the report).
    metrics: MetricsRegistry | None = field(default=None, repr=False,
                                            compare=False)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "seed": self.seed,
            "requested_cases": self.requested_cases,
            "cases_run": self.cases_run,
            "oracles": list(self.oracles),
            "irregularity": self.irregularity,
            "kinds": {k: self.kinds.get(k, 0) for k in CASE_KINDS},
            "findings": [f.to_dict() for f in self.findings],
            "corpus_entries": list(self.corpus_entries),
            "truncated": self.truncated,
        }

    def summary(self) -> str:
        mix = ", ".join(f"{self.kinds.get(k, 0)} {k}"
                        for k in CASE_KINDS)
        head = (f"fuzz seed={self.seed}: {self.cases_run}/"
                f"{self.requested_cases} cases ({mix}), "
                f"{len(self.findings)} findings")
        if self.truncated:
            head += " [time budget hit]"
        if self.ok:
            return head
        body = "\n".join("  " + f.describe() for f in self.findings)
        return f"{head}\n{body}"


def _record_finding(case, finding, oracle, candidate, options, report,
                    metrics, events) -> None:
    """Shrink, persist, and report one finding (shared by the main
    case loop and the dsl block)."""
    metrics.counter("fuzz.findings").inc()
    metrics.counter(f"fuzz.findings.{oracle}").inc()
    saved_case = case
    if options.shrink:
        with maybe_span(events, "fuzz.shrink", "fuzz"):
            saved_case = corpus_mod.shrink_case(
                case, lambda c: check_case(c, oracle, candidate))
        refreshed = check_case(saved_case, oracle, candidate)
        finding = refreshed or finding
        metrics.counter("fuzz.shrunk").inc()
    if options.corpus_dir:
        path = corpus_mod.save_entry(saved_case, finding,
                                     options.corpus_dir)
        report.corpus_entries.append(path.name)
    report.findings.append(finding)


def run_fuzz(options: FuzzOptions | None = None, *,
             metrics: MetricsRegistry | None = None,
             events=None) -> FuzzReport:
    """Run one fuzz campaign.  See the module docstring."""
    options = options or FuzzOptions()
    metrics = metrics or MetricsRegistry()
    generator = CaseGenerator(options.seed, options.irregularity)
    per_case = [o for o in options.oracles if o in _ORACLE_KINDS]
    report = FuzzReport(seed=options.seed,
                        requested_cases=options.cases,
                        cases_run=0,
                        oracles=tuple(options.oracles),
                        irregularity=options.irregularity,
                        metrics=metrics)
    deadline = (time.monotonic() + options.time_budget_s
                if options.time_budget_s else None)
    with maybe_span(events, "fuzz.cases", "fuzz") as span:
        for index in range(options.cases):
            if deadline is not None and time.monotonic() > deadline:
                report.truncated = True
                break
            case = generator.generate(index)
            report.cases_run += 1
            report.kinds[case.kind] = report.kinds.get(case.kind, 0) + 1
            metrics.counter("fuzz.cases").inc()
            metrics.counter(f"fuzz.cases.{case.kind}").inc()
            for oracle in per_case:
                if case.kind not in _ORACLE_KINDS[oracle]:
                    continue
                candidate = (options.candidate_cls
                             if oracle in _CANDIDATE_ORACLES else None)
                finding = check_case(case, oracle, candidate)
                if finding is None:
                    continue
                _record_finding(case, finding, oracle, candidate,
                                options, report, metrics, events)
        span["cases"] = report.cases_run
        span["findings"] = len(report.findings)
    if "dsl" in options.oracles and not report.truncated:
        # The dsl stream is sized off the main campaign (one dsl case
        # per four requested) and shares the time budget.
        n_dsl = max(1, options.cases // 4) if options.cases else 0
        with maybe_span(events, "fuzz.dsl", "fuzz") as span:
            for index in range(n_dsl):
                if deadline is not None and time.monotonic() > deadline:
                    report.truncated = True
                    break
                case = generator.generate_dsl(index)
                report.cases_run += 1
                report.kinds["dsl"] = report.kinds.get("dsl", 0) + 1
                metrics.counter("fuzz.cases").inc()
                metrics.counter("fuzz.cases.dsl").inc()
                finding = check_case(case, "dsl")
                if finding is not None:
                    _record_finding(case, finding, "dsl", None,
                                    options, report, metrics, events)
            span["findings"] = len(report.findings)
    if "chaos" in options.oracles and not report.truncated:
        with maybe_span(events, "fuzz.chaos", "fuzz") as span:
            chaos_findings = run_chaos(options.seed,
                                       options.chaos_scenarios)
            for _ in chaos_findings:
                metrics.counter("fuzz.findings").inc()
                metrics.counter("fuzz.findings.chaos").inc()
            report.findings.extend(chaos_findings)
            span["findings"] = len(chaos_findings)
    return report
