"""Experiment harness: run workloads, compare builds, format tables."""

from repro.harness.bundle import (
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    save_bundle,
)
from repro.harness.config import RunConfig
from repro.harness.report import format_series, format_table, geomean
from repro.harness.runner import (
    Comparison,
    RunResult,
    clear_caches,
    compare,
    execute,
    run_workload,
    source_hash,
)
from repro.obs.events import TraceOptions

__all__ = [
    "Comparison",
    "RunConfig",
    "RunResult",
    "TraceOptions",
    "bundle_from_dict",
    "bundle_to_dict",
    "clear_caches",
    "compare",
    "execute",
    "format_series",
    "format_table",
    "geomean",
    "load_bundle",
    "run_workload",
    "save_bundle",
    "source_hash",
]
