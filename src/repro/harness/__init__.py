"""Experiment harness: run workloads, compare builds, format tables."""

from repro.harness.bundle import (
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    save_bundle,
)
from repro.harness.report import format_series, format_table, geomean
from repro.harness.runner import (
    Comparison,
    RunResult,
    clear_caches,
    compare,
    run_workload,
    source_hash,
)

__all__ = [
    "Comparison",
    "RunResult",
    "bundle_from_dict",
    "bundle_to_dict",
    "clear_caches",
    "compare",
    "format_series",
    "format_table",
    "geomean",
    "load_bundle",
    "run_workload",
    "save_bundle",
    "source_hash",
]
