"""Experiment harness: run workloads, compare builds, format tables."""

from repro.harness.backends import (
    DEFAULT_BACKEND,
    Backend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.harness.bundle import (
    bundle_from_dict,
    bundle_to_dict,
    load_bundle,
    save_bundle,
)
from repro.harness.batch import (
    BatchOutcome,
    execute_batch,
    lane_key,
    plan_batches,
    verify_batch_parity,
)
from repro.harness.config import RunConfig
from repro.harness.parity import (
    ParityMismatch,
    ParityReport,
    suite_configs,
    verify_parity,
)
from repro.harness.report import format_series, format_table, geomean
from repro.harness.runner import (
    Comparison,
    RunResult,
    clear_caches,
    compare,
    execute,
    run_workload,
    source_hash,
)
from repro.obs.events import TraceOptions

__all__ = [
    "Backend",
    "BatchOutcome",
    "Comparison",
    "DEFAULT_BACKEND",
    "ParityMismatch",
    "ParityReport",
    "RunConfig",
    "RunResult",
    "TraceOptions",
    "backend_names",
    "bundle_from_dict",
    "bundle_to_dict",
    "clear_caches",
    "compare",
    "execute",
    "execute_batch",
    "format_series",
    "format_table",
    "geomean",
    "get_backend",
    "lane_key",
    "load_bundle",
    "plan_batches",
    "register_backend",
    "resolve_backend",
    "run_workload",
    "save_bundle",
    "source_hash",
    "suite_configs",
    "verify_batch_parity",
    "verify_parity",
]
