"""SSA/IR verifier: structural + dominance + interface-contract checks.

Strictly stronger than :meth:`repro.compiler.ir.Function.verify`:

- every block terminated, every edge resolves (RPR101/RPR102);
- SSA single-assignment and no dangling value refs (RPR103/RPR104);
- *dominance*: every use is dominated by its definition — phi uses are
  checked against the corresponding predecessor (RPR105);
- phi incomings exactly match predecessors (RPR106);
- unreachable blocks are flagged (RPR107, warning);
- the access/execute slice-partition contract: every ``dyser_init``
  names a known configuration, every send/load/recv/store port belongs
  to the configuration active at that point, and every configuration
  port has a matching transfer — no silent half-wired interfaces
  (RPR108..RPR111).

:func:`verify_function` returns a :class:`DiagnosticReport`;
:func:`check_function` raises :class:`PassVerificationError` naming the
pass that broke the invariant (the ``CompilerOptions.verify_passes``
hook in :mod:`repro.compiler.driver`).
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.compiler.cfg import dominators
from repro.compiler.dyser_ir import (
    DyserInit,
    DyserLoad,
    DyserRecv,
    DyserSend,
    DyserStore,
)
from repro.compiler.ir import Block, Function, Phi, Value
from repro.errors import PassVerificationError

_SOURCE = "verifier"

#: Block-state sentinel: conflicting configs reach this block.
_AMBIGUOUS = object()


def verify_function(func: Function, report: DiagnosticReport | None = None
                    ) -> DiagnosticReport:
    """Run every IR check; never raises."""
    report = report if report is not None else DiagnosticReport(
        subject=f"function {func.name}")
    before = len(report)
    _check_structure(func, report)
    # Structure must hold before CFG analyses make sense.
    if any(d.severity is Severity.ERROR
           for d in report.diagnostics[before:]):
        return report
    reachable = _reachable(func)
    for name in sorted(set(func.blocks) - reachable):
        report.emit("RPR107", f"block {name} is unreachable from entry",
                    location=f"block {name}", source=_SOURCE, block=name)
    _check_ssa(func, report, reachable)
    _check_interface_contract(func, report, reachable)
    return report


def check_function(func: Function, pass_name: str) -> None:
    """Raise :class:`PassVerificationError` if ``func`` fails to verify.

    ``pass_name`` names the pipeline stage that just ran, so the failure
    message identifies the offending pass directly.
    """
    report = verify_function(func)
    if not report.ok:
        raise PassVerificationError(pass_name, func.name, report.errors)


# -- structure ---------------------------------------------------------


def _check_structure(func: Function, report: DiagnosticReport) -> None:
    if func.entry not in func.blocks:
        report.emit("RPR102",
                    f"entry block {func.entry!r} does not exist",
                    location="entry", source=_SOURCE, block=func.entry)
    for name in sorted(func.blocks):
        block = func.blocks[name]
        if block.terminator is None:
            report.emit("RPR101", f"block {name} has no terminator",
                        location=f"block {name}", source=_SOURCE,
                        block=name)
            continue
        for succ in block.terminator.successors():
            if succ not in func.blocks:
                report.emit(
                    "RPR102",
                    f"block {name} branches to unknown block {succ}",
                    location=f"block {name}", source=_SOURCE,
                    block=name, target=succ)


def _reachable(func: Function) -> set[str]:
    seen: set[str] = set()
    stack = [func.entry]
    while stack:
        name = stack.pop()
        if name in seen or name not in func.blocks:
            continue
        seen.add(name)
        term = func.blocks[name].terminator
        if term is not None:
            stack.extend(term.successors())
    return seen


# -- SSA + dominance ---------------------------------------------------


def _check_ssa(func: Function, report: DiagnosticReport,
               reachable: set[str]) -> None:
    # Definition table: value -> (block name, position).  Params define
    # at a virtual position before the entry block.
    defs: dict[Value, tuple[str, int]] = {}
    for param in func.params:
        if param.value is not None:
            defs[param.value] = (func.entry, -1)
    for name in sorted(func.blocks):
        block = func.blocks[name]
        for pos, instr in enumerate(block.all_instrs()):
            if instr.result is None:
                continue
            if instr.result in defs:
                report.emit(
                    "RPR103",
                    f"{instr.result!r} defined more than once "
                    f"(block {name})",
                    location=f"block {name}", source=_SOURCE,
                    value=repr(instr.result), block=name)
            else:
                defs[instr.result] = (name, pos)

    dom = dominators(func)
    preds = func.predecessors()

    def dominates(def_site: tuple[str, int], use_block: str,
                  use_pos: int) -> bool:
        def_block, def_pos = def_site
        if def_block == use_block:
            return def_pos < use_pos
        return def_block in dom.get(use_block, set())

    for name in sorted(func.blocks):
        block = func.blocks[name]
        in_reach = name in reachable
        for pos, instr in enumerate(block.all_instrs()):
            if isinstance(instr, Phi):
                _check_phi(func, report, block, instr, preds, dom,
                           defs, in_reach)
                continue
            for use in instr.uses():
                if not isinstance(use, Value):
                    continue
                site = defs.get(use)
                if site is None:
                    report.emit(
                        "RPR104",
                        f"use of undefined {use!r} in block {name}",
                        location=f"block {name}", source=_SOURCE,
                        value=repr(use), block=name)
                elif in_reach and not dominates(site, name, pos):
                    report.emit(
                        "RPR105",
                        f"{use!r} used in block {name} but defined in "
                        f"{site[0]}, which does not dominate it",
                        location=f"block {name}", source=_SOURCE,
                        value=repr(use), block=name, def_block=site[0])
        term = block.terminator
        if term is None:
            continue
        term_pos = len(block.all_instrs())
        for use in term.uses():
            if not isinstance(use, Value):
                continue
            site = defs.get(use)
            if site is None:
                report.emit(
                    "RPR104",
                    f"terminator of {name} uses undefined {use!r}",
                    location=f"block {name}", source=_SOURCE,
                    value=repr(use), block=name)
            elif in_reach and not dominates(site, name, term_pos):
                report.emit(
                    "RPR105",
                    f"terminator of {name} uses {use!r} defined in "
                    f"{site[0]}, which does not dominate it",
                    location=f"block {name}", source=_SOURCE,
                    value=repr(use), block=name, def_block=site[0])


def _check_phi(func: Function, report: DiagnosticReport, block: Block,
               phi: Phi, preds: dict[str, list[str]],
               dom: dict[str, set[str]],
               defs: dict[Value, tuple[str, int]],
               in_reach: bool) -> None:
    name = block.name
    expected = set(preds.get(name, []))
    if in_reach and set(phi.incomings) != expected:
        report.emit(
            "RPR106",
            f"phi {phi.result!r} in {name} has incomings "
            f"{sorted(phi.incomings)} but predecessors are "
            f"{sorted(expected)}",
            location=f"block {name}", source=_SOURCE,
            value=repr(phi.result), block=name,
            incomings=sorted(phi.incomings),
            predecessors=sorted(expected))
    for pred, use in phi.incomings.items():
        if not isinstance(use, Value):
            continue
        site = defs.get(use)
        if site is None:
            report.emit(
                "RPR104",
                f"phi {phi.result!r} in {name} reads undefined {use!r}",
                location=f"block {name}", source=_SOURCE,
                value=repr(use), block=name)
        elif (in_reach and pred in dom
              and site[0] != pred and site[0] not in dom[pred]):
            # The incoming value must be available at the end of the
            # predecessor: defined in it or in one of its dominators.
            report.emit(
                "RPR105",
                f"phi {phi.result!r} in {name} reads {use!r} along edge "
                f"{pred}->{name}, but its definition in {site[0]} does "
                f"not dominate {pred}",
                location=f"block {name}", source=_SOURCE,
                value=repr(use), block=name, edge=pred,
                def_block=site[0])


# -- the access/execute slice-partition contract -----------------------


def _check_interface_contract(func: Function, report: DiagnosticReport,
                              reachable: set[str]) -> None:
    """Every interface op talks to the configuration active at its site,
    every port it names exists there, and every configuration port has a
    matching transfer somewhere the configuration is live."""
    configs = getattr(func, "dyser_configs", {}) or {}
    has_interface = any(
        isinstance(i, (DyserInit, DyserSend, DyserRecv, DyserLoad,
                       DyserStore))
        for b in func.blocks.values() for i in b.instrs)
    if not has_interface:
        return

    # Forward dataflow: which config id is active entering each block.
    state_in: dict[str, object] = {func.entry: None}
    order = [b.name for b in func.block_order() if b.name in reachable]
    changed = True
    while changed:
        changed = False
        for name in order:
            if name not in state_in:
                continue
            out = _block_out_state(func.blocks[name], state_in[name])
            term = func.blocks[name].terminator
            if term is None:
                continue
            for succ in term.successors():
                if succ not in func.blocks:
                    continue
                if succ not in state_in:
                    state_in[succ] = out
                    changed = True
                    continue
                new = _meet(state_in[succ], out)
                if not _same_state(new, state_in[succ]):
                    state_in[succ] = new
                    changed = True

    # Port traffic per config id: which ports saw a send/load and which
    # saw a recv/store while the config was active.
    sent: dict[int, set[int]] = {}
    received: dict[int, set[int]] = {}
    activated: set[int] = set()

    for name in order:
        block = func.blocks[name]
        state = state_in.get(name)
        for instr in block.instrs:
            if isinstance(instr, DyserInit):
                state = instr.config_id
                activated.add(instr.config_id)
                if instr.config_id not in configs:
                    report.emit(
                        "RPR108",
                        f"dyser_init #{instr.config_id} in {name} names "
                        f"an unknown configuration",
                        location=f"block {name}", source=_SOURCE,
                        config=instr.config_id, block=name)
                continue
            ports = _interface_ports(instr)
            if ports is None:
                continue
            direction, port_list = ports
            if state is None:
                report.emit(
                    "RPR111",
                    f"{instr!r} in {name} executes with no "
                    f"configuration loaded",
                    location=f"block {name}", source=_SOURCE,
                    block=name)
                continue
            if state is _AMBIGUOUS or state not in configs:
                continue  # init-site problems are reported above
            config = configs[state]
            legal = (set(config.dfg.input_ports) if direction == "in"
                     else set(config.dfg.output_ports))
            book = sent if direction == "in" else received
            book.setdefault(state, set()).update(port_list)
            for port in port_list:
                if port not in legal:
                    report.emit(
                        "RPR109",
                        f"{instr!r} in {name} targets port {port}, "
                        f"which configuration #{state} does not expose "
                        f"as an {'input' if direction == 'in' else 'output'}",
                        location=f"block {name}", source=_SOURCE,
                        port=port, config=state, block=name)

    # Coverage: every port of every *activated* config must be wired.
    for config_id in sorted(activated & set(configs)):
        config = configs[config_id]
        missing_in = set(config.dfg.input_ports) \
            - sent.get(config_id, set())
        missing_out = set(config.dfg.output_ports) \
            - received.get(config_id, set())
        for port in sorted(missing_in):
            report.emit(
                "RPR110",
                f"configuration #{config_id} input port {port} is "
                f"never sent (no dsend/dload targets it)",
                location=f"config {config_id}", source=_SOURCE,
                port=port, config=config_id, direction="in")
        for port in sorted(missing_out):
            report.emit(
                "RPR110",
                f"configuration #{config_id} output port {port} is "
                f"never received (no drecv/dstore drains it)",
                location=f"config {config_id}", source=_SOURCE,
                port=port, config=config_id, direction="out")


def _block_out_state(block: Block, state: object) -> object:
    for instr in block.instrs:
        if isinstance(instr, DyserInit):
            state = instr.config_id
    return state


def _same_state(a: object, b: object) -> bool:
    if a is b:
        return True
    if a is _AMBIGUOUS or b is _AMBIGUOUS:
        return False
    return a == b


def _meet(a: object, b: object) -> object:
    if a is _AMBIGUOUS or b is _AMBIGUOUS:
        return _AMBIGUOUS
    if a is None:
        return b
    if b is None or a == b:
        return a
    return _AMBIGUOUS


def _interface_ports(instr) -> tuple[str, list[int]] | None:
    """(direction, concrete port list) for an interface op, else None.

    Wide (spatial) transfers cover ``port .. port+count-1``; temporal
    vector transfers reuse one port.
    """
    if isinstance(instr, (DyserSend, DyserLoad)):
        direction = "in"
    elif isinstance(instr, (DyserRecv, DyserStore)):
        direction = "out"
    else:
        return None
    count = getattr(instr, "count", 1)
    wide = getattr(instr, "wide", False)
    if wide and count > 1:
        return direction, list(range(instr.port, instr.port + count))
    return direction, [instr.port]
