"""Structured diagnostics: stable codes, severities, text+JSON rendering.

Every static-analysis finding in this repo is a :class:`Diagnostic` with
a stable code from one of three banks:

- ``RPR1xx`` — compiler-IR verifier (:mod:`repro.analysis.verifier`);
- ``RPR2xx`` — DFG/configuration/job-spec linter
  (:mod:`repro.analysis.lint`, :mod:`repro.analysis.speclint`);
- ``RPR3xx`` — control-flow shape advisories
  (:mod:`repro.compiler.shapes`), the paper's E7 finding as tool output.

Codes are *stable*: once shipped, a code keeps its meaning so scripts,
CI greps and suppression lists never rot.  The registry below is the
single source of truth; :func:`describe_code` and the rendered output
both read it.  A :class:`DiagnosticReport` aggregates findings from any
number of analyses and renders them as aligned text or JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR: the artifact is ill-formed; running it would be garbage.
    WARNING: legal but almost certainly not what was intended.
    NOTE: advisory context (e.g. why a region fell back to scalar).
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "note": 0}[self.value]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    title: str
    severity: Severity


def _bank(sev: Severity, entries: dict[str, str]) -> list[CodeInfo]:
    return [CodeInfo(code, title, sev) for code, title in entries.items()]


#: The full diagnostic-code registry.  Append-only by convention.
CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        # -- RPR1xx: IR verifier ---------------------------------------
        *_bank(Severity.ERROR, {
            "RPR101": "block has no terminator",
            "RPR102": "edge to unknown block",
            "RPR103": "value defined more than once",
            "RPR104": "use of undefined value",
            "RPR105": "use not dominated by its definition",
            "RPR106": "phi incomings do not match predecessors",
            "RPR108": "dyser_init references unknown configuration",
            "RPR109": "interface port not in the active configuration",
            "RPR110": "configuration port has no matching send/recv",
            "RPR111": "DySER interface op with no active configuration",
        }),
        *_bank(Severity.WARNING, {
            "RPR107": "unreachable block",
        }),
        # -- RPR2xx: DFG / configuration linter ------------------------
        *_bank(Severity.ERROR, {
            "RPR201": "node arity mismatch",
            "RPR202": "input reads undefined node",
            "RPR203": "DFG has no outputs",
            "RPR204": "combinational loop in the circuit-switched mesh",
            "RPR206": "port exceeds the fabric's port count",
            "RPR207": "node not placed",
            "RPR208": "FU hosts two nodes",
            "RPR209": "FU lacks the capability for its op",
            "RPR210": "malformed route",
            "RPR211": "routing conflict: link carries two signals",
            "RPR212": "unrouted sink in a concrete configuration",
            "RPR213": "fabric capacity exceeded",
            "RPR214": "output port driven by a constant",
            "RPR216": "no free FU supports the op",
            "RPR217": "routing congestion did not resolve",
        }),
        *_bank(Severity.WARNING, {
            "RPR205": "dead node: output reaches no output port",
        }),
        # -- RPR25x: job-spec pre-flight lint --------------------------
        *_bank(Severity.ERROR, {
            "RPR251": "unknown workload",
            "RPR253": "hardware knob out of range",
            "RPR254": "unknown energy-model override field",
            "RPR255": "memory too small for the workload harness",
            "RPR256": "compiler knob out of range",
        }),
        *_bank(Severity.WARNING, {
            "RPR252": "non-standard scale name",
        }),
        # -- RPR3xx: control-flow shape advisories (the E7 story) ------
        *_bank(Severity.NOTE, {
            "RPR300": "region offloaded",
            "RPR304": "region rejected",
        }),
        *_bank(Severity.WARNING, {
            "RPR301": "multi-exit loop is not if-convertible",
            "RPR302": "loop-carried control serializes invocations",
            "RPR303": "deep diamonds collapse useful-op density",
        }),
        # -- RPR4xx: static performance attribution (lint --perf) ------
        *_bank(Severity.NOTE, {
            "RPR400": "region is port-bandwidth-bound",
            "RPR401": "region is recurrence-bound",
            "RPR402": "region is config-thrash-bound",
            "RPR403": "region is capability-bound",
            "RPR404": "static performance prediction",
        }),
        # -- RPR5xx: kernel DSL validation (repro.lang) -----------------
        *_bank(Severity.ERROR, {
            "RPR500": "DSL source failed to tokenize",
            "RPR501": "DSL source failed to parse",
            "RPR510": "use of undefined name",
            "RPR511": "type mismatch",
            "RPR512": "array/scalar shape misuse",
            "RPR513": "write to read-only input",
            "RPR514": "integer division outside the validated subset",
            "RPR515": "output parameter never written",
            "RPR516": "unknown intrinsic or bad arity",
            "RPR517": "invalid size or parameter declaration",
            "RPR518": "duplicate declaration",
            "RPR519": "invalid input initializer",
            "RPR520": "dyser region exceeds fabric compute capacity",
            "RPR521": "dyser region live values exceed port capacity",
            "RPR522": "size table missing standard scales",
            "RPR523": "size expression not positive at some scale",
            "RPR524": "kernel declares no output parameter",
            "RPR525": "invalid dyser region structure",
            "RPR526": "break or continue outside a loop",
        }),
        *_bank(Severity.WARNING, {
            "RPR540": "while loop trip count is data-dependent",
        }),
    )
}


def describe_code(code: str) -> CodeInfo:
    """Registry lookup; unknown codes get a synthetic ERROR entry."""
    info = CODES.get(code)
    if info is not None:
        return info
    return CodeInfo(code, "unregistered diagnostic", Severity.ERROR)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code, severity, message, location, payload."""

    code: str
    message: str
    severity: Severity
    #: Where, human-readable: "mm.r0", "block bb3", "node 7", "port 2".
    location: str = ""
    #: Which analysis produced it: "verifier", "linter", "shapes", ...
    source: str = ""
    #: Structured payload (node ids, coords, pass names, ...).
    context: dict[str, Any] = field(default_factory=dict, hash=False)

    @classmethod
    def of(cls, code: str, message: str, *, location: str = "",
           source: str = "", severity: Severity | None = None,
           **context: Any) -> "Diagnostic":
        """Build a diagnostic, defaulting severity from the registry."""
        if severity is None:
            severity = describe_code(code).severity
        return cls(code=code, message=message, severity=severity,
                   location=location, source=source, context=context)

    @classmethod
    def from_error(cls, exc: Exception, *, location: str = "",
                   source: str = "") -> "Diagnostic":
        """Lift a :class:`repro.errors.ReproError` into a diagnostic."""
        code = getattr(exc, "code", None) or "RPR000"
        context = dict(getattr(exc, "context", {}) or {})
        return cls.of(code, str(exc), location=location, source=source,
                      **context)

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity.value} {self.code}{where}: {self.message}"

    def to_dict(self) -> dict:
        from repro.errors import _json_safe

        return {
            "code": self.code,
            "severity": self.severity.value,
            "title": describe_code(self.code).title,
            "message": self.message,
            "location": self.location,
            "source": self.source,
            "context": {k: _json_safe(v) for k, v in self.context.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            code=data["code"],
            message=data["message"],
            severity=Severity(data["severity"]),
            location=data.get("location", ""),
            source=data.get("source", ""),
            context=dict(data.get("context", {})),
        )


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with rendering helpers."""

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    # -- building ------------------------------------------------------

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def emit(self, code: str, message: str, **kwargs: Any) -> Diagnostic:
        diag = Diagnostic.of(code, message, **kwargs)
        self.add(diag)
        return diag

    def extend(self, other: "DiagnosticReport | Iterable[Diagnostic]"
               ) -> None:
        if isinstance(other, DiagnosticReport):
            self.diagnostics.extend(other.diagnostics)
        else:
            self.diagnostics.extend(other)

    # -- queries -------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.NOTE]

    @property
    def ok(self) -> bool:
        """True when nothing error-severity fired."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # -- rendering -----------------------------------------------------

    def summary(self) -> str:
        e, w, n = len(self.errors), len(self.warnings), len(self.notes)
        head = f"{self.subject}: " if self.subject else ""
        if not self.diagnostics:
            return f"{head}clean"
        parts = []
        if e:
            parts.append(f"{e} error{'s' if e != 1 else ''}")
        if w:
            parts.append(f"{w} warning{'s' if w != 1 else ''}")
        if n:
            parts.append(f"{n} note{'s' if n != 1 else ''}")
        return head + ", ".join(parts)

    def render(self, *, min_severity: Severity = Severity.NOTE) -> str:
        """Human-readable listing, most severe first, stable order."""
        lines = [self.summary()]
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.code, d.location))
        for diag in ordered:
            if diag.severity.rank < min_severity.rank:
                continue
            lines.append("  " + diag.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        # Sorted by (code, location) so JSON reports are byte-stable
        # regardless of emission/traversal order.
        ordered = sorted(self.diagnostics,
                         key=lambda d: (d.code, d.location))
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "note": len(self.notes),
            },
            "diagnostics": [d.to_dict() for d in ordered],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiagnosticReport":
        return cls(
            subject=data.get("subject", ""),
            diagnostics=[Diagnostic.from_dict(d)
                         for d in data.get("diagnostics", [])],
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
