"""JobSpec pre-flight lint (RPR25x): reject garbage before a worker runs.

The engine can be asked to execute millions of :class:`repro.engine.jobs.
JobSpec` points.  A spec with an unknown workload, a zero-depth FIFO or
a misspelled energy-override field would otherwise be discovered inside
a worker process — after the pool slot, the cache probe and (worst
case) a simulation timeout have already been paid.  ``lint_spec`` is a
cheap, pure check the pool runs *before* dispatch; error-severity
findings turn the job into a ``REJECTED`` record carrying the
diagnostics (see :mod:`repro.engine.pool`).
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from repro.analysis.diagnostics import DiagnosticReport

_SOURCE = "speclint"

#: Scale names every suite workload defines; anything else is probably a
#: typo (workload-specific extra scales still run — this is a warning).
STANDARD_SCALES = ("tiny", "small", "medium")

#: Hardware/compiler integer knobs that must be >= 1.
_POSITIVE_HW_KNOBS = (
    "input_fifo_depth",
    "output_fifo_depth",
    "initiation_interval",
    "config_cache_capacity",
    "vector_port_words_per_cycle",
)
_POSITIVE_COMPILER_KNOBS = (
    "unroll",
    "min_region_ops",
)

#: Smallest memory image the harness can stage inputs into.  Every
#: suite workload places arrays above the 64 KiB line even at the tiny
#: scale, so anything smaller faults during preparation, not execution.
MIN_MEMORY_BYTES = 1 << 16


def lint_spec(spec, report: DiagnosticReport | None = None
              ) -> DiagnosticReport:
    """Pre-flight checks for one :class:`~repro.engine.jobs.JobSpec`.

    Never raises; returns a report whose ``ok`` property says whether
    the spec is worth dispatching.
    """
    from repro.energy import EnergyParams
    from repro.errors import WorkloadError
    from repro.workloads import SUITE
    from repro.workloads import suite as suite_mod

    report = report if report is not None else DiagnosticReport(
        subject=f"spec {spec.describe()}")

    if spec.workload not in SUITE:
        # ``dsl:`` names may resolve lazily through the kernel store;
        # only reject if the dynamic lookup also comes up empty.
        try:
            suite_mod.get(spec.workload)
        except WorkloadError:
            report.emit(
                "RPR251",
                f"unknown workload {spec.workload!r}; "
                f"have {sorted(SUITE)}",
                source=_SOURCE, workload=spec.workload)
    if spec.scale not in STANDARD_SCALES:
        report.emit(
            "RPR252",
            f"scale {spec.scale!r} is not one of the standard scales "
            f"{list(STANDARD_SCALES)}; the workload harness may reject it",
            source=_SOURCE, scale=spec.scale,
            standard=list(STANDARD_SCALES))

    for name in _POSITIVE_HW_KNOBS:
        value = getattr(spec, name)
        if value < 1:
            report.emit(
                "RPR253",
                f"hardware knob {name}={value} must be >= 1",
                location=name, source=_SOURCE, knob=name, value=value)
    for name in _POSITIVE_COMPILER_KNOBS:
        value = getattr(spec, name)
        if value < 1:
            report.emit(
                "RPR256",
                f"compiler knob {name}={value} must be >= 1",
                location=name, source=_SOURCE, knob=name, value=value)
    if spec.max_region_ops is not None \
            and spec.max_region_ops < spec.min_region_ops:
        report.emit(
            "RPR256",
            f"max_region_ops={spec.max_region_ops} is below "
            f"min_region_ops={spec.min_region_ops}; no region can ever "
            f"be accepted",
            location="max_region_ops", source=_SOURCE,
            knob="max_region_ops", value=spec.max_region_ops,
            floor=spec.min_region_ops)

    known_energy = {f.name for f in dataclass_fields(EnergyParams)}
    for name, value in spec.energy_overrides:
        if name not in known_energy:
            report.emit(
                "RPR254",
                f"energy override {name!r} is not an EnergyParams "
                f"field; known fields: {sorted(known_energy)}",
                location=name, source=_SOURCE, field=name, value=value)

    if spec.memory_bytes < MIN_MEMORY_BYTES:
        report.emit(
            "RPR255",
            f"memory_bytes={spec.memory_bytes} is below the "
            f"{MIN_MEMORY_BYTES}-byte floor the workload harness needs "
            f"to stage inputs",
            location="memory_bytes", source=_SOURCE,
            value=spec.memory_bytes, floor=MIN_MEMORY_BYTES)
    return report
