"""DFG and DyserConfig linter: structural, placement and routing checks.

A non-throwing superset of ``Dfg.validate``/``DyserConfig.validate``:
instead of stopping at the first inconsistency it reports *every*
finding as an ``RPR2xx`` diagnostic, including checks the throwing
validators skip entirely — dead nodes, unrouted sinks, constant-driven
outputs and fabric-capacity violations.  ``repro lint`` and the
mutation tests run on this; the execution path keeps the cheap throwing
validators.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.dyser.config import (
    DyserConfig,
    SinkKey,
    SourceKey,
    source_key,
)
from repro.dyser.dfg import ConstRef, Dfg, NodeRef
from repro.dyser.fabric import Coord
from repro.dyser.ops import FU_OP_INFO, capability_of

_SOURCE = "linter"


def lint_dfg(dfg: Dfg, report: DiagnosticReport | None = None
             ) -> DiagnosticReport:
    """Structural DFG checks (RPR201..RPR205, RPR214)."""
    report = report if report is not None else DiagnosticReport(
        subject=f"dfg {dfg.name}")
    for nid in sorted(dfg.nodes):
        node = dfg.nodes[nid]
        arity = FU_OP_INFO[node.op].arity
        if len(node.inputs) != arity:
            report.emit(
                "RPR201",
                f"node {nid} ({node.op.value}) has {len(node.inputs)} "
                f"inputs, expected {arity}",
                location=f"node {nid}", source=_SOURCE, node=nid,
                op=node.op.value, arity=arity, got=len(node.inputs))
        for slot, src in enumerate(node.inputs):
            if isinstance(src, NodeRef) and src.node not in dfg.nodes:
                report.emit(
                    "RPR202",
                    f"node {nid} input {slot} reads undefined node "
                    f"{src.node}",
                    location=f"node {nid}", source=_SOURCE, node=nid,
                    slot=slot, target=src.node)
    if not dfg.outputs:
        report.emit("RPR203", f"DFG {dfg.name} has no outputs",
                    source=_SOURCE, dfg=dfg.name)
    for port in sorted(dfg.outputs):
        src = dfg.outputs[port]
        if isinstance(src, NodeRef) and src.node not in dfg.nodes:
            report.emit(
                "RPR202",
                f"output port {port} reads undefined node {src.node}",
                location=f"port {port}", source=_SOURCE, port=port,
                target=src.node)
        elif isinstance(src, ConstRef):
            report.emit(
                "RPR214",
                f"output port {port} is driven by constant "
                f"{src.value!r}; constants are configured, not routed",
                location=f"port {port}", source=_SOURCE, port=port)
    _check_cycles(dfg, report)
    _check_dead_nodes(dfg, report)
    return report


def _check_cycles(dfg: Dfg, report: DiagnosticReport) -> None:
    """Kahn's algorithm; anything left over sits on a cycle."""
    indeg = {nid: 0 for nid in dfg.nodes}
    consumers: dict[int, list[int]] = {nid: [] for nid in dfg.nodes}
    for node in dfg.nodes.values():
        for src in node.inputs:
            if isinstance(src, NodeRef) and src.node in dfg.nodes:
                indeg[node.id] += 1
                consumers[src.node].append(node.id)
    ready = [nid for nid, d in sorted(indeg.items()) if d == 0]
    seen = 0
    while ready:
        nid = ready.pop()
        seen += 1
        for consumer in consumers[nid]:
            indeg[consumer] -= 1
            if indeg[consumer] == 0:
                ready.append(consumer)
    if seen != len(dfg.nodes):
        cyclic = sorted(nid for nid, d in indeg.items() if d > 0)
        report.emit(
            "RPR204",
            f"combinational loop through nodes {cyclic}; DySER "
            f"configurations are acyclic (carried values round-trip "
            f"through the core)",
            source=_SOURCE, nodes=cyclic, dfg=dfg.name)


def _check_dead_nodes(dfg: Dfg, report: DiagnosticReport) -> None:
    live: set[int] = set()
    stack = [src.node for src in dfg.outputs.values()
             if isinstance(src, NodeRef) and src.node in dfg.nodes]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for src in dfg.nodes[nid].inputs:
            if isinstance(src, NodeRef) and src.node in dfg.nodes:
                stack.append(src.node)
    for nid in sorted(set(dfg.nodes) - live):
        node = dfg.nodes[nid]
        report.emit(
            "RPR205",
            f"node {nid} ({node.op.value}) drives no output port; it "
            f"burns an FU and switch bandwidth for nothing",
            location=f"node {nid}", source=_SOURCE, node=nid,
            op=node.op.value)


def lint_config(config: DyserConfig,
                report: DiagnosticReport | None = None
                ) -> DiagnosticReport:
    """Full configuration lint: DFG + ports + placement + routes."""
    report = report if report is not None else DiagnosticReport(
        subject=f"config #{config.config_id} ({config.dfg.name})")
    lint_dfg(config.dfg, report)
    geometry = config.fabric.geometry
    dfg = config.dfg

    if len(dfg.nodes) > geometry.num_fus:
        report.emit(
            "RPR213",
            f"{len(dfg.nodes)} ops exceed the fabric's "
            f"{geometry.num_fus} FUs",
            source=_SOURCE, ops=len(dfg.nodes), fus=geometry.num_fus)
    for port in dfg.input_ports:
        if port >= geometry.num_input_ports:
            report.emit(
                "RPR206",
                f"input port {port} exceeds the fabric's "
                f"{geometry.num_input_ports} input ports",
                location=f"port {port}", source=_SOURCE, port=port,
                direction="in", limit=geometry.num_input_ports)
    for port in dfg.output_ports:
        if port >= geometry.num_output_ports:
            report.emit(
                "RPR206",
                f"output port {port} exceeds the fabric's "
                f"{geometry.num_output_ports} output ports",
                location=f"port {port}", source=_SOURCE, port=port,
                direction="out", limit=geometry.num_output_ports)

    if config.placement is not None:
        _lint_placement(config, report)
    if config.routes is not None and config.placement is not None:
        _lint_routes(config, report)
    return report


def _lint_placement(config: DyserConfig, report: DiagnosticReport) -> None:
    placed: dict[Coord, int] = {}
    for nid in sorted(config.dfg.nodes):
        node = config.dfg.nodes[nid]
        fu = config.placement.get(nid)
        if fu is None:
            report.emit("RPR207", f"node {nid} is not placed on any FU",
                        location=f"node {nid}", source=_SOURCE, node=nid)
            continue
        if fu in placed:
            report.emit(
                "RPR208",
                f"FU {fu} hosts both node {placed[fu]} and node {nid}",
                location=f"fu {fu}", source=_SOURCE, fu=fu,
                nodes=[placed[fu], nid])
        else:
            placed[fu] = nid
        capability = capability_of(node.op)
        if fu not in config.fabric.capabilities \
                or not config.fabric.supports(fu, capability):
            report.emit(
                "RPR209",
                f"FU {fu} lacks the {capability.value} capability "
                f"needed by node {nid} ({node.op.value})",
                location=f"fu {fu}", source=_SOURCE, fu=fu, node=nid,
                op=node.op.value, capability=capability.value)


def _expected_edges(config: DyserConfig
                    ) -> list[tuple[SourceKey, SinkKey]]:
    """Every (source, sink) pair a concrete config must route."""
    edges: list[tuple[SourceKey, SinkKey]] = []
    for nid in sorted(config.dfg.nodes):
        node = config.dfg.nodes[nid]
        for slot, src in enumerate(node.inputs):
            skey = source_key(src)
            if skey is not None:
                edges.append((skey, ("node", nid, slot)))
    for port in sorted(config.dfg.outputs):
        skey = source_key(config.dfg.outputs[port])
        if skey is not None:
            edges.append((skey, ("out", port, 0)))
    return edges


def _lint_routes(config: DyserConfig, report: DiagnosticReport) -> None:
    geometry = config.fabric.geometry
    in_switches = geometry.input_port_switches()
    out_switches = geometry.output_port_switches()

    def entry_switch(skey: SourceKey) -> Coord | None:
        kind, n = skey
        if kind == "port":
            return in_switches[n] if n < len(in_switches) else None
        fu = config.placement.get(n)
        return None if fu is None else geometry.fu_output_switch(fu)

    def target_switches(sink: SinkKey) -> list[Coord] | None:
        kind, n, _slot = sink
        if kind == "out":
            return ([out_switches[n]] if n < len(out_switches) else None)
        fu = config.placement.get(n)
        return None if fu is None else geometry.fu_input_switches(fu)

    # Unrouted sinks: every DFG edge must have a committed path.
    for skey, sink in _expected_edges(config):
        if (skey, sink) not in config.routes:
            report.emit(
                "RPR212",
                f"no route for signal {skey} -> sink {sink}",
                location=f"sink {sink}", source=_SOURCE,
                signal=skey, sink=sink)

    # Route well-formedness + circuit-switched link exclusivity.
    link_owner: dict[tuple[Coord, Coord], SourceKey] = {}
    for (skey, sink) in sorted(config.routes):
        path = config.routes[(skey, sink)]
        where = f"{skey}->{sink}"
        if len(path) < 1:
            report.emit("RPR210", f"empty route for {where}",
                        location=where, source=_SOURCE,
                        signal=skey, sink=sink)
            continue
        expected_start = entry_switch(skey)
        if expected_start is not None and path[0] != expected_start:
            report.emit(
                "RPR210",
                f"route {where} starts at {path[0]}, expected "
                f"{expected_start}",
                location=where, source=_SOURCE, signal=skey, sink=sink,
                start=path[0], expected=expected_start)
        expected_end = target_switches(sink)
        if expected_end is not None and path[-1] not in expected_end:
            report.emit(
                "RPR210",
                f"route {where} ends at {path[-1]}, expected one of "
                f"{expected_end}",
                location=where, source=_SOURCE, signal=skey, sink=sink,
                end=path[-1], expected=expected_end)
        for a, b in zip(path, path[1:], strict=False):
            if b not in geometry.switch_neighbors(a):
                report.emit(
                    "RPR210",
                    f"route {where}: hop {a}->{b} is not an adjacent "
                    f"switch link",
                    location=where, source=_SOURCE, signal=skey,
                    sink=sink, hop=[a, b])
                continue
            owner = link_owner.get((a, b))
            if owner is not None and owner != skey:
                report.emit(
                    "RPR211",
                    f"link {a}->{b} carries both signal {owner} and "
                    f"signal {skey}; a circuit-switched link has one "
                    f"owner",
                    location=f"link {a}->{b}", source=_SOURCE,
                    link=[a, b], owners=[owner, skey])
            link_owner[(a, b)] = skey
