"""One-call workload analysis: compile, verify, lint, advise.

``lint_workload`` is what ``repro lint <workload>`` runs: it compiles
the named suite workload (scalar or DySER), runs the IR verifier over
the SSA at the frontend and post-offload stages, lints every attached
:class:`~repro.dyser.config.DyserConfig`, and lifts the region
selector's accept/reject decisions into ``RPR3xx`` shape advisories —
so the paper's E7 finding ("two control-flow shapes curtail the
compiler") is visible as static tool output instead of a simulation
anomaly.

Compilation failures do not escape: any :class:`repro.errors.
ReproError` raised mid-pipeline is lifted into a diagnostic on the
report, so ``repro lint`` over a broken kernel still produces a
machine-readable finding rather than a traceback.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.lint import lint_config
from repro.analysis.verifier import verify_function
from repro.errors import ReproError

_MODES = ("scalar", "dyser")


def lint_workload(name: str, *, mode: str = "dyser", options=None,
                  ) -> DiagnosticReport:
    """Compile ``name`` and return every static finding.

    Args:
        name: suite workload name (see ``repro.workloads.SUITE``).
        mode: ``"dyser"`` (region offload + config lint) or
            ``"scalar"`` (frontend verification only).
        options: :class:`~repro.compiler.CompilerOptions` or ``None``
            for defaults.

    Never raises for workload/compile problems — they surface as
    diagnostics.  ``report.ok`` is the lint verdict.
    """
    from repro.compiler.driver import CompilerOptions, frontend
    from repro.compiler.passes import optimize
    from repro.compiler.region import offload_regions
    from repro.compiler.shapes import region_advisories
    from repro.errors import WorkloadError
    from repro.workloads import SUITE
    from repro.workloads import suite as suite_mod

    report = DiagnosticReport(subject=f"{name}/{mode}")
    if mode not in _MODES:
        report.emit("RPR251", f"unknown mode {mode!r}; have {_MODES}",
                    source="api", mode=mode)
        return report
    try:
        # suite.get resolves registered names and lazily loads
        # content-addressed ``dsl:`` kernels from the kernel store.
        workload = suite_mod.get(name)
    except WorkloadError:
        report.emit(
            "RPR251",
            f"unknown workload {name!r}; have {sorted(SUITE)}",
            source="api", workload=name)
        return report

    try:
        func = frontend(workload.source)
    except ReproError as exc:
        report.add(_lift(exc, location=name, source="compiler"))
        return report
    verify_function(func, report=report)
    if mode == "scalar":
        return report

    options = options or CompilerOptions()
    try:
        func, regions = offload_regions(func, options)
        func = optimize(func)
    except ReproError as exc:
        report.add(_lift(exc, location=name, source="compiler"))
        return report
    verify_function(func, report=report)
    region_advisories(regions, report)
    configs = getattr(func, "dyser_configs", {})
    for config_id in sorted(configs):
        lint_config(configs[config_id], report)
    return report


def _lift(exc: ReproError, *, location: str, source: str):
    from repro.analysis.diagnostics import Diagnostic

    return Diagnostic.from_error(exc, location=location, source=source)
