"""Static performance-bound analyzer: predict cycles without simulating.

``analyze_program`` runs a timing-only *abstract interpretation* of a
compiled program against its statically known initial environment (the
prepared memory image, the kernel arguments, zero-initialized register
files).  The abstract domain is "concrete value or unknown": every
instruction's issue/retire timing is mirrored from the in-order
scoreboard model (:class:`repro.cpu.core.Core`), but no simulator
backend ever runs — the walk degrades gracefully when a value cannot be
resolved (a branch condition or address derived from data the analysis
chose not to track), guessing control flow conservatively and flagging
the prediction *inexact*.

Three results come out of one walk:

- **predicted cycles** (and cycles per invocation) — exact when every
  branch and address resolved, an estimate otherwise;
- a **sound lower bound** on cycles: for exact walks the prediction
  itself; for inexact walks the weighted shortest path through the
  instruction graph (every instruction occupies >= 1 issue slot, taken
  branches and jumps pay the redirect penalty), which every execution
  must pay.  The ``perfbound`` fuzz oracle holds this bound against the
  simulator on generated programs: bound <= measured, always;
- a **per-region bottleneck attribution** (:class:`RegionPerf`): each
  DySER configuration's invocations are decomposed into
  recurrence-serialization cycles (blocking ``drecv`` waits on a
  loop-carried value that round-trips through the core — the E6
  dotprod gap), port/bandwidth occupancy (interface issue slots plus
  vector-transfer occupancy and send backpressure), configuration
  reload stalls (the E9b config-cache-thrash axis) and residual host
  cycles.  ``perf_report`` renders the attribution as the ``RPR4xx``
  diagnostics behind ``repro lint --perf``.

The fabric is modelled by driving the *real* :class:`DyserDevice` /
:class:`InvocationEngine` flow-control machinery with the walk's value
stream — timing there is value-independent, and a wrapped evaluator
propagates "unknown" through the DFG so a partially resolved region
still fires at exact times.  Caches are modelled by real
:class:`~repro.cpu.cache.Cache` instances fed the statically derived
pc/address streams.

``estimate_job_cost`` packages the prediction as the engine/service
pre-flight cost estimate: :func:`repro.engine.pool.run_jobs` orders
lanes longest-first with it and the service scheduler turns it into
queue-wait estimates and a cost-aware ``Retry-After``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.analysis.diagnostics import DiagnosticReport
from repro.cpu.cache import Cache
from repro.cpu.core import CoreConfig
from repro.cpu.memory import WORD_BYTES, Memory
from repro.cpu.regfile import wrap64
from repro.dyser.config_cache import ConfigCacheParams
from repro.dyser.fabric import Fabric
from repro.dyser.functional import FunctionalEvaluator
from repro.dyser.interface import DyserDevice
from repro.dyser.timing import DyserTimingParams
from repro.errors import ReproError
from repro.isa.instruction import ARG_FP_REGS, ARG_INT_REGS
from repro.isa.opcodes import InsnClass, MULTI_OPS, Opcode
from repro.isa.program import Program

_INSN_BYTES = 4

#: Default walk budget, in instructions.  Every instruction occupies at
#: least one cycle, so this also bounds the predictable cycle count.
DEFAULT_STEP_LIMIT = 1_000_000

#: How many times an *unknown* backward branch is guessed taken before
#: the walk falls through (prevents unbounded loops over unknown trip
#: counts; any guess marks the walk inexact).
_BACKWARD_GUESSES = 2


class _WalkAborted(Exception):
    """The walk could not complete (budget, runaway, mirrored fault)."""


# ---------------------------------------------------------------------------
# results


@dataclass
class RegionPerf:
    """Bottleneck attribution for one DySER configuration."""

    config_id: int
    invocations: int
    #: Static recv->send loop-carried dependence through the core.
    recurrence: bool
    #: Cycles/invocation the pipeline blocked on ``drecv`` for a
    #: loop-carried value (only attributed when ``recurrence``).
    recurrence_ii: float
    #: Interface issue slots + vector occupancy + send backpressure
    #: (+ non-recurrent recv drain waits), per invocation.
    port_ii: float
    #: Non-compulsory configuration reload stall cycles per invocation.
    config_ii: float
    #: Residual host cycles per invocation while this config was live.
    host_ii: float
    #: Critical output path delay of the configuration (cycles).
    path_delay: int
    config_words: int
    #: Dominant component: "recurrence" | "port" | "config" | "host".
    bottleneck: str

    def to_dict(self) -> dict:
        return {
            "config_id": self.config_id,
            "invocations": self.invocations,
            "recurrence": self.recurrence,
            "recurrence_ii": round(self.recurrence_ii, 3),
            "port_ii": round(self.port_ii, 3),
            "config_ii": round(self.config_ii, 3),
            "host_ii": round(self.host_ii, 3),
            "path_delay": self.path_delay,
            "config_words": self.config_words,
            "bottleneck": self.bottleneck,
        }


@dataclass
class PerfPrediction:
    """Everything one static walk of a program produced."""

    subject: str
    mode: str
    #: Predicted total cycles (None when the walk could not complete).
    predicted_cycles: int | None
    #: Sound lower bound: never exceeds the simulator's cycle count.
    lower_bound: int
    invocations: int
    instructions: int
    #: True when every branch and address resolved — the prediction is
    #: then the exact cycle count of the reference model.
    exact: bool
    #: True when the walk ran to HALT (False: structural bound only).
    walked: bool
    work_items: int | None
    regions: list[RegionPerf] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def cycles_per_invocation(self) -> float | None:
        if self.predicted_cycles is None or not self.invocations:
            return None
        return self.predicted_cycles / self.invocations

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "mode": self.mode,
            "predicted_cycles": self.predicted_cycles,
            "lower_bound": self.lower_bound,
            "invocations": self.invocations,
            "instructions": self.instructions,
            "exact": self.exact,
            "walked": self.walked,
            "work_items": self.work_items,
            "cycles_per_invocation": self.cycles_per_invocation,
            "regions": [r.to_dict() for r in self.regions],
            "notes": list(self.notes),
        }


# ---------------------------------------------------------------------------
# structural lower bound


def _structural_bound(program: Program, branch_taken_penalty: int) -> int:
    """Weighted shortest path from entry to any HALT.

    Every instruction occupies at least one issue slot (each arm of the
    scoreboard model advances the cursor by >= 1); taken branches and
    jumps additionally pay the full redirect penalty.  Every execution
    that halts follows *some* path through the instruction graph and
    pays at least these costs, so the shortest-path distance is a sound
    lower bound on cycles.  Returns 0 when no HALT is reachable (the
    simulator would fault — no bound to give).
    """
    insns = program.instructions
    n = len(insns)
    if not n:
        return 0
    dist = [None] * n
    heap: list[tuple[int, int]] = [(0, 0)]
    best = None
    while heap:
        d, i = heapq.heappop(heap)
        if i >= n or dist[i] is not None:
            continue
        dist[i] = d
        insn = insns[i]
        op = insn.op
        iclass = insn.info.iclass
        if op is Opcode.HALT:
            best = d + 1 if best is None else min(best, d + 1)
            continue
        if iclass is InsnClass.JUMP:
            tgt = insn.target_index
            if tgt is not None and 0 <= tgt < n and dist[tgt] is None:
                heapq.heappush(heap, (d + 1 + branch_taken_penalty, tgt))
            continue
        if i + 1 < n and dist[i + 1] is None:
            heapq.heappush(heap, (d + 1, i + 1))
        if iclass is InsnClass.BRANCH:
            tgt = insn.target_index
            if tgt is not None and 0 <= tgt < n and dist[tgt] is None:
                heapq.heappush(heap, (d + 1 + branch_taken_penalty, tgt))
    return best or 0


# ---------------------------------------------------------------------------
# unknown-tolerant DFG evaluation


class _AbstractEvaluator:
    """FunctionalEvaluator that propagates unknown (None) inputs.

    Timing in the invocation engine is value-independent, so firing
    with unknown inputs just produces unknown outputs at exact times.
    A genuine evaluation fault (which would crash the simulator) also
    degrades to unknown, after flagging the walk inexact.
    """

    def __init__(self, dfg, on_fault) -> None:
        self._inner = FunctionalEvaluator(dfg)
        self._out_ports = list(dfg.outputs)
        self._on_fault = on_fault

    def __call__(self, inputs: dict) -> dict:
        if any(v is None for v in inputs.values()):
            return {p: None for p in self._out_ports}
        try:
            return self._inner(inputs)
        except Exception:
            self._on_fault("DFG evaluation faulted")
            return {p: None for p in self._out_ports}


# ---------------------------------------------------------------------------
# the walker


def _blank_acct() -> dict:
    return {
        "fires": 0,
        "seg_cycles": 0,
        "iface_slots": 0,
        "addr_cycles": 0,
        "send_wait": 0,
        "recv_wait": 0,
        "config_stall": 0,
        "reload_stall": 0,
    }


class _Walker:
    """Timing-only abstract interpreter mirroring the scoreboard core.

    Every timing arm of :meth:`repro.cpu.core.Core.run` is reproduced
    over the value domain ``int | float | None`` (None = unknown).  The
    walk owns its memory image, caches and DySER device outright — it
    never touches shared state.
    """

    def __init__(self, program: Program, memory: Memory,
                 config: CoreConfig, device: DyserDevice | None,
                 step_limit: int) -> None:
        self.program = program
        self.memory = memory
        self.cfg = config
        self.device = device
        self.step_limit = min(step_limit, config.max_instructions)
        self.icache = Cache(config.icache)
        self.dcache = Cache(config.dcache)
        self.l2 = Cache(config.l2) if config.l2 else None
        self.ival: list = [0] * 32
        self.fval: list = [0.0] * 32
        # Provenance: ("recv", config_id) when a register still holds an
        # unmodified drecv/dfrecv result — the recurrence detector.
        self.iorigin: list = [None] * 32
        self.forigin: list = [None] * 32
        # Dynamic address-generation slice: cycles of host ALU work
        # accumulated into each int register's current value.  A DySER
        # memory op consuming the register as its address claims the
        # chain for the port attribution (vectorized transfers eliminate
        # the addressing work along with the per-element port slots).
        self.icost: list = [0] * 32
        self.exact = True
        self.notes: list[str] = []
        self.unknown_words: set[int] = set()
        self.dirty_all = False
        self.executed = 0
        self.invocations = 0
        self.cycles = 0
        self.recurrences: set[int] = set()
        self.acct: dict[int, dict] = {}
        self._guesses: dict[int, int] = {}
        self._loaded_once: set[int] = set()
        self._seg_open_t = 0

    # -- bookkeeping -----------------------------------------------------

    def _inexact(self, why: str) -> None:
        self.exact = False
        if why not in self.notes:
            self.notes.append(why)

    def _acct_for(self, cid: int) -> dict:
        a = self.acct.get(cid)
        if a is None:
            a = self.acct[cid] = _blank_acct()
        return a

    def _close_segment(self, engine, t_now: int) -> None:
        a = self._acct_for(engine.config.config_id)
        a["fires"] += engine.invocations
        a["seg_cycles"] += max(0, t_now - self._seg_open_t)

    # -- value helpers ---------------------------------------------------

    def _take_cost(self, *regs) -> int:
        """Claim (and reset) the addressing-cost chains of registers."""
        total = 0
        for reg in regs:
            if reg is not None:
                total += self.icost[reg]
                self.icost[reg] = 0
        return total

    def _write_int(self, rd: int, value, origin=None) -> None:
        if rd != 0:
            self.ival[rd] = None if value is None else wrap64(int(value))
            self.iorigin[rd] = origin
            self.icost[rd] = 0

    def _write_fp(self, rd: int, value, origin=None) -> None:
        self.fval[rd] = None if value is None else float(value)
        self.forigin[rd] = origin

    def set_args(self, int_args=(), fp_args=()) -> None:
        for reg, value in zip(ARG_INT_REGS, int_args, strict=False):
            self._write_int(reg, int(value))
        for reg, value in zip(ARG_FP_REGS, fp_args, strict=False):
            self._write_fp(reg, float(value))

    # -- memory image ----------------------------------------------------

    def _load_word(self, addr: int):
        if self.dirty_all or addr in self.unknown_words:
            self.memory._index(addr)
            return None
        return self.memory.load_word(addr)

    def _store_word(self, addr: int, value) -> None:
        if value is None:
            self.memory._index(addr)
            self.unknown_words.add(addr)
        else:
            self.memory.store_word(addr, value)
            self.unknown_words.discard(addr)

    def _load_block(self, base: int, count: int) -> list:
        raw = self.memory.load_block(base, count)
        if self.dirty_all:
            return [None] * count
        if self.unknown_words:
            return [
                None if (base + i * WORD_BYTES) in self.unknown_words else v
                for i, v in enumerate(raw)
            ]
        return raw

    def _store_block(self, base: int, values: list) -> None:
        # Bounds-check the whole range first (mirrors store_block).
        self.memory.load_block(base, len(values))
        for i, value in enumerate(values):
            self._store_word(base + i * WORD_BYTES, value)

    # -- cache hierarchy (mirrors Core) ----------------------------------

    def _data_access(self, addr: int, is_write: bool = False) -> int:
        lat = self.dcache.access(addr, is_write)
        if self.l2 is None or is_write:
            return lat
        if lat <= self.cfg.dcache.hit_latency:
            return lat
        return (self.cfg.dcache.hit_latency
                + self.cfg.l1_to_l2_latency
                + self.l2.access(addr))

    def _fetch_access(self, addr: int) -> int:
        lat = self.icache.access(addr)
        if self.l2 is None or lat <= self.cfg.icache.hit_latency:
            return lat
        return (self.cfg.icache.hit_latency
                + self.cfg.l1_to_l2_latency
                + self.l2.access(addr))

    def _vector_cache_access(self, base: int, count: int,
                             is_write: bool) -> int:
        line = self.cfg.dcache.line_bytes
        lat = self.cfg.dcache.hit_latency
        addr = base
        end = base + count * WORD_BYTES
        seen = set()
        while addr < end:
            key = addr // line
            if key not in seen:
                seen.add(key)
                lat = max(lat, self._data_access(addr, is_write=is_write))
            addr += WORD_BYTES
        return lat

    # -- functional evaluation mirrors -----------------------------------

    def _eval_int(self, insn):
        O = Opcode
        op = insn.op
        a = self.ival[insn.rs1] if insn.rs1 is not None else 0
        if op is O.SEL:
            if a is None:
                return None
            return self.ival[insn.rs2] if a else self.ival[insn.rs3]
        if insn.imm is not None:
            b = int(insn.imm)
        elif insn.rs2 is not None:
            b = self.ival[insn.rs2]
        else:
            b = 0
        if a is None or b is None:
            return None
        try:
            if op in (O.ADD, O.ADDI):
                return a + b
            if op is O.SUB:
                return a - b
            if op in (O.MUL, O.MULI):
                return a * b
            if op is O.DIV:
                from repro.dyser.ops import int_div
                return int_div(a, b)
            if op is O.REM:
                from repro.dyser.ops import int_rem
                return int_rem(a, b)
            if op in (O.AND, O.ANDI):
                return a & b
            if op in (O.OR, O.ORI):
                return a | b
            if op in (O.XOR, O.XORI):
                return a ^ b
            if op in (O.SLL, O.SLLI):
                return a << (b & 63)
            if op in (O.SRL, O.SRLI):
                return (a & ((1 << 64) - 1)) >> (b & 63)
            if op in (O.SRA, O.SRAI):
                return a >> (b & 63)
            if op in (O.SLT, O.SLTI):
                return 1 if a < b else 0
            if op is O.SEQ:
                return 1 if a == b else 0
            if op is O.MIN:
                return min(a, b)
            if op is O.MAX:
                return max(a, b)
        except Exception:
            self._inexact(f"integer op {op.value} faulted")
            return None
        raise _WalkAborted(f"unhandled int op {op}")

    def _eval_fp(self, insn, ready, fp_ready, int_ready):
        import math

        O = Opcode
        op = insn.op
        fv, iv = self.fval, self.ival
        try:
            if op in (O.FLT, O.FLE, O.FEQ, O.F2I):
                a = fv[insn.rs1]
                if op is O.F2I:
                    value = None if a is None else wrap64(int(a))
                else:
                    b = fv[insn.rs2]
                    if a is None or b is None:
                        value = None
                    elif op is O.FLT:
                        value = 1 if a < b else 0
                    elif op is O.FLE:
                        value = 1 if a <= b else 0
                    else:
                        value = 1 if a == b else 0
                self._write_int(insn.rd, value)
                if insn.rd != 0:
                    int_ready[insn.rd] = ready
                return
            if op is O.I2F:
                a = iv[insn.rs1]
                result = None if a is None else float(a)
            elif op is O.FSEL:
                c = iv[insn.rs1]
                result = (None if c is None
                          else fv[insn.rs2] if c else fv[insn.rs3])
            elif op in (O.FSQRT, O.FNEG, O.FABS):
                a = fv[insn.rs1]
                if a is None:
                    result = None
                elif op is O.FSQRT:
                    result = math.sqrt(a) if a >= 0.0 else math.nan
                elif op is O.FNEG:
                    result = -a
                else:
                    result = abs(a)
            else:
                a, b = fv[insn.rs1], fv[insn.rs2]
                if a is None or b is None:
                    result = None
                elif op is O.FADD:
                    result = a + b
                elif op is O.FSUB:
                    result = a - b
                elif op is O.FMUL:
                    result = a * b
                elif op is O.FDIV:
                    result = a / b if b else math.inf
                elif op is O.FMIN:
                    result = min(a, b)
                elif op is O.FMAX:
                    result = max(a, b)
                else:
                    raise _WalkAborted(f"unhandled fp op {op}")
        except _WalkAborted:
            raise
        except Exception:
            self._inexact(f"fp op {op.value} faulted")
            result = None
        self._write_fp(insn.rd, result)
        fp_ready[insn.rd] = ready

    def _guess_branch(self, pc: int, insn) -> bool:
        self._inexact("unknown branch condition (control flow guessed)")
        n = self._guesses.get(pc, 0)
        self._guesses[pc] = n + 1
        backward = (insn.target_index is not None
                    and insn.target_index <= pc)
        return backward and n < _BACKWARD_GUESSES

    # -- the walk --------------------------------------------------------

    def walk(self) -> None:
        if self.program.spill_words:
            spill_base = self.memory.alloc(self.program.spill_words)
            self._write_int(28, spill_base)
        cfg = self.cfg
        program = self.program.instructions
        insns_per_line = max(1, cfg.icache.line_bytes // _INSN_BYTES)

        int_ready = [0] * 32
        fp_ready = [0] * 32

        t = 0
        pc = 0
        fpu_free = 0
        lsu_free = 0
        fabric_ready = 0
        store_queue_busy = 0
        cur_fetch_line = -1
        O = Opcode
        dev = self.device

        def wait(ready, indices, base):
            floor = base
            for idx in indices:
                if ready[idx] > floor:
                    floor = ready[idx]
            return floor

        while True:
            if self.executed >= self.step_limit:
                raise _WalkAborted(
                    f"step budget {self.step_limit} exhausted")
            try:
                insn = program[pc]
            except IndexError:
                raise _WalkAborted(f"pc {pc} fell off the end") from None

            line = pc // insns_per_line
            if line != cur_fetch_line:
                lat = self._fetch_access(pc * _INSN_BYTES)
                cur_fetch_line = line
                if lat > cfg.icache.hit_latency:
                    t += lat
            op = insn.op
            iclass = insn.info.iclass
            self.executed += 1
            next_pc = pc + 1

            if iclass in (InsnClass.ALU, InsnClass.MUL, InsnClass.DIV):
                if op is O.SEL:
                    srcs = (insn.rs1, insn.rs2, insn.rs3)
                elif insn.imm is not None and op.value.endswith("i"):
                    srcs = (insn.rs1,)
                else:
                    srcs = (insn.rs1, insn.rs2)
                issue = wait(int_ready, srcs, t)
                lat = cfg.latency_for(iclass)
                chain = 1 + self._take_cost(*srcs)
                self._write_int(insn.rd, self._eval_int(insn))
                if insn.rd != 0:
                    int_ready[insn.rd] = issue + lat
                    self.icost[insn.rd] = chain
                t = issue + 1

            elif iclass is InsnClass.MOVE:
                if op is O.LI:
                    self._write_int(insn.rd, int(insn.imm))
                    if insn.rd != 0:
                        int_ready[insn.rd] = t + 1
                        self.icost[insn.rd] = 1
                    t += 1
                elif op is O.MOV:
                    issue = wait(int_ready, (insn.rs1,), t)
                    chain = 1 + self._take_cost(insn.rs1)
                    self._write_int(insn.rd, self.ival[insn.rs1],
                                    origin=self.iorigin[insn.rs1])
                    if insn.rd != 0:
                        int_ready[insn.rd] = issue + 1
                        self.icost[insn.rd] = chain
                    t = issue + 1
                elif op is O.FLI:
                    self._write_fp(insn.rd, float(insn.imm))
                    fp_ready[insn.rd] = t + 1
                    t += 1
                else:  # FMOV
                    issue = wait(fp_ready, (insn.rs1,), t)
                    self._write_fp(insn.rd, self.fval[insn.rs1],
                                   origin=self.forigin[insn.rs1])
                    fp_ready[insn.rd] = issue + 1
                    t = issue + 1

            elif iclass in (InsnClass.FPU, InsnClass.FDIV):
                int_srcs: tuple = ()
                fp_srcs: tuple = ()
                if op is O.I2F:
                    int_srcs = (insn.rs1,)
                elif op is O.F2I:
                    fp_srcs = (insn.rs1,)
                elif op in (O.FSQRT, O.FNEG, O.FABS):
                    fp_srcs = (insn.rs1,)
                elif op in (O.FLT, O.FLE, O.FEQ):
                    fp_srcs = (insn.rs1, insn.rs2)
                elif op is O.FSEL:
                    int_srcs = (insn.rs1,)
                    fp_srcs = (insn.rs2, insn.rs3)
                else:
                    fp_srcs = (insn.rs1, insn.rs2)
                issue = wait(int_ready, int_srcs, t)
                issue = wait(fp_ready, fp_srcs, issue)
                if not cfg.fpu_pipelined and fpu_free > issue:
                    issue = fpu_free
                lat = cfg.latency_for(iclass)
                fpu_free = issue + lat
                self._eval_fp(insn, issue + lat, fp_ready, int_ready)
                t = issue + 1

            elif iclass is InsnClass.LOAD:
                issue = wait(int_ready, (insn.rs1,), max(t, lsu_free))
                self._take_cost(insn.rs1)
                base = self.ival[insn.rs1]
                if base is None:
                    self._inexact("load from unresolved address")
                    lat = cfg.dcache.hit_latency
                    value = None
                else:
                    addr = base + int(insn.imm)
                    lat = self._data_access(addr)
                    value = self._load_word(addr)
                if op is O.LD:
                    self._write_int(
                        insn.rd, None if value is None else int(value))
                    if insn.rd != 0:
                        int_ready[insn.rd] = issue + lat
                else:
                    self._write_fp(
                        insn.rd, None if value is None else float(value))
                    fp_ready[insn.rd] = issue + lat
                lsu_free = issue + 1
                t = issue + 1

            elif iclass is InsnClass.STORE:
                if op is O.ST:
                    issue = wait(int_ready, (insn.rs1, insn.rs2),
                                 max(t, lsu_free))
                    self._take_cost(insn.rs1, insn.rs2)
                    value = self.ival[insn.rs2]
                else:
                    issue = wait(int_ready, (insn.rs1,), max(t, lsu_free))
                    issue = wait(fp_ready, (insn.rs2,), issue)
                    self._take_cost(insn.rs1)
                    value = self.fval[insn.rs2]
                base = self.ival[insn.rs1]
                if base is None:
                    self.dirty_all = True
                    self._inexact("store to unresolved address")
                else:
                    addr = base + int(insn.imm)
                    self._data_access(addr, is_write=True)
                    self._store_word(addr, value)
                lsu_free = issue + 1
                t = issue + 1

            elif iclass is InsnClass.BRANCH:
                issue = wait(int_ready, (insn.rs1, insn.rs2), t)
                a, b = self.ival[insn.rs1], self.ival[insn.rs2]
                if a is None or b is None:
                    taken = self._guess_branch(pc, insn)
                else:
                    taken = {
                        O.BEQ: a == b, O.BNE: a != b, O.BLT: a < b,
                        O.BGE: a >= b, O.BLE: a <= b, O.BGT: a > b,
                    }[op]
                if taken:
                    next_pc = insn.target_index
                    t = issue + 1 + cfg.branch_taken_penalty
                else:
                    t = issue + 1

            elif iclass is InsnClass.JUMP:
                next_pc = insn.target_index
                t = t + 1 + cfg.branch_taken_penalty

            elif insn.info.is_dyser:
                if dev is None:
                    raise _WalkAborted(
                        f"{op.value} on a core without DySER")
                t, new_fabric_ready = self._step_dyser(
                    insn, t, lsu_free, fabric_ready, int_ready, fp_ready)
                if new_fabric_ready is not None:
                    fabric_ready = new_fabric_ready
                if insn.info.is_memory:
                    if insn.op in MULTI_OPS:
                        count = int(insn.imm)
                        rate = max(1, cfg.vector_port_words_per_cycle)
                        lsu_free = t - 1 + max(1, count // rate)
                    else:
                        lsu_free = t
                store_queue_busy = max(store_queue_busy,
                                       self._sq_busy)

            elif op is O.NOP:
                t += 1
            elif op is O.HALT:
                t = max(t, store_queue_busy) + 1
                break
            else:
                raise _WalkAborted(f"unhandled opcode {op}")

            pc = next_pc

        if dev is not None and dev.engine is not None:
            self._close_segment(dev.engine, t)
            self.invocations = dev.finalize().invocations
        self.cycles = t

    _sq_busy = 0

    def _step_dyser(self, insn, t, lsu_free, fabric_ready,
                    int_ready, fp_ready):
        """Mirror of ``Core._exec_dyser`` over the unknown-value domain.

        Returns (new issue cursor, new fabric_ready or None); the store
        queue high-water mark rides on ``self._sq_busy``.
        """
        O = Opcode
        cfg = self.cfg
        dev = self.device
        op = insn.op

        if op is O.DINIT:
            cid = int(insn.imm)
            engine = dev.engine
            rearm = engine is not None and engine.config.config_id == cid
            if engine is not None and not rearm:
                self._close_segment(engine, t)
            hits_before = dev.stats.config_hits
            ready = dev.init_config(cid, t)
            if not rearm:
                hit = dev.stats.config_hits > hits_before
                a = self._acct_for(cid)
                a["config_stall"] += ready - t
                if cid in self._loaded_once and not hit:
                    a["reload_stall"] += ready - t
                self._loaded_once.add(cid)
                dev.engine.evaluator = _AbstractEvaluator(
                    dev.engine.config.dfg, self._inexact)
                self._seg_open_t = ready
            return ready + 1, ready

        a = self._acct_for(dev.engine.config.config_id) \
            if dev.engine is not None else _blank_acct()

        if op in (O.DSEND, O.DFSEND):
            if op is O.DSEND:
                issue = max(t, int_ready[insn.rs1])
                self._take_cost(insn.rs1)
                value = self.ival[insn.rs1]
                origin = self.iorigin[insn.rs1]
            else:
                issue = max(t, fp_ready[insn.rs1])
                value = self.fval[insn.rs1]
                origin = self.forigin[insn.rs1]
            if (dev.engine is not None
                    and origin == ("recv", dev.engine.config.config_id)):
                self.recurrences.add(dev.engine.config.config_id)
            if fabric_ready > issue:
                issue = fabric_ready
            done = dev.send(insn.port, value, issue)
            a["iface_slots"] += 1
            a["send_wait"] += max(0, done - issue)
            return max(issue, done) + 1, None

        if op in (O.DRECV, O.DFRECV):
            issue = max(t, fabric_ready)
            value, done = dev.recv(insn.port, issue)
            origin = ("recv", dev.engine.config.config_id)
            if op is O.DRECV:
                self._write_int(
                    insn.rd, None if value is None else int(value),
                    origin=origin)
                if insn.rd != 0:
                    int_ready[insn.rd] = done
            else:
                self._write_fp(
                    insn.rd, None if value is None else float(value),
                    origin=origin)
                fp_ready[insn.rd] = done
            a["iface_slots"] += 1
            a["recv_wait"] += done - issue
            return done + 1, None

        rate = max(1, cfg.vector_port_words_per_cycle)

        if op in (O.DLD, O.DFLD, O.DLDV, O.DFLDV, O.DLDW, O.DFLDW):
            issue = max(max(t, lsu_free), int_ready[insn.rs1])
            if fabric_ready > issue:
                issue = fabric_ready
            a["addr_cycles"] += self._take_cost(insn.rs1)
            base = self.ival[insn.rs1]
            if op in (O.DLD, O.DFLD):
                if base is None:
                    self._inexact("dyser load from unresolved address")
                    lat = cfg.dcache.hit_latency
                    value = None
                else:
                    addr = base + int(insn.imm)
                    lat = self._data_access(addr)
                    value = self._load_word(addr)
                    if value is not None:
                        value = (float(value) if op is O.DFLD
                                 else int(value))
                done = dev.send(insn.port, value, issue + lat)
                a["iface_slots"] += 1
                a["send_wait"] += max(0, done - (issue + lat))
            else:
                count = int(insn.imm)
                wide = op in (O.DLDW, O.DFLDW)
                fp = op in (O.DFLDV, O.DFLDW)
                if base is None:
                    self._inexact("dyser load from unresolved address")
                    lat = cfg.dcache.hit_latency
                    values = [None] * count
                else:
                    lat = self._vector_cache_access(base, count,
                                                    is_write=False)
                    values = self._load_block(base, count)
                for i, value in enumerate(values):
                    if value is not None:
                        value = float(value) if fp else int(value)
                    arrive = issue + lat + i // rate
                    port = insn.port + i if wide else insn.port
                    done = dev.send(port, value, arrive)
                    a["send_wait"] += max(0, done - arrive)
                a["iface_slots"] += max(1, count // rate)
            return issue + 1, None

        if op in (O.DST, O.DFST, O.DSTV, O.DFSTV, O.DSTW, O.DFSTW):
            issue = max(max(t, lsu_free), int_ready[insn.rs1])
            if fabric_ready > issue:
                issue = fabric_ready
            a["addr_cycles"] += self._take_cost(insn.rs1)
            base = self.ival[insn.rs1]
            if op in (O.DST, O.DFST):
                value, done = dev.recv(insn.port, issue)
                a["iface_slots"] += 1
                if base is None:
                    self.dirty_all = True
                    self._inexact("dyser store to unresolved address")
                else:
                    addr = base + int(insn.imm)
                    self._data_access(addr, is_write=True)
                    if value is not None:
                        value = (float(value) if op is O.DFST
                                 else int(value))
                    self._store_word(addr, value)
                self._sq_busy = max(self._sq_busy, done)
                return issue + 1, None
            count = int(insn.imm)
            wide = op in (O.DSTW, O.DFSTW)
            done = issue
            values = []
            for i in range(count):
                port = insn.port + i if wide else insn.port
                value, done = dev.recv(port, done)
                values.append(value)
            a["iface_slots"] += max(1, count // rate)
            if base is None:
                self.dirty_all = True
                self._inexact("dyser store to unresolved address")
            else:
                cast = float if op in (O.DFSTV, O.DFSTW) else int
                self._vector_cache_access(base, count, is_write=True)
                self._store_block(
                    base,
                    [None if v is None else cast(v) for v in values])
            self._sq_busy = max(self._sq_busy, done)
            return issue + 1, None

        raise _WalkAborted(f"unhandled DySER op {op}")

    # -- attribution -----------------------------------------------------

    def region_reports(self, program: Program) -> list[RegionPerf]:
        reports = []
        for cid in sorted(self.acct):
            a = self.acct[cid]
            fires = max(1, a["fires"])
            config = program.dyser_configs.get(cid)
            recurrence = cid in self.recurrences
            rec_ii = a["recv_wait"] / fires if recurrence else 0.0
            port_ii = (a["iface_slots"] + a["addr_cycles"]
                       + a["send_wait"]) / fires
            if not recurrence:
                port_ii += a["recv_wait"] / fires
            config_ii = a["reload_stall"] / fires
            host_ii = max(
                0.0,
                (a["seg_cycles"] - a["iface_slots"] - a["addr_cycles"]
                 - a["send_wait"] - a["recv_wait"]) / fires)
            components = {
                "recurrence": rec_ii,
                "port": port_ii,
                "config": config_ii,
                "host": host_ii,
            }
            bottleneck = max(components, key=lambda k: components[k])
            reports.append(RegionPerf(
                config_id=cid,
                invocations=a["fires"],
                recurrence=recurrence,
                recurrence_ii=rec_ii,
                port_ii=port_ii,
                config_ii=config_ii,
                host_ii=host_ii,
                path_delay=(config.critical_delay()
                            if config is not None else 0),
                config_words=(config.config_words()
                              if config is not None else 0),
                bottleneck=bottleneck,
            ))
        return reports


# ---------------------------------------------------------------------------
# entry points


def analyze_program(program: Program, *, memory: Memory | None = None,
                    int_args=(), fp_args=(),
                    core_config: CoreConfig | None = None,
                    fabric: Fabric | None = None,
                    timing: DyserTimingParams | None = None,
                    cache_params: ConfigCacheParams | None = None,
                    subject: str = "program",
                    step_limit: int = DEFAULT_STEP_LIMIT,
                    work_items: int | None = None) -> PerfPrediction:
    """Statically predict a program's cycles and bottlenecks.

    ``memory`` is the program's prepared input image (the walk claims
    it and mutates a private view of the world built on it); when None
    a blank 64 KiB image is used, matching the fuzz harness's execution
    environment.  Raises :class:`~repro.errors.ReproError` for the
    structural problems the simulator would also refuse at construction
    (unlinkable program, invalid configuration) — everything after that
    degrades into an inexact prediction instead of raising.
    """
    if not program.is_linked:
        program.link()
    program.validate()
    config = core_config or CoreConfig()
    device = None
    if config.has_dyser:
        device = DyserDevice(
            fabric=fabric or Fabric(),
            timing=timing or DyserTimingParams(),
            cache_params=cache_params or ConfigCacheParams(),
        )
        device.register_program(program)
    if memory is None:
        memory = Memory(1 << 16)
    walker = _Walker(program, memory, config, device, step_limit)
    walker.set_args(int_args, fp_args)
    walked = True
    notes: list[str] = []
    try:
        walker.walk()
    except (_WalkAborted, ReproError, OverflowError, ValueError,
            TypeError, KeyError, ZeroDivisionError) as exc:
        walked = False
        notes.append(f"walk aborted: {exc}")
    exact = walked and walker.exact
    predicted = walker.cycles if walked else None
    bound = (predicted if exact else
             _structural_bound(program, config.branch_taken_penalty))
    mode = "dyser" if (device is not None
                       and program.dyser_configs) else "scalar"
    return PerfPrediction(
        subject=subject,
        mode=mode,
        predicted_cycles=predicted,
        lower_bound=bound,
        invocations=walker.invocations if walked else 0,
        instructions=walker.executed,
        exact=exact,
        walked=walked,
        work_items=work_items,
        regions=walker.region_reports(program) if walked else [],
        notes=notes + walker.notes,
    )


def analyze_workload(name: str, *, mode: str = "dyser",
                     scale: str = "small", seed: int = 7,
                     options=None, core_config: CoreConfig | None = None,
                     timing: DyserTimingParams | None = None,
                     cache_params: ConfigCacheParams | None = None,
                     memory_bytes: int = 1 << 22,
                     step_limit: int = DEFAULT_STEP_LIMIT) -> PerfPrediction:
    """Predict one suite workload's run without executing it.

    Compiles through the shared harness memo (a later real run reuses
    the compile), prepares the workload's input image the same way the
    runner would, and walks.  Raises :class:`~repro.errors.ReproError`
    for unknown workloads/modes or compile failures.
    """
    from repro.compiler.driver import CompilerOptions
    from repro.dyser.fabric import FabricGeometry
    from repro.errors import WorkloadError
    from repro.harness.runner import (
        DEFAULT_GEOMETRY, _compile, _options_key, source_hash)
    from repro.workloads import suite as suite_mod

    if mode not in ("scalar", "dyser"):
        raise WorkloadError(f"unknown mode {mode!r}")
    # suite.get also resolves content-addressed ``dsl:`` kernels.
    workload = suite_mod.get(name)
    options = options or CompilerOptions(
        fabric=Fabric(FabricGeometry(*DEFAULT_GEOMETRY)))
    compiled = _compile(name, source_hash(workload.source), mode,
                        _options_key(options))
    memory = Memory(memory_bytes)
    instance = workload.prepare(memory, scale, seed)
    config = core_config or CoreConfig(has_dyser=(mode == "dyser"))
    return analyze_program(
        compiled.program,
        memory=memory,
        int_args=instance.int_args,
        fp_args=instance.fp_args,
        core_config=config,
        fabric=options.fabric if mode == "dyser" else None,
        timing=timing,
        cache_params=cache_params,
        subject=f"{name}/{mode}@{scale}",
        step_limit=step_limit,
        work_items=instance.work_items,
    )


def emit_region_diagnostics(report: DiagnosticReport, name: str,
                            prediction: PerfPrediction) -> None:
    """Emit the per-region RPR400/401/402 bottleneck diagnostics.

    Shared by :func:`perf_report` and callers that analyzed a
    hand-built :class:`~repro.isa.program.Program` directly via
    :func:`analyze_program`.
    """
    for region in prediction.regions:
        where = f"{name}.c{region.config_id}"
        if region.bottleneck == "port" and region.invocations:
            report.emit(
                "RPR400",
                f"port-bandwidth-bound: {region.port_ii:.1f} interface "
                f"cycles/invocation dominate (recurrence "
                f"{region.recurrence_ii:.1f}, config {region.config_ii:.1f},"
                f" host {region.host_ii:.1f}); wider vector ports or "
                f"vectorized transfers would raise throughput",
                location=where, source="perf", **region.to_dict())
        elif region.bottleneck == "recurrence" and region.invocations:
            report.emit(
                "RPR401",
                f"recurrence-bound: a loop-carried value round-trips "
                f"through the core every invocation "
                f"({region.recurrence_ii:.1f} blocked cycles/invocation "
                f"over a {region.path_delay}-cycle datapath); splitting "
                f"the reduction across multiple accumulators would break "
                f"the serialization",
                location=where, source="perf", **region.to_dict())
        elif region.bottleneck == "config" and region.invocations:
            report.emit(
                "RPR402",
                f"config-thrash-bound: {region.config_ii:.1f} reload "
                f"stall cycles/invocation ({region.config_words} words "
                f"per reload); the region working set exceeds the "
                f"configuration cache",
                location=where, source="perf", **region.to_dict())


def perf_report(name: str, *, mode: str = "dyser", scale: str = "small",
                seed: int = 7, options=None,
                core_config: CoreConfig | None = None,
                timing: DyserTimingParams | None = None,
                cache_params: ConfigCacheParams | None = None,
                ) -> DiagnosticReport:
    """``repro lint --perf``: the prediction as RPR4xx diagnostics.

    Never raises for workload/compile problems — they surface as
    diagnostics, exactly like :func:`repro.analysis.api.lint_workload`.
    """
    from repro.analysis.diagnostics import Diagnostic
    from repro.compiler.driver import CompilerOptions
    from repro.dyser.fabric import FabricGeometry
    from repro.harness.runner import (
        DEFAULT_GEOMETRY, _compile, _options_key, source_hash)
    from repro.workloads import SUITE

    report = DiagnosticReport(subject=f"{name}/{mode}:perf")
    try:
        prediction = analyze_workload(
            name, mode=mode, scale=scale, seed=seed, options=options,
            core_config=core_config, timing=timing,
            cache_params=cache_params)
    except ReproError as exc:
        code = getattr(exc, "code", None)
        if code:
            report.add(Diagnostic.from_error(exc, location=name,
                                             source="perf"))
        else:
            report.emit("RPR251", str(exc), location=name, source="perf")
        return report

    emit_region_diagnostics(report, name, prediction)

    # Capability-curtailed regions: the scheduler accepted the region
    # but could not unroll it as far as requested (fabric FU capacity).
    options = options or CompilerOptions(
        fabric=Fabric(FabricGeometry(*DEFAULT_GEOMETRY)))
    if mode == "dyser":
        workload = SUITE.get(name)
        if workload is not None:
            compiled = _compile(name, source_hash(workload.source), mode,
                                _options_key(options))
            for region in compiled.regions:
                if region.accepted and 1 < region.unrolled < options.unroll:
                    report.emit(
                        "RPR403",
                        f"capability-bound: region unrolled "
                        f"{region.unrolled}x of the requested "
                        f"{options.unroll}x — fabric FU capacity limits "
                        f"the spatial schedule",
                        location=f"{name}.{region.loop_header}",
                        source="perf", unrolled=region.unrolled,
                        requested=options.unroll)

    cpi = prediction.cycles_per_invocation
    report.emit(
        "RPR404",
        (f"predicted {prediction.predicted_cycles} cycles"
         if prediction.predicted_cycles is not None
         else "prediction unavailable (walk did not complete)")
        + (f", {prediction.invocations} invocations"
           + (f" ({cpi:.1f} cycles/invocation)" if cpi else "")
           if prediction.invocations else "")
        + f"; sound lower bound {prediction.lower_bound} cycles"
        + ("" if prediction.exact else " [inexact]"),
        location=name, source="perf", **prediction.to_dict())
    return report


# ---------------------------------------------------------------------------
# engine/service cost pre-flight

#: Cost memo keyed by job hash (process-local, like the compile memo).
_COST_MEMO: dict[str, int | None] = {}

#: Walk budget for cost estimation: bounded so pre-flight stays cheap
#: relative to the run it prices.
_COST_STEP_LIMIT = 300_000


def estimate_job_cost(spec, cache=None) -> int | None:
    """Predicted cycle cost of one :class:`~repro.engine.jobs.JobSpec`.

    Returns None when no defensible estimate exists (analysis failure,
    budget exhausted at every scale).  Memoized by job hash; safe to
    call from the engine pre-flight and the service admission path.
    ``cache`` is accepted for interface symmetry with the artifact
    cache probes and currently unused.
    """
    try:
        key = spec.job_hash
    except Exception:
        return None
    if key in _COST_MEMO:
        return _COST_MEMO[key]
    cost = _estimate(spec)
    _COST_MEMO[key] = cost
    return cost


def _estimate(spec) -> int | None:
    try:
        prediction = analyze_workload(
            spec.workload, mode=spec.mode, scale=spec.scale,
            seed=spec.seed, options=spec.options(),
            core_config=spec.core_config(), timing=spec.timing(),
            cache_params=spec.cache_params(),
            memory_bytes=spec.memory_bytes,
            step_limit=_COST_STEP_LIMIT)
    except ReproError:
        return None
    if prediction.walked and prediction.predicted_cycles:
        return prediction.predicted_cycles
    # Budget ran out at the requested scale: walk a tiny instance and
    # scale the estimate by the work-item ratio.
    try:
        tiny = analyze_workload(
            spec.workload, mode=spec.mode, scale="tiny", seed=spec.seed,
            options=spec.options(), core_config=spec.core_config(),
            timing=spec.timing(), cache_params=spec.cache_params(),
            memory_bytes=spec.memory_bytes,
            step_limit=_COST_STEP_LIMIT)
    except ReproError:
        return None
    if not (tiny.walked and tiny.predicted_cycles and tiny.work_items):
        return None
    if not prediction.work_items:
        return None
    scaled = tiny.predicted_cycles * (prediction.work_items
                                      / tiny.work_items)
    return max(1, int(scaled))


def clear_cost_memo() -> None:
    """Drop memoized cost estimates (tests / engine cache resets)."""
    _COST_MEMO.clear()
