"""Static analysis: IR verifier, configuration linter, diagnostics.

Four analyses over four stable code banks:

- :mod:`repro.analysis.verifier` — SSA/IR well-formedness and the
  access/execute interface contract (``RPR1xx``), runnable after every
  compiler pass via ``CompilerOptions.verify_passes``;
- :mod:`repro.analysis.lint` — :class:`~repro.dyser.dfg.Dfg` /
  :class:`~repro.dyser.config.DyserConfig` structural, placement and
  routing checks (``RPR2xx``);
- :mod:`repro.analysis.speclint` — :class:`~repro.engine.jobs.JobSpec`
  pre-flight checks (``RPR25x``), run by the engine before dispatch;
- :mod:`repro.analysis.perf` — the static performance-bound analyzer
  (``RPR4xx``): predicted cycles, a sound lower bound, and per-region
  bottleneck attribution with zero simulation, surfaced through
  :func:`perf_report` / ``repro lint --perf`` and reused as the
  engine/service cost pre-flight (:func:`estimate_job_cost`);

plus the ``RPR3xx`` control-flow shape advisories emitted by
:func:`repro.compiler.shapes.region_advisories` and surfaced through
:func:`lint_workload` / ``repro lint``.
"""

from repro.analysis.api import lint_workload
from repro.analysis.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    DiagnosticReport,
    Severity,
    describe_code,
)
from repro.analysis.lint import lint_config, lint_dfg
from repro.analysis.perf import (
    PerfPrediction,
    RegionPerf,
    analyze_program,
    analyze_workload,
    estimate_job_cost,
    perf_report,
)
from repro.analysis.speclint import lint_spec
from repro.analysis.verifier import check_function, verify_function

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticReport",
    "PerfPrediction",
    "RegionPerf",
    "Severity",
    "analyze_program",
    "analyze_workload",
    "check_function",
    "describe_code",
    "estimate_job_cost",
    "lint_config",
    "lint_dfg",
    "lint_spec",
    "lint_workload",
    "perf_report",
    "verify_function",
]
