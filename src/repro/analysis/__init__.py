"""Static analysis: IR verifier, configuration linter, diagnostics.

Three analyses over three stable code banks:

- :mod:`repro.analysis.verifier` — SSA/IR well-formedness and the
  access/execute interface contract (``RPR1xx``), runnable after every
  compiler pass via ``CompilerOptions.verify_passes``;
- :mod:`repro.analysis.lint` — :class:`~repro.dyser.dfg.Dfg` /
  :class:`~repro.dyser.config.DyserConfig` structural, placement and
  routing checks (``RPR2xx``);
- :mod:`repro.analysis.speclint` — :class:`~repro.engine.jobs.JobSpec`
  pre-flight checks (``RPR25x``), run by the engine before dispatch;

plus the ``RPR3xx`` control-flow shape advisories emitted by
:func:`repro.compiler.shapes.region_advisories` and surfaced through
:func:`lint_workload` / ``repro lint``.
"""

from repro.analysis.api import lint_workload
from repro.analysis.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    DiagnosticReport,
    Severity,
    describe_code,
)
from repro.analysis.lint import lint_config, lint_dfg
from repro.analysis.speclint import lint_spec
from repro.analysis.verifier import check_function, verify_function

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "check_function",
    "describe_code",
    "lint_config",
    "lint_dfg",
    "lint_spec",
    "lint_workload",
    "verify_function",
]
