"""Observability layer: structured tracing, metrics, timeline export.

The three pillars, all zero-cost when tracing is off:

- :mod:`repro.obs.events` — ring-buffered structured event stream
  (spans, instants, counters) with two clock domains: simulator cycles
  and host wall time.  Instrumentation sites in the core, the DySER
  device, the compiler driver and the engine all write here, each
  guarded by an ``if events is not None`` check;
- :mod:`repro.obs.metrics` — named counter/gauge/histogram registry
  that :class:`repro.cpu.ExecStats` carries, so new subsystem counters
  need no dataclass or serializer edits;
- :mod:`repro.obs.timeline` — export to Chrome/Perfetto
  ``trace_event`` JSON plus plain-text tables, including the
  per-invocation cycle-attribution table (a finer-grained E3);
- :mod:`repro.obs.profile` — one-call traced runs behind
  ``repro profile <workload>``.

Tracing attaches at the run API: pass
``RunConfig(..., trace=TraceOptions(enabled=True))`` to
:func:`repro.run_workload`, or use :func:`repro.trace_workload`.
"""

from repro.obs.events import (
    COMPLETE,
    COUNTER,
    CYCLES,
    INSTANT,
    WALL,
    Event,
    EventStream,
    TraceOptions,
    maybe_span,
)
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricError,
    MetricsRegistry,
)
from repro.obs.profile import ProfileReport, profile_workload, trace_workload
from repro.obs.timeline import (
    invocation_rows,
    invocation_table,
    phase_table,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "COMPLETE",
    "COUNTER",
    "CYCLES",
    "CounterMetric",
    "Event",
    "EventStream",
    "GaugeMetric",
    "HistogramMetric",
    "INSTANT",
    "MetricError",
    "MetricsRegistry",
    "ProfileReport",
    "TraceOptions",
    "WALL",
    "invocation_rows",
    "invocation_table",
    "maybe_span",
    "phase_table",
    "profile_workload",
    "to_chrome_trace",
    "trace_workload",
    "write_chrome_trace",
]
