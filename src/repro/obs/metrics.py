"""Named metrics registry: counters, gauges, histograms.

:class:`repro.cpu.ExecStats` predates this module and hard-codes its
counters as dataclass fields; every new subsystem counter used to mean
editing that dataclass and every (de)serializer that touches it.  The
registry decouples that: a subsystem registers a named instrument once
and bumps it; :class:`ExecStats` carries a registry in its ``metrics``
field, so new counters ride along through serialization, the artifact
cache, and reports without schema edits.

Instrument names are namespaced with dots (``dyser.port.send_stalls``)
and must be unique within a registry; re-requesting the same name with
the same type returns the existing instrument, while a type conflict
raises.

Thread-safety contract: instrument *updates* (``inc``/``set``/
``observe``) stay lock-free — they run inside simulator hot loops and a
racing scrape may at worst observe a value one update stale.  Registry
*structure* (registration, lookup, serialization, exposition) is
guarded by a lock and every read path iterates a point-in-time
:meth:`MetricsRegistry.snapshot`, so a concurrent ``inc()`` or
``counter()`` during a scrape can never raise ``RuntimeError: dict
changed size`` or tear a histogram's bucket/count invariant.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_right
from dataclasses import dataclass, field


class MetricError(ValueError):
    """Registry misuse: duplicate name with a different type."""


@dataclass
class CounterMetric:
    """Monotonically increasing count."""

    name: str
    help: str = ""
    value: int = 0

    kind = "counter"

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def to_dict(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self.value}


@dataclass
class GaugeMetric:
    """Last-written value (can go up or down)."""

    name: str
    help: str = ""
    value: float = 0.0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self.value}


#: Default histogram buckets: powers of two up to 4096 (cycle latencies).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@dataclass
class HistogramMetric:
    """Bucketed distribution with count/sum/min/max."""

    name: str
    help: str = ""
    buckets: tuple = DEFAULT_BUCKETS
    counts: list = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    kind = "histogram"

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.counts:
            # One bin per bucket upper bound, plus overflow.
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation.

        Bucket semantics follow Prometheus ``le``: ``counts[i]`` holds
        observations ``<= buckets[i]``; ``counts[-1]`` is the overflow.
        """
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        i = bisect_right(self.buckets, value)
        if i > 0 and self.buckets[i - 1] == value:
            i -= 1
        self.counts[i] += 1

    def to_dict(self) -> dict:
        # Copy the bins first and derive ``count`` from that copy: a
        # racing ``observe`` between the two reads could otherwise
        # produce a snapshot where the bucket sum disagrees with the
        # total (Prometheus scrapers reject such exposition).  In a
        # quiesced registry ``sum(counts) == self.count`` exactly, so
        # serialization round-trips are unchanged.
        counts = list(self.counts)
        return {
            "kind": self.kind, "help": self.help,
            "buckets": list(self.buckets), "counts": counts,
            "count": sum(counts), "sum": self.sum,
            "min": self.min, "max": self.max,
        }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_KINDS = {
    "counter": CounterMetric,
    "gauge": GaugeMetric,
    "histogram": HistogramMetric,
}


class MetricsRegistry:
    """A namespace of uniquely named instruments."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    # Locks don't pickle; a registry that crosses a process boundary
    # (engine workers, test deep-copies) regrows one on arrival.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------

    def _register(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name=name, help=help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> CounterMetric:
        return self._register(CounterMetric, name, help)

    def gauge(self, name: str, help: str = "") -> GaugeMetric:
        return self._register(GaugeMetric, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> HistogramMetric:
        return self._register(HistogramMetric, name, help, buckets=buckets)

    # -- access --------------------------------------------------------

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def snapshot(self) -> list[tuple[str, object]]:
        """Point-in-time ``(name, instrument)`` pairs, sorted by name.

        Every bulk read path (:meth:`to_dict`, :meth:`format`,
        :meth:`to_prometheus`) iterates over this copy, so concurrent
        registration during a scrape cannot raise or skip entries.
        """
        with self._lock:
            items = list(self._metrics.items())
        return sorted(items)

    def value(self, name: str, default=0):
        """Scalar value of a counter/gauge (histograms return count)."""
        metric = self.get(name)
        if metric is None:
            return default
        if isinstance(metric, HistogramMetric):
            return metric.count
        return metric.value

    # -- (de)serialization --------------------------------------------

    def to_dict(self) -> dict:
        return {name: metric.to_dict() for name, metric in self.snapshot()}

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        for name, entry in (data or {}).items():
            kind = entry.get("kind", "counter")
            metric_cls = _KINDS.get(kind)
            if metric_cls is None:
                raise MetricError(f"unknown metric kind {kind!r}")
            kwargs = {k: v for k, v in entry.items() if k != "kind"}
            if kind == "histogram":
                kwargs["buckets"] = tuple(kwargs.get("buckets",
                                                     DEFAULT_BUCKETS))
            metric = metric_cls(name=name, **kwargs)
            registry._metrics[name] = metric
        return registry

    def format(self) -> str:
        """Human-readable dump, one instrument per line."""
        lines = []
        for name, metric in self.snapshot():
            if isinstance(metric, HistogramMetric):
                lines.append(
                    f"{name:<36} histogram count={metric.count} "
                    f"mean={metric.mean:.2f} min={metric.min} "
                    f"max={metric.max}")
            else:
                lines.append(f"{name:<36} {metric.kind} "
                             f"value={metric.value}")
        return "\n".join(lines)

    # -- Prometheus text exposition ------------------------------------

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (version 0.0.4).

        Dotted instrument names map to underscore metric names under
        ``prefix`` (``service.queue.depth`` →
        ``repro_service_queue_depth``); counters gain the conventional
        ``_total`` suffix; histograms expose cumulative ``_bucket``
        series with ``le`` labels plus ``_sum``/``_count``.  The dump
        reads from :meth:`snapshot` and tear-safe ``to_dict`` copies,
        so scraping a registry under concurrent updates is safe.
        """
        lines: list[str] = []
        for name, metric in self.snapshot():
            pname = _prometheus_name(f"{prefix}.{name}" if prefix
                                     else name)
            help_text = (metric.help or name).replace("\\", "\\\\") \
                .replace("\n", "\\n")
            data = metric.to_dict()
            if isinstance(metric, CounterMetric):
                pname += "_total"
                lines += [f"# HELP {pname} {help_text}",
                          f"# TYPE {pname} counter",
                          f"{pname} {_prometheus_value(data['value'])}"]
            elif isinstance(metric, GaugeMetric):
                lines += [f"# HELP {pname} {help_text}",
                          f"# TYPE {pname} gauge",
                          f"{pname} {_prometheus_value(data['value'])}"]
            else:  # histogram
                lines += [f"# HELP {pname} {help_text}",
                          f"# TYPE {pname} histogram"]
                cumulative = 0
                for bound, binned in zip(data["buckets"], data["counts"],
                                         strict=False):
                    cumulative += binned
                    lines.append(f'{pname}_bucket{{le="'
                                 f'{_prometheus_value(bound)}"}} '
                                 f"{cumulative}")
                total = cumulative + data["counts"][-1]
                lines.append(f'{pname}_bucket{{le="+Inf"}} {total}')
                lines.append(f"{pname}_sum "
                             f"{_prometheus_value(data['sum'])}")
                lines.append(f"{pname}_count {total}")
        return "\n".join(lines) + "\n"


def _prometheus_name(name: str) -> str:
    """Sanitize a dotted instrument name into a Prometheus metric name."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not re.match(r"[a-zA-Z_:]", name):
        name = f"_{name}"
    return name


def _prometheus_value(value) -> str:
    """Render numbers the way Prometheus text format expects."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value is None:
        return "NaN"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
