"""One-call workload profiling: traced runs plus renderable reports.

``repro profile <workload>`` is a thin CLI veneer over this module::

    from repro import profile_workload

    report = profile_workload("mm", scale="tiny")
    print(report.summary())                  # tables on stdout
    report.export("trace.json")              # open in ui.perfetto.dev

The heavy lifting lives elsewhere — :mod:`repro.harness` runs the
workload with :class:`~repro.obs.events.TraceOptions` enabled, and
:mod:`repro.obs.timeline` renders the recorded stream.  Imports of the
harness are deferred to call time because the harness itself imports
:mod:`repro.obs` (the observability layer sits *below* the run API).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, replace

from repro.obs.events import EventStream, TraceOptions
from repro.obs.timeline import (
    invocation_table,
    phase_table,
    to_chrome_trace,
    write_chrome_trace,
)


def trace_workload(config, /, **kwargs):
    """Run one workload with tracing on; returns a ``RunResult`` whose
    ``events`` attribute holds the recorded stream.

    ``config`` is a workload name (with ``RunConfig`` fields as kwargs)
    or a ready :class:`~repro.harness.RunConfig`; tracing is forced on
    either way, preserving any other ``TraceOptions`` fields.
    """
    from repro.harness.config import RunConfig
    from repro.harness.runner import execute

    if not isinstance(config, RunConfig):
        config = RunConfig(workload=config, **kwargs)
    elif kwargs:
        raise TypeError("trace_workload(RunConfig) accepts no extra "
                        f"kwargs; got {sorted(kwargs)}")
    if not config.trace.enabled:
        config = config.with_(trace=replace(config.trace, enabled=True))
    return execute(config)


@dataclass
class ProfileReport:
    """A traced run plus its renderings."""

    result: object  # RunResult (typed loosely to keep imports lazy)

    @property
    def events(self) -> EventStream:
        return self.result.events

    # -- exports -------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The run as a Chrome/Perfetto ``trace_event`` JSON object."""
        return to_chrome_trace(self.events, metadata={
            "workload": self.result.workload,
            "mode": self.result.mode,
            "scale": self.result.scale,
            "cycles": self.result.cycles,
        })

    def export(self, path) -> pathlib.Path:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        return write_chrome_trace(self.events, path, metadata={
            "workload": self.result.workload,
            "mode": self.result.mode,
            "scale": self.result.scale,
            "cycles": self.result.cycles,
        })

    # -- text renderings ----------------------------------------------

    def invocation_table(self, limit: int | None = 40) -> str:
        return invocation_table(self.events, limit=limit)

    def phase_table(self) -> str:
        return phase_table(self.events)

    def summary(self, limit: int | None = 40) -> str:
        """The full plain-text profile: run header, cycle accounting,
        named metrics, compiler phases, per-invocation attribution."""
        result = self.result
        lines = [
            f"profile {result.workload} [{result.mode}, {result.scale}]: "
            f"{'OK' if result.correct else 'WRONG RESULT'}",
            result.stats.summary(),
        ]
        metrics = result.stats.metrics
        if len(metrics):
            lines += ["", "metrics:", metrics.format()]
        lines += ["", self.phase_table()]
        if result.mode == "dyser":
            lines += ["", self.invocation_table(limit=limit)]
        events = self.events
        lines += ["", f"trace: {len(events)} events recorded"
                      + (f" ({events.dropped} dropped)"
                         if events.dropped else "")]
        return "\n".join(lines)


def profile_workload(config, /, trace: TraceOptions | None = None,
                     **kwargs) -> ProfileReport:
    """Trace one workload and wrap the result for rendering/export.

    Accepts the same arguments as :func:`trace_workload`; ``trace``
    optionally supplies non-default :class:`TraceOptions` (capacity,
    category filter, per-instruction events) for name-based calls.
    """
    from repro.harness.config import RunConfig

    if not isinstance(config, RunConfig) and trace is not None:
        kwargs["trace"] = trace
    return ProfileReport(result=trace_workload(config, **kwargs))
